//! Java application profiles: the workload-side parameters of the model.
//!
//! A profile abstracts a benchmark as the quantities that drive heap and
//! GC behaviour: how much mutator CPU work it performs, with how many
//! threads, how fast it allocates, how much of what it allocates survives
//! and for how long. The calibrated instances for DaCapo, SPECjvm2008,
//! HiBench and the §5.3 micro-benchmark live in `arv-workloads`.

use arv_cgroups::Bytes;
use arv_sim_core::{SimDuration, SimRng};

/// Parameters of one Java workload.
#[derive(Debug, Clone)]
pub struct JavaProfile {
    /// Benchmark name (reporting only).
    pub name: String,
    /// Total mutator CPU work to complete, summed over threads.
    pub total_work: SimDuration,
    /// Application (mutator) thread count.
    pub mutators: u32,
    /// Allocation rate: bytes allocated per CPU-second of mutator work.
    pub alloc_rate: Bytes,
    /// Fraction of eden surviving a minor collection (copied bytes).
    pub minor_survival: f64,
    /// Cap on survivor volume per minor collection — the young working
    /// set. With a larger eden, survivors saturate at this value.
    pub young_live: Bytes,
    /// Fraction of survivors promoted to the old generation as
    /// medium-lived garbage (collected by the next major GC).
    pub promotion: f64,
    /// Fraction of allocated bytes that join the long-lived live set.
    pub live_growth: f64,
    /// Cap on the long-lived live set.
    pub live_cap: Bytes,
    /// Minimum heap the benchmark can run in; a max-heap below this is an
    /// immediate `OutOfMemoryError` (the missing bars of Figure 2(b)).
    pub min_heap: Bytes,
    /// Fraction of the footprint the mutator touches per unit work —
    /// scales how hard swapping hurts (1.0 = touches everything often).
    pub touch_intensity: f64,
}

impl JavaProfile {
    /// A small, neutral profile for tests.
    pub fn test_profile() -> JavaProfile {
        JavaProfile {
            name: "test".into(),
            total_work: SimDuration::from_secs(10),
            mutators: 4,
            alloc_rate: Bytes::from_mib(100),
            minor_survival: 0.10,
            young_live: Bytes::from_mib(16),
            promotion: 0.30,
            live_growth: 0.01,
            live_cap: Bytes::from_mib(64),
            min_heap: Bytes::from_mib(96),
            touch_intensity: 0.5,
        }
    }

    /// Sanity-check parameter ranges.
    pub fn validate(&self) {
        assert!(!self.total_work.is_zero(), "profile needs mutator work");
        assert!(self.mutators > 0, "profile needs at least one thread");
        assert!(
            !self.alloc_rate.is_zero(),
            "profile needs an allocation rate"
        );
        for (v, what) in [
            (self.minor_survival, "minor_survival"),
            (self.promotion, "promotion"),
            (self.live_growth, "live_growth"),
            (self.touch_intensity, "touch_intensity"),
        ] {
            assert!((0.0..=1.0).contains(&v), "{what} must be in [0,1], got {v}");
        }
        assert!(
            self.min_heap >= self.live_cap,
            "a heap smaller than the live set can never run"
        );
    }

    /// The paper sizes Java heaps as "3x of their respective minimum heap
    /// sizes" (§5.1).
    pub fn paper_heap_size(&self) -> Bytes {
        self.min_heap.mul_f64(3.0)
    }

    /// A run-to-run variant of this profile with multiplicative jitter of
    /// amplitude `amp` on work and allocation rate — the §5.1 methodology
    /// ("each result was the average of 10 runs") needs runs that differ.
    pub fn jittered(&self, rng: &mut SimRng, amp: f64) -> JavaProfile {
        let mut p = self.clone();
        p.total_work = p.total_work.mul_f64(rng.jitter(amp));
        p.alloc_rate = p.alloc_rate.mul_f64(rng.jitter(amp));
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_profile_validates() {
        JavaProfile::test_profile().validate();
    }

    #[test]
    fn paper_heap_is_three_times_minimum() {
        let p = JavaProfile::test_profile();
        assert_eq!(p.paper_heap_size(), Bytes::from_mib(96).mul_f64(3.0));
    }

    #[test]
    fn jittered_profiles_stay_close_and_valid() {
        let base = JavaProfile::test_profile();
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..32 {
            let j = base.jittered(&mut rng, 0.03);
            j.validate();
            let ratio = j.total_work.ratio(base.total_work);
            assert!((0.97..=1.03).contains(&ratio), "work jitter {ratio}");
        }
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let base = JavaProfile::test_profile();
        let a = base.jittered(&mut SimRng::seed_from_u64(1), 0.03);
        let b = base.jittered(&mut SimRng::seed_from_u64(1), 0.03);
        assert_eq!(a.total_work, b.total_work);
        assert_eq!(a.alloc_rate, b.alloc_rate);
    }

    #[test]
    #[should_panic]
    fn live_set_larger_than_min_heap_rejected() {
        let mut p = JavaProfile::test_profile();
        p.min_heap = Bytes::from_mib(32);
        p.validate();
    }

    #[test]
    #[should_panic]
    fn out_of_range_fraction_rejected() {
        let mut p = JavaProfile::test_profile();
        p.minor_survival = 1.5;
        p.validate();
    }
}
