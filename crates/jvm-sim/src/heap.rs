//! The generational heap: used/committed/reserved spaces and the elastic
//! limits (`VirtualMax`, `YoungMax`, `OldMax`) of §4.2.
//!
//! Following the paper (and Bruno et al.), heap memory is three nested
//! spaces: *used* (live + dead objects), *committed* (allocated to the
//! JVM), and *reserved* (the static `MaxHeapSize` address range). Scaling
//! the heap means scaling committed; the elastic heap adds a dynamic
//! `VirtualMax ≤ MaxHeapSize` that the sizing algorithm must respect,
//! with `YoungMax`/`OldMax` keeping the young:old = 1:2 ratio.

use arv_cgroups::Bytes;

/// Young:old generation split — the JVM "maintains a fixed ratio of 1:2
/// between the sizes of the young and old generations".
pub const YOUNG_FRACTION: f64 = 1.0 / 3.0;

/// Static and dynamic heap size limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeapLimits {
    /// `MaxHeapSize`: the reserved space, fixed at JVM launch.
    pub reserved: Bytes,
    /// `VirtualMax`: the dynamic limit (= `reserved` for non-elastic
    /// JVMs; tracks effective memory for the elastic JVM).
    pub virtual_max: Bytes,
}

impl HeapLimits {
    /// Static limits: `VirtualMax` pinned to the reserved size.
    pub fn fixed(reserved: Bytes) -> HeapLimits {
        HeapLimits {
            reserved,
            virtual_max: reserved,
        }
    }

    /// `YoungMax`: a third of `VirtualMax` (the 1:2 ratio).
    pub fn young_max(&self) -> Bytes {
        self.virtual_max.mul_f64(YOUNG_FRACTION)
    }

    /// Nominal old-generation maximum under the 1:2 ratio. The heap's
    /// *effective* old limit is dynamic — see [`Heap::old_limit`].
    pub fn old_max(&self) -> Bytes {
        self.virtual_max - self.young_max()
    }
}

/// What a minor collection did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinorGcResult {
    /// Bytes copied (survivors) — the parallel work driver.
    pub copied: Bytes,
    /// Bytes promoted into the old generation.
    pub promoted: Bytes,
    /// The old generation overflowed its maximum: a major GC is required.
    pub needs_major: bool,
}

/// What a major collection did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajorGcResult {
    /// Bytes scanned (live + garbage before collection).
    pub scanned: Bytes,
    /// Live data did not fit under `OldMax`: `OutOfMemoryError`.
    pub oom: bool,
}

/// The generational heap.
#[derive(Debug, Clone)]
pub struct Heap {
    limits: HeapLimits,
    young_committed: Bytes,
    old_committed: Bytes,
    /// Eden fill (includes retained survivors).
    eden_used: Bytes,
    /// Long-lived live data in the old generation.
    old_live: Bytes,
    /// Promoted-but-dead data awaiting a major collection.
    old_garbage: Bytes,
}

impl Heap {
    /// Create a heap with `initial` committed memory split 1:2.
    pub fn new(limits: HeapLimits, initial: Bytes) -> Heap {
        assert!(limits.virtual_max <= limits.reserved);
        let initial = initial.min(limits.virtual_max).max(Bytes::from_mib(4));
        let young = initial.mul_f64(YOUNG_FRACTION);
        Heap {
            limits,
            young_committed: young,
            old_committed: initial - young,
            eden_used: Bytes::ZERO,
            old_live: Bytes::ZERO,
            old_garbage: Bytes::ZERO,
        }
    }

    /// The current size limits.
    pub fn limits(&self) -> HeapLimits {
        self.limits
    }

    /// Total committed heap (charged to the cgroup).
    pub fn committed(&self) -> Bytes {
        self.young_committed + self.old_committed
    }

    /// Total used heap (eden + old generation).
    pub fn used(&self) -> Bytes {
        self.eden_used + self.old_used()
    }

    /// Current eden fill.
    pub fn eden_used(&self) -> Bytes {
        self.eden_used
    }

    /// Old-generation occupancy (live + garbage).
    pub fn old_used(&self) -> Bytes {
        self.old_live + self.old_garbage
    }

    /// Long-lived live data in the old generation.
    pub fn old_live(&self) -> Bytes {
        self.old_live
    }

    /// Committed young-generation space (the eden capacity).
    pub fn young_committed(&self) -> Bytes {
        self.young_committed
    }

    /// Committed old-generation space.
    pub fn old_committed(&self) -> Bytes {
        self.old_committed
    }

    /// Effective old-generation limit: whatever `VirtualMax` leaves after
    /// the young generation's committed space. The 1:2 ratio caps young
    /// growth (`YoungMax`), but the old generation may use all remaining
    /// headroom — HotSpot's adaptive sizing likewise lets the tenured
    /// generation outgrow `NewRatio` under promotion pressure.
    pub fn old_limit(&self) -> Bytes {
        self.limits.virtual_max.saturating_sub(self.young_committed)
    }

    /// Eden headroom before the next minor collection.
    pub fn eden_room(&self) -> Bytes {
        self.young_committed.saturating_sub(self.eden_used)
    }

    /// Pour `bytes` of fresh allocation into eden; returns the overflow
    /// that did not fit (a non-zero overflow triggers a minor GC).
    pub fn allocate(&mut self, bytes: Bytes) -> Bytes {
        let fits = bytes.min(self.eden_room());
        self.eden_used += fits;
        bytes - fits
    }

    /// Survivors of a minor collection: the survival fraction of eden,
    /// capped by the young working set (`young_live`) — with a roomier
    /// eden, objects get more time to die before being collected, so the
    /// copied volume per GC saturates (the generational hypothesis).
    pub fn minor_copied(&self, survival: f64, young_live: Bytes) -> Bytes {
        self.eden_used.mul_f64(survival).min(young_live)
    }

    /// Run a minor collection: copy `copied` survivor bytes and promote
    /// `promotion` of them into the old generation. `live_delta` of the
    /// promoted volume is long-lived (decided by the caller from the
    /// allocation profile); the remainder is medium-lived garbage awaiting
    /// the next major collection. Promotion always covers at least the
    /// live movers. Old-committed grows on demand; committed never drops
    /// below used.
    pub fn minor_gc(&mut self, copied: Bytes, promotion: f64, live_delta: Bytes) -> MinorGcResult {
        let copied = copied.min(self.eden_used);
        let live_delta = live_delta.min(copied);
        let promoted = copied.mul_f64(promotion).max(live_delta);
        let retained = copied - promoted;

        self.eden_used = retained;
        self.old_garbage += promoted - live_delta;
        self.old_live += live_delta;

        // Commit old space on demand (even past the limit — live data
        // cannot be refused mid-collection; the limit drives the
        // needs_major/OOM decisions).
        self.old_committed = self.old_committed.max(self.old_used());
        MinorGcResult {
            copied,
            promoted,
            needs_major: self.old_used() > self.old_limit(),
        }
    }

    /// Run a major collection: scan the old generation and drop garbage.
    /// Reports OOM when the live data alone exceeds the old limit even
    /// after rebalancing the generations.
    pub fn major_gc(&mut self) -> MajorGcResult {
        let scanned = self.old_used();
        self.old_garbage = Bytes::ZERO;
        if self.old_live > self.old_limit() {
            // The young generation grew early and now starves the old
            // generation: give the space back (HotSpot's adaptive sizing
            // rebalances `NewSize` under tenured-generation pressure).
            self.shrink_young_for_old();
        }
        // Committed never tracks below what is still used.
        self.old_committed = self
            .old_committed
            .min(self.old_limit().max(self.old_used()))
            .max(self.old_used());
        MajorGcResult {
            scanned,
            oom: self.old_live > self.old_limit(),
        }
    }

    /// Shrink the young generation's committed space (down to what eden
    /// still holds) so the old generation can use the freed headroom.
    fn shrink_young_for_old(&mut self) {
        let needed_by_old = self.old_live;
        let young_allowance = self
            .limits
            .virtual_max
            .saturating_sub(needed_by_old)
            .max(self.eden_used);
        self.young_committed = self.young_committed.min(young_allowance);
    }

    /// Adaptive sizing after a collection: grow the young generation by
    /// `factor` (bounded by `YoungMax`), mirroring HotSpot expanding eden
    /// while collections are frequent.
    pub fn grow_young(&mut self, factor: f64) {
        debug_assert!(factor >= 1.0);
        self.young_committed = self
            .young_committed
            .mul_f64(factor)
            .min(self.limits.young_max())
            .min(self.limits.virtual_max.saturating_sub(self.old_committed))
            .max(self.eden_used);
    }

    /// Shrink committed space down toward the current maxima (elastic
    /// case 2). Committed never drops below used.
    pub fn shrink_committed(&mut self) {
        self.young_committed = self
            .young_committed
            .min(self.limits.young_max())
            .max(self.eden_used);
        self.old_committed = self
            .old_committed
            .min(self.old_limit())
            .max(self.old_used());
    }

    /// Update `VirtualMax` (elastic heap). Returns `true` when used data
    /// now exceeds the new maxima — the caller must run collections
    /// (elastic case 3).
    pub fn set_virtual_max(&mut self, v: Bytes) -> bool {
        self.limits.virtual_max = v.min(self.limits.reserved);
        self.eden_used > self.limits.young_max() || self.old_used() > self.old_limit()
    }

    /// True when committed space overruns the current maxima (elastic
    /// case 2: red lines crossed black lines).
    pub fn committed_over_max(&self) -> bool {
        self.young_committed > self.limits.young_max() || self.old_committed > self.old_limit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_1g() -> Heap {
        Heap::new(HeapLimits::fixed(Bytes::from_gib(1)), Bytes::from_mib(300))
    }

    #[test]
    fn limits_keep_one_to_two_ratio() {
        let l = HeapLimits::fixed(Bytes::from_mib(900));
        assert_eq!(l.young_max(), Bytes::from_mib(300));
        assert_eq!(l.old_max(), Bytes::from_mib(600));
    }

    #[test]
    fn initial_committed_split() {
        let h = heap_1g();
        assert_eq!(h.young_committed(), Bytes::from_mib(100));
        assert_eq!(h.old_committed(), Bytes::from_mib(200));
        assert_eq!(h.committed(), Bytes::from_mib(300));
        assert_eq!(h.used(), Bytes::ZERO);
    }

    #[test]
    fn allocation_fills_eden_and_overflows() {
        let mut h = heap_1g();
        assert_eq!(h.allocate(Bytes::from_mib(60)), Bytes::ZERO);
        assert_eq!(h.eden_used(), Bytes::from_mib(60));
        // 50 more only 40 fit.
        assert_eq!(h.allocate(Bytes::from_mib(50)), Bytes::from_mib(10));
        assert_eq!(h.eden_used(), Bytes::from_mib(100));
        assert_eq!(h.eden_room(), Bytes::ZERO);
    }

    #[test]
    fn minor_gc_copies_promotes_and_retains() {
        let mut h = heap_1g();
        h.allocate(Bytes::from_mib(100));
        let copied = h.minor_copied(0.2, Bytes::from_gib(1));
        let r = h.minor_gc(copied, 0.5, Bytes::from_mib(3));
        assert_eq!(r.copied, Bytes::from_mib(20));
        // 10 MiB promoted: 3 MiB of it live growth, 7 MiB garbage.
        assert_eq!(r.promoted, Bytes::from_mib(10));
        assert!(!r.needs_major);
        assert_eq!(h.eden_used(), Bytes::from_mib(10)); // retained survivors
        assert_eq!(h.old_used(), Bytes::from_mib(10));
        assert_eq!(h.old_live(), Bytes::from_mib(3));
    }

    #[test]
    fn repeated_promotion_triggers_major() {
        let mut h = Heap::new(HeapLimits::fixed(Bytes::from_mib(90)), Bytes::from_mib(90));
        let mut needs_major = false;
        for _ in 0..40 {
            h.allocate(h.eden_room());
            let copied = h.minor_copied(0.5, Bytes::from_gib(1));
            let r = h.minor_gc(copied, 0.8, Bytes::from_mib(1));
            if r.needs_major {
                needs_major = true;
                break;
            }
        }
        assert!(needs_major, "old generation should eventually overflow");
        let m = h.major_gc();
        assert!(m.scanned > Bytes::ZERO);
        assert!(!m.oom);
        assert_eq!(h.old_used(), h.old_live());
    }

    #[test]
    fn major_gc_reports_oom_when_live_exceeds_the_heap() {
        let mut h = Heap::new(HeapLimits::fixed(Bytes::from_mib(90)), Bytes::from_mib(90));
        // Promote live data until it cannot fit the whole heap, even with
        // the young generation rebalanced away.
        for _ in 0..4 {
            let filled = h.eden_room();
            h.allocate(filled);
            h.minor_gc(filled, 1.0, filled);
        }
        assert!(h.old_live() > Bytes::from_mib(90));
        let m = h.major_gc();
        assert!(m.oom);
        // Short of that point, rebalancing saves an over-live heap.
        let mut h2 = Heap::new(HeapLimits::fixed(Bytes::from_mib(90)), Bytes::from_mib(90));
        let filled = h2.eden_room();
        h2.allocate(filled);
        h2.minor_gc(filled, 1.0, filled); // 30 MiB live, fits after rebalance
        assert!(!h2.major_gc().oom);
    }

    #[test]
    fn grow_young_caps_at_young_max() {
        let mut h = heap_1g();
        for _ in 0..20 {
            h.grow_young(1.5);
        }
        assert_eq!(h.young_committed(), h.limits().young_max());
    }

    #[test]
    fn virtual_max_shrink_flags_used_overflow() {
        let mut h = heap_1g();
        h.allocate(Bytes::from_mib(90));
        // Shrink VirtualMax so YoungMax (= V/3) falls below eden_used.
        let must_gc = h.set_virtual_max(Bytes::from_mib(150));
        assert!(must_gc);
        // With a roomier VirtualMax it is fine.
        let must_gc = h.set_virtual_max(Bytes::from_mib(600));
        assert!(!must_gc);
    }

    #[test]
    fn shrink_committed_respects_used_floor() {
        let mut h = heap_1g();
        h.allocate(Bytes::from_mib(80));
        h.set_virtual_max(Bytes::from_mib(150)); // young_max = 50 < eden_used
        assert!(h.committed_over_max());
        h.shrink_committed();
        // Committed cannot go below the 80 MiB still used in eden.
        assert_eq!(h.young_committed(), Bytes::from_mib(80));
    }

    #[test]
    fn virtual_max_clamped_to_reserved() {
        let mut h = heap_1g();
        h.set_virtual_max(Bytes::from_gib(64));
        assert_eq!(h.limits().virtual_max, Bytes::from_gib(1));
    }

    #[test]
    fn committed_grows_on_demand_for_promotion() {
        let mut h = heap_1g();
        h.allocate(Bytes::from_mib(100));
        // Promote the whole eden beyond old_committed (200 MiB).
        h.minor_gc(Bytes::from_mib(100), 1.0, Bytes::from_mib(100));
        assert!(h.old_committed() >= Bytes::from_mib(100));
        assert!(h.old_committed() >= h.old_used());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary sequences of heap operations preserve the accounting
    /// invariants: committed ≥ used, committed ≤ reserved (once settled),
    /// eden within young-committed, and live data never lost by a GC.
    #[derive(Debug, Clone)]
    enum Op {
        Alloc(u64),
        Minor {
            survival: f64,
            promotion: f64,
            live_mib: u64,
        },
        Major,
        GrowYoung,
        SetVirtualMax(u64),
        Shrink,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1u64..256).prop_map(Op::Alloc),
            (0.0f64..1.0, 0.0f64..1.0, 0u64..32).prop_map(|(survival, promotion, live_mib)| {
                Op::Minor {
                    survival,
                    promotion,
                    live_mib,
                }
            }),
            Just(Op::Major),
            Just(Op::GrowYoung),
            (64u64..2048).prop_map(Op::SetVirtualMax),
            Just(Op::Shrink),
        ]
    }

    proptest! {
        #[test]
        fn accounting_invariants_hold(ops in prop::collection::vec(op_strategy(), 1..64)) {
            let mut h = Heap::new(
                HeapLimits::fixed(Bytes::from_gib(2)),
                Bytes::from_mib(256),
            );
            for op in ops {
                match op {
                    Op::Alloc(mib) => {
                        let overflow = h.allocate(Bytes::from_mib(mib));
                        prop_assert!(overflow <= Bytes::from_mib(mib));
                    }
                    Op::Minor { survival, promotion, live_mib } => {
                        let live_before = h.old_live();
                        let copied = h.minor_copied(survival, Bytes::from_gib(64));
                        let r = h.minor_gc(copied, promotion, Bytes::from_mib(live_mib));
                        prop_assert!(r.copied <= Bytes::from_gib(2));
                        // Live data only grows at a minor collection.
                        prop_assert!(h.old_live() >= live_before);
                    }
                    Op::Major => {
                        let live = h.old_live();
                        let r = h.major_gc();
                        prop_assert!(r.scanned >= live);
                        // A major collection never destroys live data.
                        prop_assert_eq!(h.old_live(), live);
                        prop_assert_eq!(h.old_used(), live);
                    }
                    Op::GrowYoung => h.grow_young(1.5),
                    Op::SetVirtualMax(mib) => {
                        h.set_virtual_max(Bytes::from_mib(mib));
                        prop_assert!(h.limits().virtual_max <= h.limits().reserved);
                    }
                    Op::Shrink => h.shrink_committed(),
                }
                // Global invariants after every operation.
                prop_assert!(
                    h.committed() >= h.used(),
                    "committed {} < used {}",
                    h.committed(),
                    h.used()
                );
                prop_assert!(h.eden_used() <= h.young_committed());
                prop_assert!(h.old_used() <= h.old_committed());
            }
        }
    }
}
