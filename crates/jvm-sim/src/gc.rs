//! The parallel-GC cost model.
//!
//! A collection is stop-the-world CPU work with a serial part (VM
//! bookkeeping, worker wake-up/join) and a parallel part (copying or
//! scanning bytes) decomposed through the [`crate::tasks`] queue. The
//! work executes through the shared CFS model: each scheduling period the
//! container's GC workers receive a CPU grant, and progress follows from
//! it. Over-threading shows up through three real mechanisms:
//!
//! 1. **startup** — every woken worker costs serial wake/join time;
//! 2. **imbalance** — more workers than queue tasks idle at the barrier
//!    (computed by greedy list scheduling over the task decomposition);
//! 3. **contention** — workers beyond the CPUs actually granted
//!    time-slice, thrash the `GCTaskManager` monitor and caches, inflating
//!    the parallel work by `1 + α·(excess/granted)` — the calibrated
//!    analogue of the degradation measured in the paper's §2.2.

use arv_cgroups::Bytes;
use arv_sim_core::SimDuration;

use crate::tasks::imbalance_factor;

/// Calibrated GC cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcCostModel {
    /// Parallel CPU cost per MiB copied in a minor collection
    /// (~330 MiB/s per core — evacuation of pointer-dense object graphs).
    pub copy_cost_per_mib: SimDuration,
    /// Parallel CPU cost per MiB scanned in a major collection.
    pub scan_cost_per_mib: SimDuration,
    /// Fixed serial cost of a minor collection.
    pub minor_serial: SimDuration,
    /// Fixed serial cost of a major collection.
    pub major_serial: SimDuration,
    /// Serial wake/join cost per activated worker.
    pub worker_startup: SimDuration,
    /// Contention inflation coefficient `α`.
    pub contention_alpha: f64,
    /// Card-table stripes per collection (task granularity).
    pub stripes: u32,
}

impl Default for GcCostModel {
    fn default() -> Self {
        GcCostModel {
            copy_cost_per_mib: SimDuration::from_micros(3_000),
            scan_cost_per_mib: SimDuration::from_micros(1_000),
            minor_serial: SimDuration::from_micros(1_000),
            major_serial: SimDuration::from_micros(5_000),
            worker_startup: SimDuration::from_micros(200),
            contention_alpha: 0.35,
            stripes: 64,
        }
    }
}

/// Kind of collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    /// Young-generation (parallel scavenge) collection.
    Minor,
    /// Full collection of the old generation.
    Major,
}

/// One in-flight collection.
#[derive(Debug, Clone)]
pub struct GcWork {
    /// Minor or major.
    pub kind: GcKind,
    /// Active GC worker threads for this collection.
    pub workers: u32,
    serial_remaining: SimDuration,
    parallel_remaining: SimDuration,
    wall: SimDuration,
}

impl GcWork {
    /// Build the work for a minor collection copying `copied` bytes with
    /// `workers` active GC threads.
    pub fn minor(model: &GcCostModel, copied: Bytes, workers: u32) -> GcWork {
        Self::build(
            GcKind::Minor,
            model,
            model.copy_cost_per_mib.mul_f64(copied.as_mib_f64()),
            model.minor_serial,
            workers,
        )
    }

    /// Build the work for a major collection scanning `scanned` bytes.
    pub fn major(model: &GcCostModel, scanned: Bytes, workers: u32) -> GcWork {
        Self::build(
            GcKind::Major,
            model,
            model.scan_cost_per_mib.mul_f64(scanned.as_mib_f64()),
            model.major_serial,
            workers,
        )
    }

    fn build(
        kind: GcKind,
        model: &GcCostModel,
        parallel: SimDuration,
        serial_base: SimDuration,
        workers: u32,
    ) -> GcWork {
        let workers = workers.max(1);
        let imbalance = imbalance_factor(parallel, model.stripes, workers);
        GcWork {
            kind,
            workers,
            serial_remaining: serial_base + model.worker_startup * u64::from(workers),
            parallel_remaining: parallel.mul_f64(imbalance),
            wall: SimDuration::ZERO,
        }
    }

    /// Total CPU work still to do.
    pub fn remaining(&self) -> SimDuration {
        self.serial_remaining + self.parallel_remaining
    }

    /// Wall time spent in this collection so far.
    pub fn wall(&self) -> SimDuration {
        self.wall
    }

    /// Whether the collection has finished.
    pub fn is_done(&self) -> bool {
        self.remaining().is_zero()
    }

    /// Advance the collection by one scheduling period in which the
    /// container was granted `granted` CPU time. `slow_factor ≥ 1` models
    /// swap-induced slowdown (each unit of work costs that much more CPU).
    /// Returns `true` when the collection completes within the period.
    pub fn advance(
        &mut self,
        model: &GcCostModel,
        granted: SimDuration,
        period: SimDuration,
        slow_factor: f64,
    ) -> bool {
        debug_assert!(slow_factor >= 1.0);
        self.wall += period;
        let mut budget = granted.mul_f64(1.0 / slow_factor);

        // Serial phase: single-threaded, so bounded by wall time too.
        let serial_step = self.serial_remaining.min(budget).min(period);
        self.serial_remaining -= serial_step;
        budget -= serial_step;
        if budget.is_zero() || self.parallel_remaining.is_zero() {
            return self.is_done();
        }

        // Parallel phase: contention discounts progress when more workers
        // are runnable than CPUs were granted.
        let granted_cpus = granted.ratio(period).max(1e-6);
        let excess = (self.workers as f64 - granted_cpus).max(0.0);
        let efficiency = 1.0 / (1.0 + model.contention_alpha * excess / granted_cpus);
        let progress = budget.mul_f64(efficiency).min(self.parallel_remaining);
        self.parallel_remaining -= progress;
        self.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: SimDuration = SimDuration::from_millis(24);

    fn run_to_completion(work: &mut GcWork, model: &GcCostModel, cpus: f64) -> SimDuration {
        let granted = P.mul_f64(cpus.min(work.workers as f64));
        for _ in 0..100_000 {
            if work.advance(model, granted, P, 1.0) {
                return work.wall();
            }
        }
        panic!("GC did not complete");
    }

    #[test]
    fn minor_gc_work_scales_with_copied_bytes() {
        let m = GcCostModel::default();
        let small = GcWork::minor(&m, Bytes::from_mib(10), 4);
        let large = GcWork::minor(&m, Bytes::from_mib(100), 4);
        assert!(large.remaining() > small.remaining() * 5);
    }

    #[test]
    fn right_sized_workers_beat_overthreading() {
        // 4 effective CPUs: 4 workers should finish much faster than 20
        // workers — the §2.2 observation.
        let m = GcCostModel::default();
        let mut four = GcWork::minor(&m, Bytes::from_mib(200), 4);
        let mut twenty = GcWork::minor(&m, Bytes::from_mib(200), 20);
        let t4 = run_to_completion(&mut four, &m, 4.0);
        let t20 = run_to_completion(&mut twenty, &m, 4.0);
        assert!(
            t20.as_secs_f64() > t4.as_secs_f64() * 1.8,
            "over-threading too cheap: {t4} vs {t20}"
        );
    }

    #[test]
    fn more_cpus_help_up_to_worker_count() {
        let m = GcCostModel::default();
        let mut w1 = GcWork::minor(&m, Bytes::from_mib(200), 8);
        let mut w2 = GcWork::minor(&m, Bytes::from_mib(200), 8);
        let slow = run_to_completion(&mut w1, &m, 2.0);
        let fast = run_to_completion(&mut w2, &m, 8.0);
        assert!(fast < slow);
    }

    #[test]
    fn single_worker_has_no_contention_penalty() {
        let m = GcCostModel::default();
        let mut w = GcWork::minor(&m, Bytes::from_mib(50), 1);
        // 1 worker on 1 CPU: wall ≈ serial + parallel.
        let expected = w.remaining();
        let wall = run_to_completion(&mut w, &m, 1.0);
        let slack = wall.as_micros() as i64 - expected.as_micros() as i64;
        assert!(
            slack.abs() <= P.as_micros() as i64,
            "wall {wall} vs {expected}"
        );
    }

    #[test]
    fn swap_slowdown_multiplies_wall_time() {
        let m = GcCostModel::default();
        let mut normal = GcWork::major(&m, Bytes::from_mib(100), 4);
        let mut swapped = GcWork::major(&m, Bytes::from_mib(100), 4);
        let granted = P * 4;
        let mut wall_n = 0;
        while !normal.advance(&m, granted, P, 1.0) {
            wall_n += 1;
        }
        let mut wall_s = 0;
        while !swapped.advance(&m, granted, P, 10.0) {
            wall_s += 1;
            assert!(wall_s < 1_000_000);
        }
        assert!(wall_s as f64 > wall_n as f64 * 5.0);
    }

    #[test]
    fn major_scan_cheaper_per_byte_than_minor_copy() {
        let m = GcCostModel::default();
        let minor = GcWork::minor(&m, Bytes::from_mib(100), 4);
        let major = GcWork::major(&m, Bytes::from_mib(100), 4);
        assert!(major.remaining() < minor.remaining());
    }

    #[test]
    fn zero_byte_collection_still_pays_serial_cost() {
        let m = GcCostModel::default();
        let w = GcWork::minor(&m, Bytes::ZERO, 4);
        assert_eq!(w.remaining(), m.minor_serial + m.worker_startup * 4);
    }

    #[test]
    fn worker_count_clamped_to_one() {
        let m = GcCostModel::default();
        let w = GcWork::minor(&m, Bytes::from_mib(10), 0);
        assert_eq!(w.workers, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const P: SimDuration = SimDuration::from_millis(24);

    fn wall(copied_mib: u64, workers: u32, cpus: f64) -> f64 {
        let m = GcCostModel::default();
        let mut w = GcWork::minor(&m, Bytes::from_mib(copied_mib), workers);
        let granted = P.mul_f64(cpus.min(f64::from(w.workers)));
        for _ in 0..10_000_000 {
            if w.advance(&m, granted, P, 1.0) {
                return w.wall().as_secs_f64();
            }
        }
        panic!("GC did not complete");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// More granted CPUs never slow a collection down (same workers).
        #[test]
        fn wall_time_monotone_in_cpus(
            copied in 1u64..256,
            workers in 1u32..20,
            cpus in 1u32..19,
        ) {
            let slow = wall(copied, workers, f64::from(cpus));
            let fast = wall(copied, workers, f64::from(cpus + 1));
            prop_assert!(fast <= slow + 1e-9, "{fast} > {slow}");
        }

        /// With a fixed CPU grant, matching workers to CPUs never loses to
        /// over-threading beyond them.
        #[test]
        fn right_sizing_never_loses_to_overthreading(
            copied in 8u64..256,
            cpus in 1u32..8,
            excess in 1u32..12,
        ) {
            let sized = wall(copied, cpus, f64::from(cpus));
            let over = wall(copied, cpus + excess, f64::from(cpus));
            prop_assert!(
                sized <= over + 1e-9,
                "{cpus} workers ({sized}s) lost to {} workers ({over}s)",
                cpus + excess
            );
        }

        /// Remaining work is consumed exactly: never negative, done only
        /// at zero.
        #[test]
        fn remaining_work_is_conserved(
            copied in 0u64..128,
            workers in 1u32..20,
        ) {
            let m = GcCostModel::default();
            let mut w = GcWork::minor(&m, Bytes::from_mib(copied), workers);
            let total = w.remaining();
            prop_assert!(!total.is_zero());
            let granted = P * u64::from(workers);
            let mut steps = 0u32;
            while !w.advance(&m, granted, P, 1.0) {
                steps += 1;
                prop_assert!(steps < 1_000_000);
            }
            prop_assert!(w.is_done());
            prop_assert_eq!(w.remaining(), SimDuration::ZERO);
        }
    }
}
