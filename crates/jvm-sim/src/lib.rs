//! A HotSpot-like JVM model with the Parallel Scavenge collector.
//!
//! The paper's two case studies both live inside HotSpot: **dynamic
//! parallelism** (the PS collector waking `min(N, N_active, E_CPU)` GC
//! workers per collection, §4.1) and the **elastic heap** (`VirtualMax` /
//! `YoungMax` / `OldMax` decoupling the sizing algorithm from the static
//! reserved size, §4.2). This crate models the JVM at the granularity
//! those mechanisms act on:
//!
//! * a generational heap (eden-centric young generation + old generation,
//!   1:2 size ratio) with committed/used/reserved accounting charged to
//!   the container's memory cgroup;
//! * minor/major collections whose CPU cost scales with bytes copied and
//!   scanned, decomposed through a `GCTaskQueue` (dynamic work assignment
//!   with steal tasks, as in Figure 4 of the paper) and executed through
//!   the shared CFS model — so over-threading, CPU contention from
//!   neighbouring containers, and swap-induced collapse all emerge from
//!   the same substrate the resource view observes;
//! * launch-time GC-thread and heap policies reproducing JDK 8 (host
//!   view), JDK 9 (static limits), JDK 10 (static shares), hand-optimized
//!   configurations, and the paper's adaptive JVM.

#![warn(missing_docs)]

pub mod gc;
pub mod heap;
pub mod jvm;
pub mod policy;
pub mod profile;
pub mod tasks;

pub use gc::{GcCostModel, GcKind, GcWork};
pub use heap::{Heap, HeapLimits};
pub use jvm::{Jvm, JvmConfig, JvmMetrics, JvmOutcome};
pub use policy::{
    dynamic_active_workers, gc_workers, hotspot_default_gc_threads, ContainerAwareness, HeapPolicy,
};
pub use profile::JavaProfile;
pub use tasks::{GcTask, GcTaskQueue};
