//! Launch-time and per-collection configuration policies: what each JDK
//! generation (and the paper's adaptive JVM) believes about its container.

use arv_cgroups::Bytes;

/// How the JVM discovers its resources at launch (§2.2, §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerAwareness {
    /// JDK 8 and earlier: probes the host — online CPUs and physical
    /// memory — oblivious to cgroup limits.
    None,
    /// JDK 9: reads the *static* cgroup limits (cpuset/quota, hard memory
    /// limit) at launch and never again.
    StaticLimits,
    /// JDK 10: additionally derives a core count from the *static* CPU
    /// shares (an algorithm "similar to line 4 of Algorithm 1"), still
    /// fixed for the JVM's lifetime.
    StaticShares,
    /// The paper: reads the continuously updated `sys_namespace` view.
    AdaptiveView,
}

/// How the maximum heap size is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeapPolicy {
    /// `MaxHeapSize = fraction × visible memory` (HotSpot default: 1/4 of
    /// whatever memory the awareness level exposes).
    Auto {
        /// The fraction of visible memory to use as `MaxHeapSize`.
        fraction: f64,
    },
    /// Hand-set `-Xmx`.
    FixedMax(Bytes),
    /// §4.2 elastic heap: reserve close to physical memory, track
    /// effective memory through `VirtualMax`.
    Elastic,
}

impl HeapPolicy {
    /// The HotSpot default: a quarter of visible memory.
    pub fn auto_default() -> HeapPolicy {
        HeapPolicy::Auto { fraction: 0.25 }
    }
}

/// HotSpot's default `ParallelGCThreads` for `cpus` visible CPUs:
/// `cpus` up to 8, then `8 + (cpus − 8) × 5/8`. On the paper's 20-core
/// host this yields 15, matching "the vanilla JVM configured 15 GC
/// threads" in §5.2.
pub fn hotspot_default_gc_threads(cpus: u32) -> u32 {
    if cpus <= 8 {
        cpus.max(1)
    } else {
        8 + (cpus - 8) * 5 / 8
    }
}

/// The pre-existing "dynamic GC threads" heuristic (§4.1): active workers
/// from the mutator count and heap size, capped by the launch count. The
/// heap term imposes "a minimum amount of work for a GC thread to
/// process" (~32 MiB of heap per worker).
pub fn dynamic_active_workers(mutators: u32, heap_committed: Bytes, launch_threads: u32) -> u32 {
    let by_mutators = (mutators as f64 * 2.0 / 3.0).ceil() as u32;
    let by_heap = (heap_committed.as_mib_f64() / 32.0).ceil().max(1.0) as u32;
    by_mutators.max(1).min(by_heap).min(launch_threads).max(1)
}

/// Per-collection worker count (§4.1):
/// `N_gc = min(N, N_active?, E_CPU?)` — `N_active` only with dynamic GC
/// threads enabled, `E_CPU` only for the adaptive JVM.
pub fn gc_workers(launch_threads: u32, n_active: Option<u32>, effective_cpu: Option<u32>) -> u32 {
    let mut n = launch_threads;
    if let Some(a) = n_active {
        n = n.min(a);
    }
    if let Some(e) = effective_cpu {
        n = n.min(e);
    }
    n.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspot_threads_match_known_values() {
        assert_eq!(hotspot_default_gc_threads(1), 1);
        assert_eq!(hotspot_default_gc_threads(4), 4);
        assert_eq!(hotspot_default_gc_threads(8), 8);
        assert_eq!(hotspot_default_gc_threads(10), 9);
        // The paper's host: 20 cores → 15 GC threads (§5.2).
        assert_eq!(hotspot_default_gc_threads(20), 15);
        assert_eq!(hotspot_default_gc_threads(0), 1);
    }

    #[test]
    fn dynamic_workers_limited_by_small_heap() {
        // A 128 MiB heap supports only 4 workers regardless of mutators.
        assert_eq!(dynamic_active_workers(16, Bytes::from_mib(128), 15), 4);
    }

    #[test]
    fn dynamic_workers_limited_by_mutators() {
        // 3 mutators → ceil(2) = 2 workers even with a huge heap.
        assert_eq!(dynamic_active_workers(3, Bytes::from_gib(16), 15), 2);
    }

    #[test]
    fn dynamic_workers_capped_by_launch_count() {
        assert_eq!(dynamic_active_workers(100, Bytes::from_gib(64), 15), 15);
    }

    #[test]
    fn dynamic_workers_at_least_one() {
        assert_eq!(dynamic_active_workers(1, Bytes::from_mib(1), 15), 1);
    }

    #[test]
    fn gc_workers_takes_the_minimum() {
        assert_eq!(gc_workers(15, Some(10), Some(4)), 4);
        assert_eq!(gc_workers(15, Some(3), Some(8)), 3);
        assert_eq!(gc_workers(2, Some(10), Some(8)), 2);
        assert_eq!(gc_workers(15, None, None), 15);
        assert_eq!(gc_workers(15, None, Some(6)), 6);
    }

    #[test]
    fn gc_workers_never_zero() {
        assert_eq!(gc_workers(1, Some(0), Some(0)), 1);
    }
}
