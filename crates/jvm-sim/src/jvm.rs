//! The JVM state machine: mutator and stop-the-world GC phases advancing
//! on the simulated host, with launch-time container awareness and the
//! elastic-heap controller.

use arv_cgroups::{Bytes, CgroupId};
use arv_container::SimHost;
use arv_sim_core::{SimDuration, SimTime, TimeSeries};

use crate::gc::{GcCostModel, GcKind, GcWork};
use crate::heap::{Heap, HeapLimits};
use crate::policy::{
    dynamic_active_workers, gc_workers, hotspot_default_gc_threads, ContainerAwareness, HeapPolicy,
};
use crate::profile::JavaProfile;

/// Full JVM configuration.
#[derive(Debug, Clone)]
pub struct JvmConfig {
    /// How the JVM discovers its resources at launch.
    pub awareness: ContainerAwareness,
    /// Hand-set GC thread count (`-XX:ParallelGCThreads`), overriding the
    /// awareness-derived default.
    pub gc_threads_override: Option<u32>,
    /// The pre-existing "dynamic GC threads" heuristic (`N_active`).
    pub dynamic_gc_threads: bool,
    /// How the maximum heap size is chosen.
    pub heap_policy: HeapPolicy,
    /// `-Xms`; defaults to a quarter of the (virtual) max heap.
    pub xms: Option<Bytes>,
    /// The calibrated GC cost model.
    pub gc_cost: GcCostModel,
    /// Young-generation growth per collection while below `YoungMax`.
    pub young_grow_factor: f64,
    /// GC-overhead target of the adaptive sizing algorithm: the young
    /// generation grows only while collections cost more than this
    /// fraction of elapsed time (HotSpot's throughput goal).
    pub gc_overhead_target: f64,
    /// Elastic-heap poll interval: "we query sys_namespace every 10s and
    /// perform the adjustment if needed" (§4.2).
    pub elastic_poll: SimDuration,
    /// Slowdown scale for swapped memory (calibrates the Figure 11
    /// performance collapse).
    pub swap_penalty: f64,
    /// Record per-period used/committed/VirtualMax series (Figure 12).
    pub record_heap_trace: bool,
}

impl JvmConfig {
    fn base(awareness: ContainerAwareness) -> JvmConfig {
        JvmConfig {
            awareness,
            gc_threads_override: None,
            dynamic_gc_threads: false,
            heap_policy: HeapPolicy::auto_default(),
            xms: None,
            gc_cost: GcCostModel::default(),
            young_grow_factor: 1.5,
            gc_overhead_target: 0.10,
            elastic_poll: SimDuration::from_secs(10),
            swap_penalty: 150.0,
            record_heap_trace: false,
        }
    }

    /// JDK 8 and earlier: host-oblivious static configuration.
    pub fn vanilla_jdk8() -> JvmConfig {
        Self::base(ContainerAwareness::None)
    }

    /// JDK 9: static cpuset/quota and hard-memory-limit awareness.
    pub fn jdk9() -> JvmConfig {
        Self::base(ContainerAwareness::StaticLimits)
    }

    /// JDK 10: JDK 9 plus static share-derived CPU count.
    pub fn jdk10() -> JvmConfig {
        Self::base(ContainerAwareness::StaticShares)
    }

    /// The paper's JVM: adaptive view, dynamic GC threads, elastic heap.
    pub fn adaptive() -> JvmConfig {
        let mut cfg = Self::base(ContainerAwareness::AdaptiveView);
        cfg.dynamic_gc_threads = true;
        cfg
    }

    /// Builder-style: toggle the `N_active` heuristic.
    pub fn with_dynamic_gc_threads(mut self, on: bool) -> JvmConfig {
        self.dynamic_gc_threads = on;
        self
    }

    /// Builder-style: hand-set the GC thread count.
    pub fn with_gc_threads(mut self, n: u32) -> JvmConfig {
        self.gc_threads_override = Some(n.max(1));
        self
    }

    /// Builder-style: choose the max-heap policy.
    pub fn with_heap_policy(mut self, p: HeapPolicy) -> JvmConfig {
        self.heap_policy = p;
        self
    }

    /// Builder-style: set the initial heap size (`-Xms`).
    pub fn with_xms(mut self, xms: Bytes) -> JvmConfig {
        self.xms = Some(xms);
        self
    }

    /// Builder-style: record the Figure 12 heap traces.
    pub fn with_heap_trace(mut self) -> JvmConfig {
        self.record_heap_trace = true;
        self
    }
}

/// Lifecycle state of the JVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JvmOutcome {
    /// Still executing.
    Running,
    /// Finished all mutator work.
    Completed,
    /// Java-level `OutOfMemoryError`: live data cannot fit in the heap
    /// limits (the missing bars of Figure 2(b)).
    OomError,
    /// Killed by the kernel: the cgroup could not be charged.
    OomKilled,
}

/// Measurements collected over a run.
#[derive(Debug, Clone)]
pub struct JvmMetrics {
    /// Total wall time from launch to completion.
    pub exec_wall: SimDuration,
    /// Wall time spent in stop-the-world collections.
    pub gc_wall: SimDuration,
    /// Wall time spent running application threads.
    pub mutator_wall: SimDuration,
    /// Number of minor collections.
    pub minor_gcs: u32,
    /// Number of major collections.
    pub major_gcs: u32,
    /// Worker count of each collection, in order (Figure 8(b)).
    pub gc_thread_trace: Vec<u32>,
    /// Used heap over time (GiB), when tracing is enabled.
    pub used_series: TimeSeries,
    /// Committed heap over time (GiB), when tracing is enabled.
    pub committed_series: TimeSeries,
    /// `VirtualMax` over time (GiB), when tracing is enabled.
    pub virtual_max_series: TimeSeries,
}

impl JvmMetrics {
    fn new() -> JvmMetrics {
        JvmMetrics {
            exec_wall: SimDuration::ZERO,
            gc_wall: SimDuration::ZERO,
            mutator_wall: SimDuration::ZERO,
            minor_gcs: 0,
            major_gcs: 0,
            gc_thread_trace: Vec::new(),
            used_series: TimeSeries::new("used"),
            committed_series: TimeSeries::new("committed"),
            virtual_max_series: TimeSeries::new("virtual_max"),
        }
    }

    /// Total collections (minor + major).
    pub fn gc_count(&self) -> u32 {
        self.minor_gcs + self.major_gcs
    }
}

#[derive(Debug, Clone)]
enum Phase {
    Mutator,
    Gc(GcWork),
}

/// A running (simulated) JVM bound to one container.
#[derive(Debug, Clone)]
pub struct Jvm {
    id: CgroupId,
    cfg: JvmConfig,
    profile: JavaProfile,
    heap: Heap,
    launch_threads: u32,
    work_remaining: SimDuration,
    alloc_since_minor: Bytes,
    pending_alloc: Bytes,
    charged: Bytes,
    phase: Phase,
    outcome: JvmOutcome,
    metrics: JvmMetrics,
    last_elastic_poll: SimTime,
    last_minor_end: SimTime,
}

impl Jvm {
    /// Launch the JVM inside container `id` on `host`.
    ///
    /// Resource discovery follows the configured awareness level:
    /// * visible CPUs — host online count (JDK 8 / the adaptive JVM's
    ///   launch maximum), the namespace's static upper bound
    ///   (JDK 9: cpuset/quota) or static lower bound (JDK 10: shares);
    /// * visible memory — host physical (JDK 8), the cgroup hard limit
    ///   (JDK 9/10), or the effective-memory view (adaptive).
    pub fn launch(host: &mut SimHost, id: CgroupId, cfg: JvmConfig, profile: JavaProfile) -> Jvm {
        profile.validate();
        let ns = host
            .monitor()
            .namespace(id)
            .expect("container has a namespace");
        let bounds = ns.cpu_bounds();

        let visible_cpus = match cfg.awareness {
            ContainerAwareness::None | ContainerAwareness::AdaptiveView => host.online_cpus(),
            ContainerAwareness::StaticLimits => bounds.upper,
            ContainerAwareness::StaticShares => bounds.lower,
        };
        let launch_threads = cfg
            .gc_threads_override
            .unwrap_or_else(|| hotspot_default_gc_threads(visible_cpus));

        let hard = host
            .mem()
            .hard_limit(id)
            .unwrap_or_else(|| host.total_memory());
        let visible_mem = match cfg.awareness {
            ContainerAwareness::None => host.total_memory(),
            ContainerAwareness::StaticLimits | ContainerAwareness::StaticShares => hard,
            ContainerAwareness::AdaptiveView => host.effective_memory(id),
        };

        let limits = match cfg.heap_policy {
            HeapPolicy::Auto { fraction } => HeapLimits::fixed(visible_mem.mul_f64(fraction)),
            HeapPolicy::FixedMax(max) => HeapLimits::fixed(max),
            HeapPolicy::Elastic => HeapLimits {
                // "Setting the original reserved size MaxHeapSize to a
                // sufficiently large value, close to the size of physical
                // memory" (§4.2).
                reserved: host.total_memory().mul_f64(0.9),
                virtual_max: host.effective_memory(id),
            },
        };
        let initial = cfg.xms.unwrap_or_else(|| limits.virtual_max.mul_f64(0.25));
        let heap = Heap::new(limits, initial);

        // A max heap below the benchmark's minimum cannot run at all. For
        // the elastic heap the bound that matters is the limit the view
        // can eventually grow to (the hard limit).
        let eventual_max = match cfg.heap_policy {
            HeapPolicy::Elastic => hard.min(limits.reserved),
            _ => limits.virtual_max,
        };
        let outcome = if profile.min_heap > eventual_max {
            JvmOutcome::OomError
        } else {
            JvmOutcome::Running
        };

        let mut jvm = Jvm {
            id,
            work_remaining: profile.total_work,
            launch_threads,
            heap,
            cfg,
            profile,
            alloc_since_minor: Bytes::ZERO,
            pending_alloc: Bytes::ZERO,
            charged: Bytes::ZERO,
            phase: Phase::Mutator,
            outcome,
            metrics: JvmMetrics::new(),
            last_elastic_poll: host.now(),
            last_minor_end: host.now(),
        };
        if jvm.outcome == JvmOutcome::Running {
            jvm.sync_charge(host);
        }
        jvm
    }

    /// The container (cgroup) this belongs to.
    pub fn id(&self) -> CgroupId {
        self.id
    }

    /// Current lifecycle state.
    pub fn outcome(&self) -> JvmOutcome {
        self.outcome
    }

    /// Whether the workload is still running.
    pub fn is_running(&self) -> bool {
        self.outcome == JvmOutcome::Running
    }

    /// Measurements collected so far.
    pub fn metrics(&self) -> &JvmMetrics {
        &self.metrics
    }

    /// The heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// GC threads created at launch (`N` in §4.1).
    pub fn launch_threads(&self) -> u32 {
        self.launch_threads
    }

    /// Time until this JVM's next internal event — eden filling (next
    /// minor GC) or the current collection completing — assuming a full
    /// CPU grant. Event-driven drivers cap the simulation step here so
    /// GC frequency does not quantize to the scheduling period.
    pub fn horizon(&self) -> Option<SimDuration> {
        if self.outcome != JvmOutcome::Running {
            return None;
        }
        let wall = match &self.phase {
            Phase::Mutator => {
                let to_fill =
                    self.heap.eden_room().as_u64() as f64 / self.profile.alloc_rate.as_u64() as f64;
                let cpu = to_fill.min(self.work_remaining.as_secs_f64());
                SimDuration::from_secs_f64(cpu / f64::from(self.profile.mutators.max(1)))
            }
            Phase::Gc(work) => work.remaining() / u64::from(work.workers.max(1)),
        };
        Some(wall.max(SimDuration::from_micros(500)))
    }

    /// Runnable thread count for the current phase (mutators run
    /// stop-the-world with GC workers, never simultaneously).
    pub fn runnable(&self) -> u32 {
        match (&self.phase, self.outcome) {
            (_, o) if o != JvmOutcome::Running => 0,
            (Phase::Mutator, _) => self.profile.mutators,
            (Phase::Gc(work), _) => work.workers,
        }
    }

    /// Advance the JVM by one scheduling period in which its container was
    /// granted `granted` CPU time.
    pub fn on_period(&mut self, host: &mut SimHost, granted: SimDuration, period: SimDuration) {
        if self.outcome != JvmOutcome::Running {
            return;
        }
        self.metrics.exec_wall += period;

        match &mut self.phase {
            Phase::Mutator => {
                self.metrics.mutator_wall += period;
                // The mutator's hot set: the allocation wave cycling
                // through the young generation plus the live data it
                // actually touches.
                let hot = self.heap.young_committed()
                    + self.heap.old_live().mul_f64(self.profile.touch_intensity);
                let slow = slow_factor(self.cfg.swap_penalty, hot, host.memory_usage(self.id));
                let progress = granted.mul_f64(1.0 / slow);
                self.work_remaining = self.work_remaining.saturating_sub(progress);
                if self.work_remaining.is_zero() {
                    self.outcome = JvmOutcome::Completed;
                    self.record_trace(host);
                    return;
                }
                let alloc = self.profile.alloc_rate.mul_f64(progress.as_secs_f64())
                    + std::mem::take(&mut self.pending_alloc);
                self.alloc_since_minor += alloc;
                let overflow = self.heap.allocate(alloc);
                if !overflow.is_zero() {
                    self.pending_alloc = overflow;
                    self.start_minor_gc(host);
                }
            }
            Phase::Gc(work) => {
                self.metrics.gc_wall += period;
                // A minor collection sweeps the young generation; a major
                // collection touches the whole committed heap, cold pages
                // included.
                let hot = match work.kind {
                    GcKind::Minor => self.heap.young_committed(),
                    GcKind::Major => self.heap.committed(),
                };
                let slow = slow_factor(self.cfg.swap_penalty, hot, host.memory_usage(self.id));
                if work.advance(&self.cfg.gc_cost, granted, period, slow) {
                    let kind = work.kind;
                    let wall = work.wall();
                    self.finish_gc(host, kind, wall);
                }
            }
        }

        if self.cfg.heap_policy == HeapPolicy::Elastic
            && host.now().since(self.last_elastic_poll) >= self.cfg.elastic_poll
        {
            self.elastic_adjust(host);
        }
        self.sync_charge(host);
        self.record_trace(host);
    }

    fn gc_worker_count(&self, host: &SimHost) -> u32 {
        let n_active = self.cfg.dynamic_gc_threads.then(|| {
            dynamic_active_workers(
                self.profile.mutators,
                self.heap.committed(),
                self.launch_threads,
            )
        });
        let e_cpu = (self.cfg.awareness == ContainerAwareness::AdaptiveView)
            .then(|| host.effective_cpu(self.id));
        gc_workers(self.launch_threads, n_active, e_cpu)
    }

    fn start_minor_gc(&mut self, host: &SimHost) {
        let workers = self.gc_worker_count(host);
        let copied = self
            .heap
            .minor_copied(self.profile.minor_survival, self.profile.young_live);
        self.metrics.gc_thread_trace.push(workers);
        self.phase = Phase::Gc(GcWork::minor(&self.cfg.gc_cost, copied, workers));
    }

    fn start_major_gc(&mut self, host: &SimHost) {
        let workers = self.gc_worker_count(host);
        self.metrics.gc_thread_trace.push(workers);
        self.phase = Phase::Gc(GcWork::major(
            &self.cfg.gc_cost,
            self.heap.old_used(),
            workers,
        ));
    }

    fn finish_gc(&mut self, host: &mut SimHost, kind: GcKind, gc_wall: SimDuration) {
        match kind {
            GcKind::Minor => {
                self.metrics.minor_gcs += 1;
                let live_delta = self
                    .alloc_since_minor
                    .mul_f64(self.profile.live_growth)
                    .min(self.profile.live_cap.saturating_sub(self.heap.old_live()));
                self.alloc_since_minor = Bytes::ZERO;
                let copied = self
                    .heap
                    .minor_copied(self.profile.minor_survival, self.profile.young_live);
                let result = self
                    .heap
                    .minor_gc(copied, self.profile.promotion, live_delta);
                if result.needs_major {
                    self.start_major_gc(host);
                    return;
                }
                // Adaptive sizing: expand the young generation only while
                // collections are frequent enough to exceed the overhead
                // target (HotSpot's throughput goal), so low-allocation
                // programs keep small heaps.
                let interval = host.now().since(self.last_minor_end);
                self.last_minor_end = host.now();
                if gc_wall.ratio(interval.max(gc_wall)) > self.cfg.gc_overhead_target {
                    self.heap.grow_young(self.cfg.young_grow_factor);
                }
                self.phase = Phase::Mutator;
            }
            GcKind::Major => {
                self.metrics.major_gcs += 1;
                let result = self.heap.major_gc();
                if result.oom {
                    // Live data cannot fit: for the elastic heap this can
                    // be transient (VirtualMax may grow); for fixed limits
                    // it is fatal.
                    if self.cfg.heap_policy != HeapPolicy::Elastic
                        || self.heap.limits().virtual_max
                            >= host
                                .mem()
                                .hard_limit(self.id)
                                .unwrap_or_else(|| host.total_memory())
                                .min(self.heap.limits().reserved)
                    {
                        self.outcome = JvmOutcome::OomError;
                        self.release_all(host);
                        return;
                    }
                }
                self.phase = Phase::Mutator;
            }
        }
    }

    /// §4.2 elastic adjustment: track effective memory with `VirtualMax`
    /// and resolve the three shrink scenarios.
    fn elastic_adjust(&mut self, host: &mut SimHost) {
        self.last_elastic_poll = host.now();
        let e_mem = host.effective_memory(self.id);
        let used_over = self.heap.set_virtual_max(e_mem);
        if self.heap.committed_over_max() {
            // Case 2: committed crossed the new maxima — shrink it.
            self.heap.shrink_committed();
        }
        if used_over {
            // Case 3: used space crosses the maxima — free it with GCs
            // (retried at the next poll if one pass is not enough).
            if let Phase::Mutator = self.phase {
                if self.heap.old_used() > self.heap.limits().old_max() {
                    self.start_major_gc(host);
                } else {
                    self.start_minor_gc(host);
                }
            }
        }
    }

    /// Reconcile the heap's committed size with the cgroup charge.
    fn sync_charge(&mut self, host: &mut SimHost) {
        let committed = self.heap.committed();
        if committed > self.charged {
            let delta = committed - self.charged;
            if host.charge(self.id, delta).is_ok() {
                self.charged = committed;
            } else {
                self.outcome = JvmOutcome::OomKilled;
                self.release_all(host);
            }
        } else if committed < self.charged {
            host.uncharge(self.id, self.charged - committed);
            self.charged = committed;
        }
    }

    fn release_all(&mut self, host: &mut SimHost) {
        if !self.charged.is_zero() {
            host.uncharge(self.id, self.charged);
            self.charged = Bytes::ZERO;
        }
    }

    fn record_trace(&mut self, host: &SimHost) {
        if !self.cfg.record_heap_trace {
            return;
        }
        let now = host.now();
        self.metrics
            .used_series
            .push(now, self.heap.used().as_gib_f64());
        self.metrics
            .committed_series
            .push(now, self.heap.committed().as_gib_f64());
        self.metrics
            .virtual_max_series
            .push(now, self.heap.limits().virtual_max.as_gib_f64());
    }
}

/// Swap-induced slowdown: when the phase's hot set exceeds the
/// container's resident memory, the displaced fraction faults on every
/// pass. With no swapping, resident covers everything committed and the
/// factor is exactly 1.
fn slow_factor(penalty: f64, hot: Bytes, resident: Bytes) -> f64 {
    if hot.is_zero() {
        return 1.0;
    }
    let deficit = hot.saturating_sub(resident);
    1.0 + penalty * deficit.ratio(hot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_container::ContainerSpec;

    fn drive(host: &mut SimHost, jvms: &mut [Jvm], max_periods: u32) {
        for _ in 0..max_periods {
            if jvms.iter().all(|j| !j.is_running()) {
                return;
            }
            let demands: Vec<_> = jvms
                .iter()
                .filter(|j| j.is_running())
                .map(|j| host.demand(j.id(), j.runnable().max(1)))
                .collect();
            let out = host.step(&demands);
            for j in jvms.iter_mut() {
                let granted = out.alloc.granted_to(j.id());
                j.on_period(host, granted, out.period);
            }
        }
        panic!("workload did not finish in {max_periods} periods");
    }

    fn small_profile() -> JavaProfile {
        JavaProfile {
            name: "unit".into(),
            total_work: SimDuration::from_secs(4),
            mutators: 4,
            alloc_rate: Bytes::from_mib(200),
            minor_survival: 0.10,
            young_live: Bytes::from_mib(16),
            promotion: 0.30,
            live_growth: 0.02,
            live_cap: Bytes::from_mib(48),
            min_heap: Bytes::from_mib(80),
            touch_intensity: 0.5,
        }
    }

    #[test]
    fn jvm_completes_and_collects() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20));
        let mut jvm = Jvm::launch(
            &mut host,
            id,
            JvmConfig::vanilla_jdk8().with_heap_policy(HeapPolicy::FixedMax(Bytes::from_mib(240))),
            small_profile(),
        );
        drive(&mut host, std::slice::from_mut(&mut jvm), 200_000);
        assert_eq!(jvm.outcome(), JvmOutcome::Completed);
        let m = jvm.metrics();
        assert!(m.minor_gcs > 0, "allocation must trigger minor GCs");
        assert!(m.gc_wall > SimDuration::ZERO);
        assert!(m.exec_wall >= m.gc_wall + SimDuration::ZERO);
    }

    #[test]
    fn vanilla_jdk8_probes_host_resources() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20).cpus(10.0));
        let jvm = Jvm::launch(&mut host, id, JvmConfig::vanilla_jdk8(), small_profile());
        // 20 host cores → 15 GC threads; heap = 128 GB / 4 = 32 GB.
        assert_eq!(jvm.launch_threads(), 15);
        assert_eq!(
            jvm.heap().limits().virtual_max,
            Bytes::from_gib(128).mul_f64(0.25)
        );
    }

    #[test]
    fn jdk9_reads_static_limits() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(
            &ContainerSpec::new("c", 20)
                .cpus(10.0)
                .memory(Bytes::from_gib(1)),
        );
        let jvm = Jvm::launch(&mut host, id, JvmConfig::jdk9(), small_profile());
        // Quota of 10 CPUs → 9 GC threads; heap = 1 GB / 4 = 256 MB.
        assert_eq!(jvm.launch_threads(), 9);
        assert_eq!(jvm.heap().limits().virtual_max, Bytes::from_mib(256));
    }

    #[test]
    fn jdk9_oom_when_min_heap_exceeds_quarter_of_hard_limit() {
        // The Figure 2(b) missing-bar case: H2's working set cannot fit in
        // 1GB/4.
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20).memory(Bytes::from_gib(1)));
        let mut profile = small_profile();
        profile.min_heap = Bytes::from_mib(400);
        profile.live_cap = Bytes::from_mib(300);
        let jvm = Jvm::launch(&mut host, id, JvmConfig::jdk9(), profile);
        assert_eq!(jvm.outcome(), JvmOutcome::OomError);
    }

    #[test]
    fn jdk10_uses_share_derived_count() {
        let mut host = SimHost::paper_testbed();
        // Ten equal-share containers: lower bound = ceil(20/10) = 2.
        let ids: Vec<_> = (0..10)
            .map(|i| host.launch(&ContainerSpec::new(format!("c{i}"), 20)))
            .collect();
        let jvm = Jvm::launch(&mut host, ids[0], JvmConfig::jdk10(), small_profile());
        assert_eq!(jvm.launch_threads(), 2);
    }

    #[test]
    fn adaptive_launches_max_threads_but_collects_with_effective_cpu() {
        let mut host = SimHost::paper_testbed();
        let ids: Vec<_> = (0..5)
            .map(|i| {
                host.launch(
                    &ContainerSpec::new(format!("c{i}"), 20)
                        .cpus(10.0)
                        .cpu_shares(1024),
                )
            })
            .collect();
        let mut jvms: Vec<Jvm> = ids
            .iter()
            .map(|id| {
                Jvm::launch(
                    &mut host,
                    *id,
                    JvmConfig::adaptive()
                        .with_heap_policy(HeapPolicy::FixedMax(Bytes::from_mib(240))),
                    small_profile(),
                )
            })
            .collect();
        // Launch maximum retained for future expansion.
        assert_eq!(jvms[0].launch_threads(), 15);
        drive(&mut host, &mut jvms, 400_000);
        for jvm in &jvms {
            assert_eq!(jvm.outcome(), JvmOutcome::Completed);
            // With 5 saturated containers, E_CPU sits at 4: every
            // collection after warm-up must use ≤ 4 workers.
            let trace = &jvm.metrics().gc_thread_trace;
            assert!(!trace.is_empty());
            let tail = &trace[trace.len().min(2) - 1..];
            assert!(
                tail.iter().all(|w| *w <= 4),
                "adaptive workers exceeded effective CPU: {trace:?}"
            );
        }
    }

    #[test]
    fn overthreaded_vanilla_spends_more_gc_wall_than_adaptive() {
        // Head-to-head in the 5-container scenario; compare total GC wall.
        let run = |cfg: JvmConfig| -> SimDuration {
            let mut host = SimHost::paper_testbed();
            let ids: Vec<_> = (0..5)
                .map(|i| {
                    host.launch(
                        &ContainerSpec::new(format!("c{i}"), 20)
                            .cpus(10.0)
                            .cpu_shares(1024),
                    )
                })
                .collect();
            let mut jvms: Vec<Jvm> = ids
                .iter()
                .map(|id| {
                    Jvm::launch(
                        &mut host,
                        *id,
                        cfg.clone()
                            .with_heap_policy(HeapPolicy::FixedMax(Bytes::from_mib(240))),
                        small_profile(),
                    )
                })
                .collect();
            drive(&mut host, &mut jvms, 400_000);
            jvms.iter().map(|j| j.metrics().gc_wall).sum()
        };
        let vanilla = run(JvmConfig::vanilla_jdk8());
        let adaptive = run(JvmConfig::adaptive());
        assert!(
            vanilla.as_secs_f64() > adaptive.as_secs_f64() * 1.2,
            "vanilla {vanilla} should trail adaptive {adaptive}"
        );
    }

    #[test]
    fn hard_limit_overflow_swaps_and_slows_vanilla() {
        // Figure 11: 1 GB hard limit, vanilla auto-heap (32 GB max) swaps.
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20).memory(Bytes::from_gib(1)));
        let mut profile = small_profile();
        profile.alloc_rate = Bytes::from_gib(2);
        profile.live_cap = Bytes::from_mib(600);
        profile.min_heap = Bytes::from_mib(700);
        profile.total_work = SimDuration::from_secs(3);
        let mut jvm = Jvm::launch(
            &mut host,
            id,
            JvmConfig::vanilla_jdk8().with_xms(Bytes::from_mib(500)),
            profile,
        );
        drive(&mut host, std::slice::from_mut(&mut jvm), 3_000_000);
        assert_eq!(jvm.outcome(), JvmOutcome::Completed);
        assert!(
            host.mem().swap_out_total() > Bytes::ZERO,
            "should have swapped"
        );
    }

    #[test]
    fn elastic_heap_respects_hard_limit() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20).memory(Bytes::from_gib(1)));
        let mut profile = small_profile();
        profile.alloc_rate = Bytes::from_gib(2);
        profile.live_cap = Bytes::from_mib(600);
        profile.min_heap = Bytes::from_mib(700);
        profile.total_work = SimDuration::from_secs(3);
        let mut jvm = Jvm::launch(
            &mut host,
            id,
            JvmConfig::adaptive()
                .with_heap_policy(HeapPolicy::Elastic)
                .with_xms(Bytes::from_mib(500)),
            profile,
        );
        drive(&mut host, std::slice::from_mut(&mut jvm), 3_000_000);
        assert_eq!(jvm.outcome(), JvmOutcome::Completed);
        // The heap never outgrew the hard limit, so nothing swapped.
        assert_eq!(host.mem().swap_out_total(), Bytes::ZERO);
        assert!(jvm.heap().limits().virtual_max <= Bytes::from_gib(1));
    }

    #[test]
    fn heap_trace_records_series() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20));
        let mut jvm = Jvm::launch(
            &mut host,
            id,
            JvmConfig::vanilla_jdk8()
                .with_heap_policy(HeapPolicy::FixedMax(Bytes::from_mib(240)))
                .with_heap_trace(),
            small_profile(),
        );
        drive(&mut host, std::slice::from_mut(&mut jvm), 200_000);
        let m = jvm.metrics();
        assert!(!m.used_series.is_empty());
        assert_eq!(m.used_series.len(), m.committed_series.len());
    }

    #[test]
    fn horizon_points_at_the_next_event() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20));
        let jvm = Jvm::launch(
            &mut host,
            id,
            JvmConfig::vanilla_jdk8().with_heap_policy(HeapPolicy::FixedMax(Bytes::from_mib(240))),
            small_profile(),
        );
        // Fresh mutator: horizon = eden fill time at full parallelism.
        let h = jvm.horizon().expect("running JVM has a horizon");
        let eden = jvm.heap().eden_room().as_u64() as f64;
        let expected = eden / Bytes::from_mib(200).as_u64() as f64 / 4.0;
        assert!(
            (h.as_secs_f64() - expected).abs() < 0.01,
            "{h} vs {expected}"
        );
    }

    #[test]
    fn horizon_none_once_finished() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20));
        let mut profile = small_profile();
        profile.total_work = SimDuration::from_secs(1);
        let mut jvm = Jvm::launch(
            &mut host,
            id,
            JvmConfig::vanilla_jdk8().with_heap_policy(HeapPolicy::FixedMax(Bytes::from_mib(240))),
            profile,
        );
        drive(&mut host, std::slice::from_mut(&mut jvm), 200_000);
        assert_eq!(jvm.horizon(), None);
        assert_eq!(jvm.runnable(), 0);
    }

    #[test]
    fn launch_threads_across_all_policies() {
        // One matrix covering every awareness level on the same container.
        let mut host = SimHost::paper_testbed();
        let id = host.launch(
            &ContainerSpec::new("c", 20)
                .cpus(6.0)
                .memory(Bytes::from_gib(2)),
        );
        let expectations = [
            (JvmConfig::vanilla_jdk8(), 15), // hotspot(20 host cores)
            (JvmConfig::jdk9(), 6),          // hotspot(quota 6) = 6
            (JvmConfig::jdk10(), 6),         // lower bound min(quota 6, 20) = 6
            (JvmConfig::adaptive(), 15),     // launch max, adapt per GC
        ];
        for (cfg, expect) in expectations {
            let jvm = Jvm::launch(&mut host, id, cfg.clone(), small_profile());
            assert_eq!(
                jvm.launch_threads(),
                expect,
                "awareness {:?}",
                cfg.awareness
            );
        }
    }

    #[test]
    fn explicit_xmx_overrides_awareness() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20).memory(Bytes::from_gib(1)));
        let jvm = Jvm::launch(
            &mut host,
            id,
            JvmConfig::jdk9().with_heap_policy(HeapPolicy::FixedMax(Bytes::from_mib(333))),
            small_profile(),
        );
        assert_eq!(jvm.heap().limits().virtual_max, Bytes::from_mib(333));
    }

    #[test]
    fn slow_factor_boundaries() {
        // No deficit → exactly 1; full deficit → 1 + penalty; zero hot set
        // is neutral.
        assert_eq!(slow_factor(60.0, Bytes::ZERO, Bytes::ZERO), 1.0);
        assert_eq!(
            slow_factor(60.0, Bytes::from_mib(100), Bytes::from_mib(100)),
            1.0
        );
        assert_eq!(
            slow_factor(60.0, Bytes::from_mib(100), Bytes::from_mib(200)),
            1.0
        );
        assert_eq!(slow_factor(60.0, Bytes::from_mib(100), Bytes::ZERO), 61.0);
        let half = slow_factor(60.0, Bytes::from_mib(100), Bytes::from_mib(50));
        assert!((half - 31.0).abs() < 1e-9);
    }

    #[test]
    fn cgroup_oom_kill_reported() {
        // Tiny host without swap: overcommit gets the JVM killed.
        let mut host = SimHost::new(4, Bytes::from_mib(512));
        let id = host.launch(&ContainerSpec::new("c", 4));
        let mut profile = small_profile();
        profile.alloc_rate = Bytes::from_gib(4);
        profile.live_cap = Bytes::from_mib(384);
        profile.min_heap = Bytes::from_mib(448);
        profile.live_growth = 0.5;
        let mut jvm = Jvm::launch(
            &mut host,
            id,
            JvmConfig::vanilla_jdk8().with_heap_policy(HeapPolicy::FixedMax(Bytes::from_gib(4))),
            profile,
        );
        // Drive until it dies or finishes; completing would mean the host
        // absorbed 4 GiB into 512 MiB + swap.
        for _ in 0..3_000_000 {
            if !jvm.is_running() {
                break;
            }
            let d = host.demand(id, jvm.runnable().max(1));
            let out = host.step(&[d]);
            let granted = out.alloc.granted_to(id);
            jvm.on_period(&mut host, granted, out.period);
        }
        assert_eq!(jvm.outcome(), JvmOutcome::OomKilled);
        // Everything it charged was released on the way out.
        assert_eq!(host.memory_usage(id), Bytes::ZERO);
    }
}
