//! The `GCTaskQueue`: dynamic work assignment among GC workers.
//!
//! HotSpot's PS collector pushes root-scanning and stealing tasks onto a
//! central queue guarded by `GCTaskManager`; workers pull tasks so faster
//! threads do more work (Figure 4 of the paper). We reproduce the queue
//! and use greedy list scheduling to compute the *imbalance factor* of a
//! collection: how much longer the parallel phase runs than perfectly
//! divisible work would, given the task granularity and worker count.
//! Fine-grained stealing keeps the factor near 1; a worker count larger
//! than the task count leaves workers idle, which is one of the two
//! penalties of over-threading (the other being CPU contention, modelled
//! in [`crate::gc`]).

use arv_sim_core::SimDuration;
use std::collections::VecDeque;

/// One unit of GC work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcTask {
    /// What kind of work this task is.
    pub kind: GcTaskKind,
    /// CPU cost of the task.
    pub cost: SimDuration,
}

/// Task kinds of a PS minor collection (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcTaskKind {
    /// `OldToYoungRootsTask`: scan old-to-young card-table stripes.
    OldToYoungRoots,
    /// `ScavengeRootsTask`: scan VM/thread roots.
    ScavengeRoots,
    /// `StealTask`: terminate-and-steal phase.
    Steal,
    /// Reference processing proxy task.
    RefProc,
}

/// The central task queue (`GCTaskQueue` + `GCTaskManager` monitor).
#[derive(Debug, Clone, Default)]
pub struct GcTaskQueue {
    tasks: VecDeque<GcTask>,
}

impl GcTaskQueue {
    /// An empty queue.
    pub fn new() -> GcTaskQueue {
        GcTaskQueue::default()
    }

    /// Refill for a new collection (the queue is drained to empty at the
    /// end of each GC, when workers are put back to sleep).
    pub fn refill(&mut self, tasks: impl IntoIterator<Item = GcTask>) {
        debug_assert!(self.tasks.is_empty(), "refill of a non-empty queue");
        self.tasks.extend(tasks);
    }

    /// A worker fetches the next task (dynamic work assignment).
    pub fn fetch(&mut self) -> Option<GcTask> {
        self.tasks.pop_front()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total CPU cost of the queued tasks.
    pub fn total_cost(&self) -> SimDuration {
        self.tasks.iter().map(|t| t.cost).sum()
    }
}

/// Decompose `parallel_work` into the task set of one minor collection
/// (Figure 4): `stripes` old-to-young stripes, a handful of root tasks,
/// one reference-processing proxy task, and one steal task per worker.
pub fn decompose_minor(parallel_work: SimDuration, stripes: u32, workers: u32) -> Vec<GcTask> {
    let stripes = stripes.max(1);
    // Roots, reference processing, and stealing are small, roughly fixed
    // shares of the work.
    let root_share = parallel_work.mul_f64(0.05);
    let refproc_share = parallel_work.mul_f64(0.02);
    let steal_share = parallel_work.mul_f64(0.05);
    let stripe_share = parallel_work.saturating_sub(root_share + refproc_share + steal_share);

    let mut tasks = Vec::with_capacity(stripes as usize + 5 + workers as usize);
    for _ in 0..stripes {
        tasks.push(GcTask {
            kind: GcTaskKind::OldToYoungRoots,
            cost: stripe_share / u64::from(stripes),
        });
    }
    for _ in 0..4 {
        tasks.push(GcTask {
            kind: GcTaskKind::ScavengeRoots,
            cost: root_share / 4,
        });
    }
    // PSRefProcTaskProxy: reference processing runs as one queue task.
    tasks.push(GcTask {
        kind: GcTaskKind::RefProc,
        cost: refproc_share,
    });
    for _ in 0..workers.max(1) {
        tasks.push(GcTask {
            kind: GcTaskKind::Steal,
            cost: steal_share / u64::from(workers.max(1)),
        });
    }
    tasks
}

/// Greedy list scheduling of the queue onto `workers` workers: each idle
/// worker fetches the next task. Returns the makespan (the parallel-phase
/// wall CPU time with perfectly overlapping workers).
pub fn makespan(queue: &mut GcTaskQueue, workers: u32) -> SimDuration {
    let workers = workers.max(1) as usize;
    let mut loads = vec![SimDuration::ZERO; workers];
    while let Some(task) = queue.fetch() {
        // The earliest-free worker fetches (dynamic assignment).
        let min = loads
            .iter_mut()
            .min_by_key(|l| l.as_micros())
            .expect("at least one worker");
        *min += task.cost;
    }
    loads.into_iter().max().unwrap_or(SimDuration::ZERO)
}

/// Imbalance factor for `parallel_work` split over `stripes` stripes on
/// `workers` workers: `makespan / (work / workers) ≥ 1`.
pub fn imbalance_factor(parallel_work: SimDuration, stripes: u32, workers: u32) -> f64 {
    if parallel_work.is_zero() || workers == 0 {
        return 1.0;
    }
    let mut q = GcTaskQueue::new();
    q.refill(decompose_minor(parallel_work, stripes, workers));
    let span = makespan(&mut q, workers);
    let ideal = parallel_work / u64::from(workers);
    if ideal.is_zero() {
        1.0
    } else {
        (span.as_micros() as f64 / ideal.as_micros() as f64).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: SimDuration = SimDuration::from_millis(100);

    #[test]
    fn queue_fifo_semantics() {
        let mut q = GcTaskQueue::new();
        q.refill(decompose_minor(W, 8, 4));
        assert!(!q.is_empty());
        let first = q.fetch().unwrap();
        assert_eq!(first.kind, GcTaskKind::OldToYoungRoots);
        let total_before = q.total_cost();
        q.fetch();
        assert!(q.total_cost() < total_before);
    }

    #[test]
    fn decomposition_preserves_total_work() {
        let tasks = decompose_minor(W, 64, 8);
        let total: SimDuration = tasks.iter().map(|t| t.cost).sum();
        // Integer division loses at most a few microseconds.
        assert!(W.as_micros() - total.as_micros() < 100);
    }

    #[test]
    fn decomposition_includes_every_figure4_task_kind() {
        let tasks = decompose_minor(W, 16, 4);
        for kind in [
            GcTaskKind::OldToYoungRoots,
            GcTaskKind::ScavengeRoots,
            GcTaskKind::RefProc,
            GcTaskKind::Steal,
        ] {
            assert!(
                tasks.iter().any(|t| t.kind == kind),
                "missing task kind {kind:?}"
            );
        }
        assert_eq!(
            tasks
                .iter()
                .filter(|t| t.kind == GcTaskKind::RefProc)
                .count(),
            1
        );
    }

    #[test]
    fn single_worker_makespan_is_total_work() {
        let mut q = GcTaskQueue::new();
        let tasks = decompose_minor(W, 16, 1);
        let total: SimDuration = tasks.iter().map(|t| t.cost).sum();
        q.refill(tasks);
        assert_eq!(makespan(&mut q, 1), total);
    }

    #[test]
    fn fine_grained_tasks_balance_well() {
        let f = imbalance_factor(W, 64, 4);
        assert!(f < 1.10, "64 stripes over 4 workers should balance: {f}");
    }

    #[test]
    fn more_workers_than_tasks_wastes_them() {
        // 4 stripes cannot occupy 16 workers.
        let f = imbalance_factor(W, 4, 16);
        assert!(f > 2.0, "expected heavy imbalance, got {f}");
    }

    #[test]
    fn makespan_never_below_ideal() {
        for workers in [1u32, 2, 3, 5, 8, 13, 20] {
            for stripes in [1u32, 4, 16, 64] {
                let f = imbalance_factor(W, stripes, workers);
                assert!(f >= 1.0, "workers={workers} stripes={stripes}: {f}");
            }
        }
    }

    #[test]
    fn zero_work_is_neutral() {
        assert_eq!(imbalance_factor(SimDuration::ZERO, 8, 4), 1.0);
    }
}
