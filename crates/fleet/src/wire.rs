//! Unix-socket transport for the fleet protocol.
//!
//! The controller listens on one socket; peripheries and rollup readers
//! each hold a connection carrying request/response pairs in order
//! (HELLO→ACK, DELTA→ACK, QUERY→ROLLUP, POLICY→POLICY echo). Framing is
//! the shared length-prefixed codec ([`arv_viewd::codec`]) — the same
//! implementation viewd's wire uses, per the one-codec rule.
//!
//! A frame the controller cannot decode is connection-fatal: the server
//! drops the conversation (the peer sees EOF), exactly like the viewd
//! wire's response to untrustable framing.
//!
//! [`FleetFailoverClient`] is the periphery-side failover transport: it
//! holds an ordered list of controller sockets (primary first, then
//! standbys) and walks it on any send/ACK failure with bounded
//! exponential backoff under deterministic seeded jitter — the same
//! discipline as viewd's `RobustWireClient`. The caller learns via
//! [`FleetFailoverClient::take_reconnected`] that the conversation
//! moved, so it can re-HELLO and answer the new leader's FULL-resync.

use arv_sim_core::SimRng;
use arv_viewd::codec::{read_frame, server_read_frame, write_frame, ServerRead};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::controller::FleetController;
use crate::protocol::MAX_FLEET_FRAME;

/// The listening fleet core: accepts connections on a Unix socket and
/// serves each on its own thread until shut down.
#[derive(Debug)]
pub struct FleetWireServer {
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    socket_path: PathBuf,
}

impl FleetWireServer {
    /// Bind `socket_path` (removing any stale socket file first) and
    /// start serving `controller`.
    pub fn spawn(
        controller: Arc<FleetController>,
        socket_path: impl AsRef<Path>,
    ) -> io::Result<FleetWireServer> {
        let socket_path = socket_path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&socket_path);
        let listener = UnixListener::bind(&socket_path)?;
        // Nonblocking accept so the loop can observe the stop flag.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_handle = std::thread::Builder::new()
            .name("arv-fleet-accept".into())
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                while !stop2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
                            let conn_ctl = Arc::clone(&controller);
                            let stop3 = Arc::clone(&stop2);
                            let spawned = std::thread::Builder::new()
                                .name("arv-fleet-conn".into())
                                .spawn(move || {
                                    let _ = serve_connection(&conn_ctl, stream, &stop3);
                                });
                            // On spawn failure (out of threads) the
                            // connection is shed: dropping the stream
                            // tells the peer, and the core stays alive.
                            if let Ok(handle) = spawned {
                                workers.push(handle);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                    workers.retain(|w| !w.is_finished());
                }
                for w in workers {
                    let _ = w.join();
                }
            })?;
        Ok(FleetWireServer {
            stop,
            accept_handle: Some(accept_handle),
            socket_path,
        })
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// Stop accepting, join every connection thread, remove the socket.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

impl Drop for FleetWireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    controller: &FleetController,
    mut stream: UnixStream,
    stop: &AtomicBool,
) -> io::Result<()> {
    loop {
        // Checked every iteration, not only on idle: a connection with
        // steady request traffic never idles, and shutdown must not
        // wait for a busy peer to pause.
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let request = match server_read_frame(&mut stream, MAX_FLEET_FRAME) {
            Ok(ServerRead::Frame(req)) => req,
            Ok(ServerRead::Eof) => return Ok(()),
            Ok(ServerRead::Idle) => continue,
            Err(e) => return Err(e),
        };
        match controller.handle_frame(&request) {
            Some(response) => write_frame(&mut stream, &response)?,
            // Malformed (or non-request) frame: framing can no longer
            // be trusted — drop the conversation.
            None => return Ok(()),
        }
    }
}

/// A blocking fleet connection: one stream, request/response in order.
/// Used by peripheries (HELLO/DELTA) and rollup readers (QUERY) alike.
#[derive(Debug)]
pub struct FleetClient {
    stream: UnixStream,
}

impl FleetClient {
    /// Connect to a [`FleetWireServer`].
    pub fn connect(socket_path: impl AsRef<Path>) -> io::Result<FleetClient> {
        let stream = UnixStream::connect(socket_path)?;
        Ok(FleetClient { stream })
    }

    /// Send one frame and read the response. `Ok(None)` means the
    /// server closed the conversation (it saw a malformed frame).
    pub fn request(&mut self, frame: &[u8]) -> io::Result<Option<Vec<u8>>> {
        write_frame(&mut self.stream, frame)?;
        read_frame(&mut self.stream, MAX_FLEET_FRAME)
    }
}

/// Retry and backoff policy for [`FleetFailoverClient`].
#[derive(Debug, Clone)]
pub struct FailoverPolicy {
    /// Total tries per request across the controller list. At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff pause.
    pub max_backoff: Duration,
    /// Read/write deadline applied to the socket for each attempt.
    pub request_timeout: Duration,
    /// Seed for the jitter applied to backoff pauses; same seed, same
    /// pause sequence.
    pub jitter_seed: u64,
}

impl Default for FailoverPolicy {
    fn default() -> FailoverPolicy {
        FailoverPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            request_timeout: Duration::from_millis(500),
            jitter_seed: 0x5EED,
        }
    }
}

impl FailoverPolicy {
    /// A policy with microsecond-scale backoffs for tests, so failover
    /// paths run in milliseconds instead of seconds.
    pub fn fast_test() -> FailoverPolicy {
        FailoverPolicy {
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(5),
            request_timeout: Duration::from_millis(200),
            ..FailoverPolicy::default()
        }
    }

    /// Pause before retry number `retry` (0-based), with ±30% seeded
    /// jitter to decorrelate peripheries converging on a standby.
    fn backoff(&self, retry: u32, rng: &mut SimRng) -> Duration {
        let doubled = self.base_backoff.saturating_mul(1u32 << retry.min(10));
        doubled.min(self.max_backoff).mul_f64(rng.jitter(0.3))
    }
}

/// Counters describing one [`FleetFailoverClient`]'s life so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailoverClientStats {
    /// Requests answered successfully.
    pub successes: u64,
    /// Attempts beyond the first within a request.
    pub retries: u64,
    /// Times the client moved to the next controller in the list
    /// (after an I/O failure, EOF, or an explicit not-leader signal).
    pub controller_switches: u64,
    /// Fresh connections established (first connect included).
    pub reconnects: u64,
    /// Requests that exhausted every attempt.
    pub failures: u64,
}

/// A periphery's failover transport: one live connection at a time,
/// walking an ordered controller list on failure with seeded-jitter
/// exponential backoff.
///
/// Connection is lazy — constructing the client never touches a socket,
/// so a periphery can start before any controller does. After a request
/// that moved the conversation (new connection, possibly a different
/// controller), [`FleetFailoverClient::take_reconnected`] returns true
/// once: the caller must re-HELLO (`Periphery::on_reconnect`) so the
/// new leader can demand the FULL resync that re-seeds its index.
#[derive(Debug)]
pub struct FleetFailoverClient {
    paths: Vec<PathBuf>,
    policy: FailoverPolicy,
    active: usize,
    stream: Option<UnixStream>,
    rng: SimRng,
    stats: FailoverClientStats,
    reconnected: bool,
}

impl FleetFailoverClient {
    /// A client walking `controllers` (primary first) under `policy`.
    /// Does not connect yet.
    pub fn new(
        controllers: impl IntoIterator<Item = impl AsRef<Path>>,
        policy: FailoverPolicy,
    ) -> FleetFailoverClient {
        FleetFailoverClient {
            paths: controllers
                .into_iter()
                .map(|p| p.as_ref().to_path_buf())
                .collect(),
            rng: SimRng::seed_from_u64(policy.jitter_seed),
            policy,
            active: 0,
            stream: None,
            stats: FailoverClientStats::default(),
            reconnected: false,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> FailoverClientStats {
        self.stats
    }

    /// The controller currently targeted (index into the configured
    /// list).
    pub fn active_controller(&self) -> usize {
        self.active
    }

    /// True exactly once after the conversation moved to a fresh
    /// connection; the caller must re-HELLO before its next delta.
    pub fn take_reconnected(&mut self) -> bool {
        std::mem::take(&mut self.reconnected)
    }

    /// Drop the current connection and aim at the next controller in
    /// the list. Called internally on I/O failure; callers invoke it on
    /// protocol-level rejections (a fenced or not-leader ACK) where the
    /// bytes flowed fine but the peer is not the leader.
    pub fn advance_controller(&mut self) {
        self.stream = None;
        if !self.paths.is_empty() {
            self.active = (self.active + 1) % self.paths.len();
        }
        self.stats.controller_switches += 1;
    }

    fn connect_active(&mut self) -> io::Result<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        let path = self
            .paths
            .get(self.active)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "empty controller list"))?;
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(self.policy.request_timeout))?;
        stream.set_write_timeout(Some(self.policy.request_timeout))?;
        self.stream = Some(stream);
        self.stats.reconnects += 1;
        self.reconnected = true;
        Ok(())
    }

    fn try_once(&mut self, frame: &[u8]) -> io::Result<Vec<u8>> {
        self.connect_active()?;
        let Some(stream) = self.stream.as_mut() else {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "no stream"));
        };
        write_frame(stream, frame)?;
        match read_frame(stream, MAX_FLEET_FRAME)? {
            Some(resp) => Ok(resp),
            // EOF mid-conversation: the controller died or dropped us —
            // indistinguishable from a crash, so treated like one.
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "controller closed the conversation",
            )),
        }
    }

    /// Send one frame, walking the controller list until a response
    /// arrives or attempts are exhausted. Returns the response bytes.
    pub fn request(&mut self, frame: &[u8]) -> io::Result<Vec<u8>> {
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                self.stats.retries += 1;
                let pause = self.policy.backoff(attempt - 1, &mut self.rng);
                std::thread::sleep(pause);
            }
            match self.try_once(frame) {
                Ok(resp) => {
                    self.stats.successes += 1;
                    return Ok(resp);
                }
                Err(e) => {
                    self.advance_controller();
                    last_err = Some(e);
                }
            }
        }
        self.stats.failures += 1;
        Err(last_err
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "attempts exhausted")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{
        decode_frame, encode_delta, encode_hello, encode_query, Delta, DeltaEntry, FleetPolicy,
        Frame, Hello, Query, Rollup, HEALTH_FRESH, QUERY_CLUSTER,
    };

    fn sock_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("arv-fleet-wire-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn hello_delta_query_over_the_wire() {
        let controller = Arc::new(FleetController::new(4, FleetPolicy::default()));
        let path = sock_path("basic");
        let mut server = FleetWireServer::spawn(Arc::clone(&controller), &path).unwrap();

        let mut client = FleetClient::connect(&path).unwrap();
        let hello = encode_hello(&Hello {
            host: 1,
            tick: 0,
            containers: 1,
            epoch: 0,
        });
        let resp = client.request(&hello).unwrap().unwrap();
        assert!(matches!(decode_frame(&resp), Some(Frame::Ack(_))));

        let delta = encode_delta(&Delta {
            host: 1,
            seq: 0,
            tick: 1,
            full: true,
            health: HEALTH_FRESH,
            durability_lost: false,
            staleness_age: 0,
            epoch: 0,
            origin_tick: 1,
            trace_seq: 1,
            summary: Default::default(),
            entries: vec![DeltaEntry {
                id: 1,
                tenant: 0,
                e_cpu: 4,
                e_mem: 1000,
                e_avail: 500,
                last_tick: 1,
            }],
            removed: Vec::new(),
        });
        let resp = client.request(&delta).unwrap().unwrap();
        let Some(Frame::Ack(ack)) = decode_frame(&resp) else {
            panic!("expected ACK");
        };
        assert_eq!(ack.expected_seq, 1);
        assert!(!ack.resync);

        let query = encode_query(&Query {
            kind: QUERY_CLUSTER,
            arg: 0,
        });
        let resp = client.request(&query).unwrap().unwrap();
        let Some(Frame::Rollup(frame)) = decode_frame(&resp) else {
            panic!("expected cluster rollup");
        };
        let Rollup::Cluster { rollup, degraded } = frame.body else {
            panic!("expected cluster rollup body");
        };
        assert_eq!(rollup.cpu, 4);
        assert_eq!(rollup.hosts, 1);
        assert!(!degraded);

        server.shutdown();
    }

    #[test]
    fn failover_client_walks_to_the_standby() {
        let controller = Arc::new(FleetController::new(4, FleetPolicy::default()));
        let dead = sock_path("failover-dead");
        let live = sock_path("failover-live");
        let _ = std::fs::remove_file(&dead);
        let mut server = FleetWireServer::spawn(Arc::clone(&controller), &live).unwrap();

        let mut client = FleetFailoverClient::new(
            [dead.as_path(), live.as_path()],
            FailoverPolicy::fast_test(),
        );
        assert_eq!(client.active_controller(), 0);
        let hello = encode_hello(&Hello {
            host: 1,
            tick: 0,
            containers: 0,
            epoch: 0,
        });
        let resp = client.request(&hello).unwrap();
        assert!(matches!(decode_frame(&resp), Some(Frame::Ack(_))));
        assert_eq!(
            client.active_controller(),
            1,
            "walked past the dead primary"
        );
        assert!(client.take_reconnected(), "fresh connection reported once");
        assert!(!client.take_reconnected());
        let s = client.stats();
        assert_eq!(s.successes, 1);
        assert!(s.controller_switches >= 1);
        assert!(s.retries >= 1);

        // Kill the live controller too: attempts exhaust cleanly.
        server.shutdown();
        assert!(client.request(&hello).is_err());
        assert_eq!(client.stats().failures, 1);
    }

    #[test]
    fn malformed_frame_drops_the_connection() {
        let controller = Arc::new(FleetController::new(2, FleetPolicy::default()));
        let path = sock_path("malformed");
        let mut server = FleetWireServer::spawn(Arc::clone(&controller), &path).unwrap();

        let mut client = FleetClient::connect(&path).unwrap();
        let answer = client.request(&[0xEE, 1, 2, 3]).unwrap();
        assert!(answer.is_none(), "server must close on garbage");
        assert!(controller.metrics().snapshot().malformed_frames >= 1);

        server.shutdown();
    }
}
