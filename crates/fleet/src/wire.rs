//! Unix-socket transport for the fleet protocol.
//!
//! The controller listens on one socket; peripheries and rollup readers
//! each hold a connection carrying request/response pairs in order
//! (HELLO→ACK, DELTA→ACK, QUERY→ROLLUP, POLICY→POLICY echo). Framing is
//! the shared length-prefixed codec ([`arv_viewd::codec`]) — the same
//! implementation viewd's wire uses, per the one-codec rule.
//!
//! A frame the controller cannot decode is connection-fatal: the server
//! drops the conversation (the peer sees EOF), exactly like the viewd
//! wire's response to untrustable framing.

use arv_viewd::codec::{read_frame, server_read_frame, write_frame, ServerRead};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::controller::FleetController;
use crate::protocol::MAX_FLEET_FRAME;

/// The listening fleet core: accepts connections on a Unix socket and
/// serves each on its own thread until shut down.
#[derive(Debug)]
pub struct FleetWireServer {
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    socket_path: PathBuf,
}

impl FleetWireServer {
    /// Bind `socket_path` (removing any stale socket file first) and
    /// start serving `controller`.
    pub fn spawn(
        controller: Arc<FleetController>,
        socket_path: impl AsRef<Path>,
    ) -> io::Result<FleetWireServer> {
        let socket_path = socket_path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&socket_path);
        let listener = UnixListener::bind(&socket_path)?;
        // Nonblocking accept so the loop can observe the stop flag.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_handle = std::thread::Builder::new()
            .name("arv-fleet-accept".into())
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                while !stop2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
                            let conn_ctl = Arc::clone(&controller);
                            let stop3 = Arc::clone(&stop2);
                            let spawned = std::thread::Builder::new()
                                .name("arv-fleet-conn".into())
                                .spawn(move || {
                                    let _ = serve_connection(&conn_ctl, stream, &stop3);
                                });
                            // On spawn failure (out of threads) the
                            // connection is shed: dropping the stream
                            // tells the peer, and the core stays alive.
                            if let Ok(handle) = spawned {
                                workers.push(handle);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                    workers.retain(|w| !w.is_finished());
                }
                for w in workers {
                    let _ = w.join();
                }
            })?;
        Ok(FleetWireServer {
            stop,
            accept_handle: Some(accept_handle),
            socket_path,
        })
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// Stop accepting, join every connection thread, remove the socket.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

impl Drop for FleetWireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    controller: &FleetController,
    mut stream: UnixStream,
    stop: &AtomicBool,
) -> io::Result<()> {
    loop {
        let request = match server_read_frame(&mut stream, MAX_FLEET_FRAME) {
            Ok(ServerRead::Frame(req)) => req,
            Ok(ServerRead::Eof) => return Ok(()),
            Ok(ServerRead::Idle) => {
                if stop.load(Ordering::Acquire) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        match controller.handle_frame(&request) {
            Some(response) => write_frame(&mut stream, &response)?,
            // Malformed (or non-request) frame: framing can no longer
            // be trusted — drop the conversation.
            None => return Ok(()),
        }
    }
}

/// A blocking fleet connection: one stream, request/response in order.
/// Used by peripheries (HELLO/DELTA) and rollup readers (QUERY) alike.
#[derive(Debug)]
pub struct FleetClient {
    stream: UnixStream,
}

impl FleetClient {
    /// Connect to a [`FleetWireServer`].
    pub fn connect(socket_path: impl AsRef<Path>) -> io::Result<FleetClient> {
        let stream = UnixStream::connect(socket_path)?;
        Ok(FleetClient { stream })
    }

    /// Send one frame and read the response. `Ok(None)` means the
    /// server closed the conversation (it saw a malformed frame).
    pub fn request(&mut self, frame: &[u8]) -> io::Result<Option<Vec<u8>>> {
        write_frame(&mut self.stream, frame)?;
        read_frame(&mut self.stream, MAX_FLEET_FRAME)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{
        decode_frame, encode_delta, encode_hello, encode_query, Delta, DeltaEntry, FleetPolicy,
        Frame, Hello, Query, Rollup, HEALTH_FRESH, QUERY_CLUSTER,
    };

    fn sock_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("arv-fleet-wire-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn hello_delta_query_over_the_wire() {
        let controller = Arc::new(FleetController::new(4, FleetPolicy::default()));
        let path = sock_path("basic");
        let mut server = FleetWireServer::spawn(Arc::clone(&controller), &path).unwrap();

        let mut client = FleetClient::connect(&path).unwrap();
        let hello = encode_hello(&Hello {
            host: 1,
            tick: 0,
            containers: 1,
            epoch: 0,
        });
        let resp = client.request(&hello).unwrap().unwrap();
        assert!(matches!(decode_frame(&resp), Some(Frame::Ack(_))));

        let delta = encode_delta(&Delta {
            host: 1,
            seq: 0,
            tick: 1,
            full: true,
            health: HEALTH_FRESH,
            staleness_age: 0,
            epoch: 0,
            entries: vec![DeltaEntry {
                id: 1,
                tenant: 0,
                e_cpu: 4,
                e_mem: 1000,
                e_avail: 500,
                last_tick: 1,
            }],
            removed: Vec::new(),
        });
        let resp = client.request(&delta).unwrap().unwrap();
        let Some(Frame::Ack(ack)) = decode_frame(&resp) else {
            panic!("expected ACK");
        };
        assert_eq!(ack.expected_seq, 1);
        assert!(!ack.resync);

        let query = encode_query(&Query {
            kind: QUERY_CLUSTER,
            arg: 0,
        });
        let resp = client.request(&query).unwrap().unwrap();
        let Some(Frame::Rollup(Rollup::Cluster { rollup, degraded })) = decode_frame(&resp) else {
            panic!("expected cluster rollup");
        };
        assert_eq!(rollup.cpu, 4);
        assert_eq!(rollup.hosts, 1);
        assert!(!degraded);

        server.shutdown();
    }

    #[test]
    fn malformed_frame_drops_the_connection() {
        let controller = Arc::new(FleetController::new(2, FleetPolicy::default()));
        let path = sock_path("malformed");
        let mut server = FleetWireServer::spawn(Arc::clone(&controller), &path).unwrap();

        let mut client = FleetClient::connect(&path).unwrap();
        let answer = client.request(&[0xEE, 1, 2, 3]).unwrap();
        assert!(answer.is_none(), "server must close on garbage");
        assert!(controller.metrics().snapshot().malformed_frames >= 1);

        server.shutdown();
    }
}
