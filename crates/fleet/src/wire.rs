//! Unix-socket transport for the fleet protocol.
//!
//! The controller listens on one socket; peripheries and rollup readers
//! each hold a connection carrying request/response pairs in order
//! (HELLO→ACK, DELTA→ACK, QUERY→ROLLUP, POLICY→POLICY echo). Framing is
//! the shared length-prefixed codec ([`arv_viewd::codec`]) — the same
//! implementation viewd's wire uses, per the one-codec rule.
//!
//! Serving rides the same readiness-driven engine as viewd's wire tier:
//! [`FleetWireServer`] is a thin protocol adapter over
//! [`arv_viewd::Reactor`] — sharded epoll event loops, nonblocking
//! connection slabs, incremental frame reassembly and vectored batched
//! writes — configured through the validated
//! [`arv_viewd::ServerConfig`] builder. A frame the controller cannot
//! decode is connection-fatal: the service closes the conversation (the
//! peer sees EOF), exactly like the viewd wire's response to
//! untrustable framing.
//!
//! The client side is the same story in reverse: retry, backoff,
//! reconnect, target failover and epoch fencing live once in
//! [`arv_viewd::Transport`], and [`FleetFailoverClient`] wraps it with
//! the fleet protocol's types. [`FailoverPolicy`] *is*
//! [`arv_viewd::RetryPolicy`] — one policy shape for every client in
//! the system. The caller learns via
//! [`FleetFailoverClient::take_reconnected`] that the conversation
//! moved, so it can re-HELLO and answer the new leader's FULL-resync.

use arv_viewd::codec::{read_frame, write_frame};
use arv_viewd::{
    FrameService, Reactor, Response, RetryPolicy, ServerConfig, ServiceAction, Transport, Verdict,
    WireError,
};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use crate::controller::FleetController;
use crate::protocol::{decode_frame, Frame, MAX_FLEET_FRAME};

/// Retry, backoff and failover policy for [`FleetFailoverClient`] — the
/// shared [`arv_viewd::RetryPolicy`], aliased so fleet callers keep
/// their vocabulary. The breaker fields are ignored here: a failover
/// client always walks its controller list instead of failing fast
/// ([`FleetFailoverClient::new`] disables the breaker regardless of
/// what the policy carries).
pub type FailoverPolicy = RetryPolicy;

/// The fleet protocol plugged into the shared reactor: one
/// [`FleetController::handle_frame`] call per complete request frame.
/// Admission pressure is ignored — the fleet tier has no shed ladder;
/// the controller's own backpressure (NACK/resync) is the flow control.
struct FleetService {
    controller: Arc<FleetController>,
}

impl FrameService for FleetService {
    fn max_request(&self) -> u32 {
        MAX_FLEET_FRAME
    }

    fn handle(&self, request: &[u8], _pressured: bool) -> ServiceAction {
        match self.controller.handle_frame(request) {
            Some(response) => ServiceAction::Reply(Response::from_payload(response)),
            // Malformed (or non-request) frame: framing can no longer
            // be trusted — drop the conversation.
            None => ServiceAction::Close,
        }
    }
}

/// Reactor sizing for a fleet core: generous admission (the controller
/// gates load at the protocol level, not per-connection), a queue cap
/// that holds several full-size rollups, and the write-stall clock as
/// the only eviction reason a healthy periphery can plausibly hit.
fn fleet_server_config() -> io::Result<ServerConfig> {
    ServerConfig::builder()
        .max_connections(1024)
        .rate_burst(1_000_000)
        .rate_refill_per_sec(1_000_000.0)
        .write_deadline(Duration::from_secs(5))
        .outbound_queue_cap(4 * MAX_FLEET_FRAME as usize)
        .build()
}

/// The listening fleet core: accepts connections on a Unix socket and
/// serves them on the shared readiness reactor until shut down.
#[derive(Debug)]
pub struct FleetWireServer {
    reactor: Reactor,
}

impl FleetWireServer {
    /// Bind `socket_path` (removing any stale socket file first) and
    /// start serving `controller` with the default fleet sizing.
    pub fn spawn(
        controller: Arc<FleetController>,
        socket_path: impl AsRef<Path>,
    ) -> io::Result<FleetWireServer> {
        FleetWireServer::spawn_with_config(controller, socket_path, fleet_server_config()?)
    }

    /// Bind and serve under an explicit reactor configuration. The
    /// fleet core has no legacy threaded engine, so a config asking for
    /// one is refused up front.
    pub fn spawn_with_config(
        controller: Arc<FleetController>,
        socket_path: impl AsRef<Path>,
        config: ServerConfig,
    ) -> io::Result<FleetWireServer> {
        if config.threaded {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "the fleet core serves on the reactor only; \
                 the threaded engine exists for viewd benchmarking",
            ));
        }
        let service = Arc::new(FleetService { controller });
        let reactor = Reactor::spawn(service, socket_path, config)?;
        Ok(FleetWireServer { reactor })
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        self.reactor.socket_path()
    }

    /// Stop accepting, join every reactor thread, remove the socket.
    /// Idempotent; prompt even under busy traffic.
    pub fn shutdown(&mut self) {
        self.reactor.shutdown();
    }
}

/// A blocking fleet connection: one stream, request/response in order.
/// Used by peripheries (HELLO/DELTA) and rollup readers (QUERY) alike.
#[derive(Debug)]
pub struct FleetClient {
    stream: UnixStream,
}

impl FleetClient {
    /// Connect to a [`FleetWireServer`].
    pub fn connect(socket_path: impl AsRef<Path>) -> io::Result<FleetClient> {
        let stream = UnixStream::connect(socket_path)?;
        Ok(FleetClient { stream })
    }

    /// Send one frame and read the response. `Ok(None)` means the
    /// server closed the conversation (it saw a malformed frame).
    pub fn request(&mut self, frame: &[u8]) -> io::Result<Option<Vec<u8>>> {
        write_frame(&mut self.stream, frame)?;
        read_frame(&mut self.stream, MAX_FLEET_FRAME)
    }
}

/// Counters describing one [`FleetFailoverClient`]'s life so far — a
/// projection of the underlying [`arv_viewd::TransportStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailoverClientStats {
    /// Requests answered successfully.
    pub successes: u64,
    /// Attempts beyond the first within a request.
    pub retries: u64,
    /// Times the client moved to the next controller in the list
    /// (after an I/O failure, EOF, or an explicit not-leader signal).
    pub controller_switches: u64,
    /// Fresh connections established (first connect included).
    pub reconnects: u64,
    /// Requests that exhausted every attempt.
    pub failures: u64,
}

/// A periphery's failover transport: one live connection at a time,
/// walking an ordered controller list on failure with seeded-jitter
/// exponential backoff — a thin fleet-typed wrapper over the shared
/// [`arv_viewd::Transport`].
///
/// Connection is lazy — constructing the client never touches a socket,
/// so a periphery can start before any controller does. After a request
/// that moved the conversation (new connection, possibly a different
/// controller), [`FleetFailoverClient::take_reconnected`] returns true
/// once: the caller must re-HELLO (`Periphery::on_reconnect`) so the
/// new leader can demand the FULL resync that re-seeds its index.
#[derive(Debug)]
pub struct FleetFailoverClient {
    transport: Transport,
}

impl FleetFailoverClient {
    /// A client walking `controllers` (primary first) under `policy`.
    /// Does not connect yet. The circuit breaker is force-disabled: a
    /// failover client's answer to repeated failure is walking the
    /// list, never failing fast.
    pub fn new(
        controllers: impl IntoIterator<Item = impl AsRef<Path>>,
        policy: FailoverPolicy,
    ) -> FleetFailoverClient {
        let mut policy = policy;
        policy.breaker_threshold = 0;
        FleetFailoverClient {
            transport: Transport::new(controllers, policy, MAX_FLEET_FRAME),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> FailoverClientStats {
        let t = self.transport.stats();
        FailoverClientStats {
            successes: t.successes,
            retries: t.retries,
            controller_switches: t.target_switches,
            reconnects: t.connects,
            failures: t.failures,
        }
    }

    /// The controller currently targeted (index into the configured
    /// list).
    pub fn active_controller(&self) -> usize {
        self.transport.active_target()
    }

    /// True exactly once after the conversation moved to a fresh
    /// connection; the caller must re-HELLO before its next delta.
    pub fn take_reconnected(&mut self) -> bool {
        self.transport.take_reconnected()
    }

    /// Drop the current connection and aim at the next controller in
    /// the list. The transport calls this internally on I/O failure;
    /// callers invoke it on protocol-level rejections (a fenced or
    /// not-leader ACK) where the bytes flowed fine but the peer is not
    /// the leader.
    pub fn advance_controller(&mut self) {
        self.transport.advance_target();
    }

    /// Send one frame, walking the controller list until a response
    /// arrives or attempts are exhausted. Returns the response bytes.
    pub fn request(&mut self, frame: &[u8]) -> io::Result<Vec<u8>> {
        self.transport.request(frame).map_err(io::Error::from)
    }

    /// Send one frame and fence the answer: an ACK carrying a
    /// controller epoch below `min_epoch` came from a deposed peer, so
    /// the transport advances to the next controller and the request
    /// fails with [`WireError::Fenced`] — the caller re-HELLOs before
    /// anything else makes sense. Non-ACK answers pass through
    /// unjudged.
    pub fn request_fenced(&mut self, frame: &[u8], min_epoch: u64) -> Result<Vec<u8>, WireError> {
        self.transport.request_classified(frame, |bytes| {
            match decode_frame(bytes) {
                Some(Frame::Ack(ack)) if ack.ctl_epoch < min_epoch => Verdict::Fenced {
                    epoch: ack.ctl_epoch,
                },
                // Undecodable frames are left to the caller: the fleet
                // treats them as protocol errors above this layer, and
                // judging them here would double-count reconnects.
                _ => Verdict::Accept,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{
        decode_frame, encode_delta, encode_hello, encode_query, Delta, DeltaEntry, FleetPolicy,
        Frame, Hello, Query, Rollup, HEALTH_FRESH, QUERY_CLUSTER,
    };
    use std::path::PathBuf;

    fn sock_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("arv-fleet-wire-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn hello_delta_query_over_the_wire() {
        let controller = Arc::new(FleetController::new(4, FleetPolicy::default()));
        let path = sock_path("basic");
        let mut server = FleetWireServer::spawn(Arc::clone(&controller), &path).unwrap();

        let mut client = FleetClient::connect(&path).unwrap();
        let hello = encode_hello(&Hello {
            host: 1,
            tick: 0,
            containers: 1,
            epoch: 0,
        });
        let resp = client.request(&hello).unwrap().unwrap();
        assert!(matches!(decode_frame(&resp), Some(Frame::Ack(_))));

        let delta = encode_delta(&Delta {
            host: 1,
            seq: 0,
            tick: 1,
            full: true,
            health: HEALTH_FRESH,
            durability_lost: false,
            staleness_age: 0,
            epoch: 0,
            origin_tick: 1,
            trace_seq: 1,
            summary: Default::default(),
            entries: vec![DeltaEntry {
                id: 1,
                tenant: 0,
                e_cpu: 4,
                e_mem: 1000,
                e_avail: 500,
                last_tick: 1,
            }],
            removed: Vec::new(),
        });
        let resp = client.request(&delta).unwrap().unwrap();
        let Some(Frame::Ack(ack)) = decode_frame(&resp) else {
            panic!("expected ACK");
        };
        assert_eq!(ack.expected_seq, 1);
        assert!(!ack.resync);

        let query = encode_query(&Query {
            kind: QUERY_CLUSTER,
            arg: 0,
        });
        let resp = client.request(&query).unwrap().unwrap();
        let Some(Frame::Rollup(frame)) = decode_frame(&resp) else {
            panic!("expected cluster rollup");
        };
        let Rollup::Cluster { rollup, degraded } = frame.body else {
            panic!("expected cluster rollup body");
        };
        assert_eq!(rollup.cpu, 4);
        assert_eq!(rollup.hosts, 1);
        assert!(!degraded);

        server.shutdown();
    }

    #[test]
    fn failover_client_walks_to_the_standby() {
        let controller = Arc::new(FleetController::new(4, FleetPolicy::default()));
        let dead = sock_path("failover-dead");
        let live = sock_path("failover-live");
        let _ = std::fs::remove_file(&dead);
        let mut server = FleetWireServer::spawn(Arc::clone(&controller), &live).unwrap();

        let mut client = FleetFailoverClient::new(
            [dead.as_path(), live.as_path()],
            FailoverPolicy::fast_test(),
        );
        assert_eq!(client.active_controller(), 0);
        let hello = encode_hello(&Hello {
            host: 1,
            tick: 0,
            containers: 0,
            epoch: 0,
        });
        let resp = client.request(&hello).unwrap();
        assert!(matches!(decode_frame(&resp), Some(Frame::Ack(_))));
        assert_eq!(
            client.active_controller(),
            1,
            "walked past the dead primary"
        );
        assert!(client.take_reconnected(), "fresh connection reported once");
        assert!(!client.take_reconnected());
        let s = client.stats();
        assert_eq!(s.successes, 1);
        assert!(s.controller_switches >= 1);
        assert!(s.retries >= 1);
        assert_eq!(s.reconnects, 1, "only the live controller connected");

        // Kill the live controller too: attempts exhaust cleanly.
        server.shutdown();
        assert!(client.request(&hello).is_err());
        assert_eq!(client.stats().failures, 1);
    }

    #[test]
    fn malformed_frame_drops_the_connection() {
        let controller = Arc::new(FleetController::new(2, FleetPolicy::default()));
        let path = sock_path("malformed");
        let mut server = FleetWireServer::spawn(Arc::clone(&controller), &path).unwrap();

        let mut client = FleetClient::connect(&path).unwrap();
        let answer = client.request(&[0xEE, 1, 2, 3]).unwrap();
        assert!(answer.is_none(), "server must close on garbage");
        assert!(controller.metrics().snapshot().malformed_frames >= 1);

        server.shutdown();
    }

    #[test]
    fn fenced_ack_fails_fast_and_advances() {
        let controller = Arc::new(FleetController::new(2, FleetPolicy::default()));
        let path = sock_path("fenced");
        let mut server = FleetWireServer::spawn(Arc::clone(&controller), &path).unwrap();

        // Two entries, both aimed at the same live controller, so the
        // fence-driven advance lands on a working peer.
        let mut client = FleetFailoverClient::new(
            [path.as_path(), path.as_path()],
            FailoverPolicy::fast_test(),
        );
        let hello = encode_hello(&Hello {
            host: 1,
            tick: 0,
            containers: 0,
            epoch: 0,
        });
        // The controller's epoch starts at 0, so any positive fence
        // refuses its ACKs.
        let err = client.request_fenced(&hello, 1_000_000).unwrap_err();
        assert!(matches!(err, WireError::Fenced { .. }));
        assert_eq!(client.active_controller(), 1, "fence advances the target");
        assert_eq!(client.stats().failures, 1);

        // With the fence satisfied the same exchange goes through.
        let resp = client.request_fenced(&hello, 0).unwrap();
        assert!(matches!(decode_frame(&resp), Some(Frame::Ack(_))));

        server.shutdown();
    }

    #[test]
    fn threaded_config_is_refused() {
        let controller = Arc::new(FleetController::new(2, FleetPolicy::default()));
        let cfg = ServerConfig::builder().threaded(true).build().unwrap();
        let err =
            FleetWireServer::spawn_with_config(controller, sock_path("threaded"), cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
