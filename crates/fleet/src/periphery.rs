//! The periphery: a thin per-host agent that streams view deltas up.
//!
//! A [`Periphery`] rides the host's update timer. Each firing it is
//! handed the monitor's persisted snapshot (the same
//! [`arv_persist::Snapshot`] the journal checkpoints), diffs it against
//! what it last shipped, and queues DELTA frames — chunked to the
//! controller's `max_batch` — on an outbox the transport drains. The
//! first frame after attach (and after any controller-requested resync)
//! is a FULL snapshot; everything else is incremental.
//!
//! The periphery owns no socket: the caller moves frames and feeds ACKs
//! back. That keeps it deterministic under simulation and reusable over
//! either the real wire ([`crate::wire::FleetClient`]) or an in-process
//! link (the `--fig fleet` campaign).
//!
//! # Backpressure and fencing
//!
//! The pushed policy's `rate_burst` is **enforced** here as a token
//! bucket: each observation refills a quarter-burst of tokens and every
//! queued entry or removal costs one. When the bucket runs dry the diff
//! is *coalesced* — held in a pending map where newer observations of
//! the same container overwrite older unsent ones — and flushes as one
//! batch when tokens return. Nothing is ever dropped; a FULL resync
//! bypasses the bucket (the controller demanded it).
//!
//! Every ACK carries the sender's controller epoch. The periphery
//! tracks the highest epoch it has ever seen and **fences** ACKs
//! stamped lower — a deposed primary's ACK cannot mutate policy or
//! sequence state, no matter when it arrives.

use arv_persist::Snapshot;
use std::collections::{BTreeSet, HashMap};

use crate::protocol::{
    encode_delta, encode_hello, Ack, Delta, DeltaEntry, FleetPolicy, Hello, HostSummary,
    HEALTH_DEGRADED, HEALTH_DURABILITY_LOST, HEALTH_FRESH, HEALTH_STALE,
};

/// What the periphery has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeripheryStats {
    /// DELTA frames queued.
    pub frames: u64,
    /// Delta entries shipped across all frames.
    pub entries: u64,
    /// FULL snapshots sent (first attach and every resync).
    pub full_syncs: u64,
    /// Controller-requested resyncs honoured (sequence gaps).
    pub resyncs: u64,
    /// Policy updates adopted from ACKs.
    pub policy_updates: u64,
    /// Observations whose diff was held back (coalesced) because the
    /// token bucket ran dry.
    pub deltas_coalesced: u64,
    /// ACKs rejected for carrying a stale controller epoch.
    pub acks_fenced: u64,
    /// Reconnects to a (possibly different) controller.
    pub failovers: u64,
}

/// What [`Periphery::handle_ack`] did with an ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckDisposition {
    /// The ACK was applied (policy / resync honoured).
    Applied,
    /// The ACK carried a stale controller epoch: nothing was applied.
    Fenced,
    /// The sender does not hold the lease: nothing was applied; the
    /// transport should walk the controller list.
    NotLeader,
    /// The ACK addressed a different host: ignored.
    Ignored,
}

/// Per-host agent streaming view deltas to the [`crate::FleetController`].
#[derive(Debug)]
pub struct Periphery {
    host: u32,
    seq: u64,
    policy: FleetPolicy,
    said_hello: bool,
    pending_full: bool,
    /// Last health byte shipped, durability flag included — a
    /// durability flip with no view changes still ships one (empty)
    /// delta, exactly like a staleness flip.
    last_health: u8,
    /// Durability ladder state mirrored from the host before each
    /// observation (see [`Periphery::set_durability`]).
    durability_lost: bool,
    journal_io_errors: u64,
    journal_fallback_bytes: u64,
    last_sent: HashMap<u32, DeltaEntry>,
    tenants: HashMap<u32, u32>,
    /// Diffed-but-unsent entries (token bucket dry): newer observations
    /// of the same container overwrite older unsent ones.
    pending: HashMap<u32, DeltaEntry>,
    /// Diffed-but-unsent removals.
    pending_removed: BTreeSet<u32>,
    /// Send tokens remaining; refilled each observation, capped at
    /// `policy.rate_burst`.
    tokens: u64,
    /// Highest controller epoch seen in any ACK (fencing floor).
    ctl_epoch_seen: u64,
    /// Monotone causal trace sequence: +1 per encoded DELTA frame,
    /// never reset by resync or reconnect.
    trace_seq: u64,
    /// The host tick at which the oldest diff now in the pending layer
    /// was observed — the origin of the causal span. Survives
    /// coalescing so `flush tick − origin` exposes the bucket's delay.
    pending_origin: Option<u64>,
    outbox: Vec<Vec<u8>>,
    stats: PeripheryStats,
}

impl Periphery {
    /// A fresh agent for `host`. Its first observation ships a HELLO
    /// followed by a FULL snapshot.
    pub fn new(host: u32) -> Periphery {
        let policy = FleetPolicy::default();
        Periphery {
            host,
            seq: 0,
            said_hello: false,
            pending_full: true,
            last_health: HEALTH_FRESH,
            durability_lost: false,
            journal_io_errors: 0,
            journal_fallback_bytes: 0,
            last_sent: HashMap::new(),
            tenants: HashMap::new(),
            pending: HashMap::new(),
            pending_removed: BTreeSet::new(),
            tokens: u64::from(policy.rate_burst.max(1)),
            ctl_epoch_seen: 0,
            trace_seq: 0,
            pending_origin: None,
            policy,
            outbox: Vec::new(),
            stats: PeripheryStats::default(),
        }
    }

    /// The host this agent speaks for.
    pub fn host(&self) -> u32 {
        self.host
    }

    /// The policy currently in force (defaults until the first ACK).
    pub fn policy(&self) -> FleetPolicy {
        self.policy
    }

    /// Counters so far.
    pub fn stats(&self) -> PeripheryStats {
        self.stats
    }

    /// Record a container's owning tenant (carried in every delta entry;
    /// containers without a record roll up under tenant 0).
    pub fn set_tenant(&mut self, container: u32, tenant: u32) {
        self.tenants.insert(container, tenant);
    }

    /// Mirror the host's durability-ladder state before an observation:
    /// whether the journal has lost durability, how many store errors
    /// it has absorbed, and how many bytes sit in the in-memory
    /// fallback. A flip in `lost` ships an (empty) delta on the next
    /// [`Periphery::observe`] even when no view changed, so the
    /// controller sees `DurabilityLost`/`DurabilityRestored` edges as
    /// they happen.
    pub fn set_durability(&mut self, lost: bool, io_errors: u64, fallback_bytes: u64) {
        self.durability_lost = lost;
        self.journal_io_errors = io_errors;
        self.journal_fallback_bytes = fallback_bytes;
    }

    /// Diff `snap` against the last shipped state, coalesce it into the
    /// pending layer, and flush DELTA frames if the token bucket
    /// allows. `stalled` marks the host's monitor as behind;
    /// `staleness_age` is how many ticks behind.
    pub fn observe(&mut self, snap: &Snapshot, stalled: bool, staleness_age: u64) {
        if !self.said_hello {
            self.outbox.push(encode_hello(&Hello {
                host: self.host,
                tick: snap.tick,
                containers: snap.entries.len() as u32,
                epoch: self.policy.epoch,
            }));
            self.said_hello = true;
        }

        let health = if stalled {
            HEALTH_DEGRADED
        } else if staleness_age > 0 {
            HEALTH_STALE
        } else {
            HEALTH_FRESH
        };
        // The byte actually compared for flip detection folds the
        // durability flag in: losing or regaining durability is a
        // health transition the controller must see.
        let shipped_health = health
            | if self.durability_lost {
                HEALTH_DURABILITY_LOST
            } else {
                0
            };

        let full = self.pending_full;
        if full {
            // Everything ships fresh: earlier unsent diffs are subsumed,
            // so the causal origin resets to this very tick.
            self.pending.clear();
            self.pending_removed.clear();
            self.last_sent.clear();
            self.pending_origin = None;
        }

        // Diff into the pending (coalescing) layer and refresh the
        // shipped-state mirror. The mirror tracks what has been *queued*,
        // so repeated observations don't re-diff already-pending state.
        for s in &snap.entries {
            let entry = DeltaEntry {
                id: s.id,
                tenant: self.tenants.get(&s.id).copied().unwrap_or(0),
                e_cpu: s.e_cpu,
                e_mem: s.e_mem,
                e_avail: s.e_avail,
                last_tick: s.last_tick,
            };
            if full || self.last_sent.get(&s.id) != Some(&entry) {
                self.pending.insert(entry.id, entry);
                self.pending_removed.remove(&entry.id);
                self.last_sent.insert(entry.id, entry);
            }
        }
        if !full {
            let gone: Vec<u32> = self
                .last_sent
                .keys()
                .filter(|id| snap.get(**id).is_none())
                .copied()
                .collect();
            for id in gone {
                self.last_sent.remove(&id);
                self.tenants.remove(&id);
                self.pending.remove(&id);
                self.pending_removed.insert(id);
            }
        }

        // Stamp the span origin: the tick at which the oldest unsent
        // diff entered the pending layer. Coalescing keeps it, so the
        // eventual flush carries how long the bucket held the data.
        if self.pending_origin.is_none()
            && (!self.pending.is_empty() || !self.pending_removed.is_empty())
        {
            self.pending_origin = Some(snap.tick);
        }

        // A health transition with no view changes still ships one
        // (empty) delta, so the controller sees Fresh↔Stale↔Degraded
        // flips as they happen.
        if !full
            && self.pending.is_empty()
            && self.pending_removed.is_empty()
            && shipped_health == self.last_health
        {
            return;
        }

        // Enforce the pushed `rate_burst` as a token bucket: a
        // quarter-burst refills per observation, every pending entry or
        // removal costs one token. A dry bucket *coalesces* — the diff
        // stays pending (newer states overwrite older unsent ones) and
        // flushes as one batch when tokens return. A FULL resync
        // bypasses the bucket: the controller demanded it.
        let capacity = u64::from(self.policy.rate_burst.max(1));
        let refill = (capacity / 4).max(1);
        self.tokens = self.tokens.saturating_add(refill).min(capacity);
        let cost = (self.pending.len() + self.pending_removed.len()) as u64;
        // A full bucket always buys one flush, even when the coalesced
        // diff outgrew the whole burst — coalescing delays, it can
        // never starve.
        if !full && cost > self.tokens && self.tokens < capacity {
            self.stats.deltas_coalesced += 1;
            return;
        }
        self.tokens = self.tokens.saturating_sub(cost);
        self.last_health = shipped_health;
        // FULL data is re-read fresh at this tick; otherwise the span
        // starts where the oldest pending diff was observed. An empty
        // (health-flip) delta originates here too.
        let origin_tick = self.pending_origin.take().unwrap_or(snap.tick);

        let mut entries: Vec<DeltaEntry> =
            std::mem::take(&mut self.pending).into_values().collect();
        entries.sort_unstable_by_key(|e| e.id);
        let mut removed: Vec<u32> = std::mem::take(&mut self.pending_removed)
            .into_iter()
            .collect();

        // Chunk into frames of at most `max_batch` entries. The FULL
        // flag rides only the first frame of a resync; followers are
        // ordinary increments the controller applies in sequence.
        let batch = self.policy.max_batch.max(1) as usize;
        let mut first = true;
        let mut rest = entries.as_slice();
        loop {
            let take = rest.len().min(batch);
            let (chunk, tail) = rest.split_at(take);
            let frame_removed = if first || tail.is_empty() {
                std::mem::take(&mut removed)
            } else {
                Vec::new()
            };
            self.stats.frames += 1;
            self.stats.entries += chunk.len() as u64;
            self.trace_seq += 1;
            self.outbox.push(encode_delta(&Delta {
                host: self.host,
                seq: self.seq,
                tick: snap.tick,
                full: full && first,
                health,
                durability_lost: self.durability_lost,
                staleness_age,
                epoch: self.policy.epoch,
                origin_tick,
                trace_seq: self.trace_seq,
                summary: HostSummary {
                    frames: self.stats.frames,
                    entries: self.stats.entries,
                    full_syncs: self.stats.full_syncs,
                    resyncs: self.stats.resyncs,
                    deltas_coalesced: self.stats.deltas_coalesced,
                    acks_fenced: self.stats.acks_fenced,
                    journal_io_errors: self.journal_io_errors,
                    journal_fallback_bytes: self.journal_fallback_bytes,
                },
                entries: chunk.to_vec(),
                removed: frame_removed,
            }));
            self.seq += 1;
            first = false;
            rest = tail;
            if rest.is_empty() {
                break;
            }
        }
        if full {
            self.stats.full_syncs += 1;
            self.pending_full = false;
        }
    }

    /// Drain the queued frames (HELLO first, then DELTAs in order).
    pub fn take_frames(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.outbox)
    }

    /// Whether frames are waiting to be drained.
    pub fn has_frames(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// Apply a controller ACK: adopt a strictly newer policy, and honour
    /// a resync request by scheduling a FULL snapshot. (The ACK's
    /// `expected_seq` is informational — with several frames in flight
    /// it naturally trails the local counter, so only the controller's
    /// explicit resync flag marks real loss.)
    ///
    /// ACKs stamped with a controller epoch **below the highest seen**
    /// are fenced: counted, and no state — policy, sequence, resync —
    /// is mutated. A `not_leader` ACK is likewise never applied; the
    /// returned disposition tells the transport to walk its controller
    /// list.
    pub fn handle_ack(&mut self, ack: &Ack) -> AckDisposition {
        if ack.host != self.host {
            return AckDisposition::Ignored;
        }
        if ack.ctl_epoch < self.ctl_epoch_seen {
            self.stats.acks_fenced += 1;
            return AckDisposition::Fenced;
        }
        self.ctl_epoch_seen = ack.ctl_epoch;
        if ack.not_leader {
            return AckDisposition::NotLeader;
        }
        if let Some(p) = &ack.policy {
            if p.epoch > self.policy.epoch {
                self.policy = *p;
                self.stats.policy_updates += 1;
            }
        }
        if ack.resync && !self.pending_full {
            self.pending_full = true;
            self.stats.resyncs += 1;
        }
        AckDisposition::Applied
    }

    /// The highest controller epoch observed in any ACK (fencing floor).
    pub fn ctl_epoch_seen(&self) -> u64 {
        self.ctl_epoch_seen
    }

    /// The transport reconnected (same or different controller): say
    /// HELLO again and answer the new primary's world-view with a FULL
    /// snapshot. Pending coalesced diffs are kept — the FULL subsumes
    /// them at the next observation.
    pub fn on_reconnect(&mut self) {
        self.said_hello = false;
        if !self.pending_full {
            self.pending_full = true;
        }
        self.stats.failovers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{decode_frame, Frame};
    use arv_persist::ViewState;

    fn snap(tick: u64, states: &[(u32, u32, u64)]) -> Snapshot {
        let mut s = Snapshot::at(tick);
        for (id, cpu, mem) in states {
            s.entries.push(ViewState {
                id: *id,
                e_cpu: *cpu,
                e_mem: *mem,
                e_avail: mem / 2,
                last_tick: tick,
            });
        }
        s
    }

    fn deltas(frames: Vec<Vec<u8>>) -> Vec<Delta> {
        frames
            .into_iter()
            .filter_map(|f| match decode_frame(&f) {
                Some(Frame::Delta(d)) => Some(d),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn first_observation_is_hello_plus_full() {
        let mut p = Periphery::new(4);
        p.observe(&snap(1, &[(1, 2, 100), (2, 4, 200)]), false, 0);
        let frames = p.take_frames();
        assert_eq!(frames.len(), 2);
        assert!(matches!(
            decode_frame(&frames[0]),
            Some(Frame::Hello(h)) if h.host == 4 && h.containers == 2
        ));
        let d = deltas(vec![frames[1].clone()]).remove(0);
        assert!(d.full);
        assert_eq!(d.entries.len(), 2);
        assert_eq!(d.seq, 0);
    }

    #[test]
    fn unchanged_state_sends_nothing() {
        let mut p = Periphery::new(1);
        let s = snap(1, &[(1, 2, 100)]);
        p.observe(&s, false, 0);
        p.take_frames();
        p.observe(&s, false, 0);
        assert!(!p.has_frames());
    }

    #[test]
    fn durability_flip_ships_empty_delta() {
        let mut p = Periphery::new(1);
        let s = snap(1, &[(1, 2, 100)]);
        p.observe(&s, false, 0);
        p.take_frames();

        // Losing durability with zero view changes still ships a frame.
        p.set_durability(true, 3, 512);
        p.observe(&s, false, 0);
        let ds = deltas(p.take_frames());
        assert_eq!(ds.len(), 1);
        assert!(ds[0].durability_lost);
        assert!(ds[0].entries.is_empty());
        assert_eq!(ds[0].summary.journal_io_errors, 3);
        assert_eq!(ds[0].summary.journal_fallback_bytes, 512);

        // Steady degraded state is quiet again...
        p.observe(&s, false, 0);
        assert!(!p.has_frames());

        // ...and healing flips once more.
        p.set_durability(false, 3, 0);
        p.observe(&s, false, 0);
        let ds = deltas(p.take_frames());
        assert_eq!(ds.len(), 1);
        assert!(!ds[0].durability_lost);
        assert_eq!(ds[0].summary.journal_fallback_bytes, 0);
    }

    #[test]
    fn incremental_diff_and_removal() {
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100), (2, 4, 200)]), false, 0);
        p.take_frames();
        p.observe(&snap(2, &[(1, 3, 100)]), false, 0);
        let ds = deltas(p.take_frames());
        assert_eq!(ds.len(), 1);
        assert!(!ds[0].full);
        assert_eq!(ds[0].entries.len(), 1);
        assert_eq!(ds[0].entries[0].e_cpu, 3);
        assert_eq!(ds[0].removed, vec![2]);
    }

    #[test]
    fn resync_request_triggers_full() {
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100)]), false, 0);
        p.take_frames();
        p.handle_ack(&Ack {
            host: 1,
            expected_seq: 0,
            ctl_epoch: 0,
            resync: true,
            not_leader: false,
            policy: None,
        });
        p.observe(&snap(2, &[(1, 2, 100)]), false, 0);
        let ds = deltas(p.take_frames());
        assert_eq!(ds.len(), 1);
        assert!(ds[0].full);
        assert_eq!(p.stats().resyncs, 1);
    }

    #[test]
    fn batches_chunk_to_policy() {
        let mut p = Periphery::new(1);
        p.handle_ack(&Ack {
            host: 1,
            expected_seq: 0,
            ctl_epoch: 0,
            resync: false,
            not_leader: false,
            policy: Some(FleetPolicy {
                epoch: 1,
                max_batch: 3,
                ..FleetPolicy::default()
            }),
        });
        let states: Vec<(u32, u32, u64)> = (0..10).map(|i| (i, 1, 100)).collect();
        p.observe(&snap(1, &states), false, 0);
        let ds = deltas(p.take_frames());
        assert_eq!(ds.len(), 4);
        assert!(ds[0].full && !ds[1].full);
        assert_eq!(ds.iter().map(|d| d.entries.len()).sum::<usize>(), 10);
        let seqs: Vec<u64> = ds.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(p.stats().policy_updates, 1);
    }

    #[test]
    fn tenants_ride_entries() {
        let mut p = Periphery::new(1);
        p.set_tenant(1, 77);
        p.observe(&snap(1, &[(1, 2, 100), (2, 2, 100)]), false, 0);
        let ds = deltas(p.take_frames());
        let tenants: Vec<u32> = ds[0].entries.iter().map(|e| e.tenant).collect();
        assert_eq!(tenants, vec![77, 0]);
    }

    fn plain_ack(host: u32, ctl_epoch: u64) -> Ack {
        Ack {
            host,
            expected_seq: 0,
            ctl_epoch,
            resync: false,
            not_leader: false,
            policy: None,
        }
    }

    #[test]
    fn token_bucket_coalesces_and_flushes_once() {
        let mut p = Periphery::new(1);
        p.handle_ack(&Ack {
            policy: Some(FleetPolicy {
                epoch: 1,
                rate_burst: 4,
                ..FleetPolicy::default()
            }),
            ..plain_ack(1, 0)
        });
        let states: Vec<(u32, u32, u64)> = (0..8).map(|i| (i, 1, 100)).collect();
        p.observe(&snap(1, &states), false, 0);
        let ds = deltas(p.take_frames());
        assert_eq!(ds.len(), 1, "FULL bypasses the bucket");
        assert!(ds[0].full);

        // Every container changes but the bucket is dry: the diff is
        // coalesced, not sent and not dropped.
        let changed: Vec<(u32, u32, u64)> = (0..8).map(|i| (i, 2, 100)).collect();
        p.observe(&snap(2, &changed), false, 0);
        assert!(!p.has_frames(), "dry bucket defers the flush");
        assert_eq!(p.stats().deltas_coalesced, 1);

        // A newer value for container 0 overwrites its unsent diff.
        let newer: Vec<(u32, u32, u64)> = (0..8)
            .map(|i| (i, if i == 0 { 9 } else { 2 }, 100))
            .collect();
        let mut flush_tick = None;
        for t in 3..64 {
            p.observe(&snap(t, &newer), false, 0);
            if p.has_frames() {
                flush_tick = Some(t);
                break;
            }
        }
        assert!(flush_tick.is_some(), "tokens must eventually return");
        let ds = deltas(p.take_frames());
        assert_eq!(ds.len(), 1, "accumulated diff flushes as one batch");
        assert_eq!(ds[0].entries.len(), 8, "nothing was dropped");
        assert!(
            ds[0].entries.iter().any(|e| e.id == 0 && e.e_cpu == 9),
            "coalesced entry carries the newest value"
        );
        assert!(p.stats().deltas_coalesced > 1);
    }

    #[test]
    fn span_stamps_trace_coalescing_delay() {
        let mut p = Periphery::new(1);
        p.handle_ack(&Ack {
            policy: Some(FleetPolicy {
                epoch: 1,
                rate_burst: 4,
                ..FleetPolicy::default()
            }),
            ..plain_ack(1, 0)
        });
        let states: Vec<(u32, u32, u64)> = (0..8).map(|i| (i, 1, 100)).collect();
        p.observe(&snap(1, &states), false, 0);
        let ds = deltas(p.take_frames());
        assert_eq!(ds[0].origin_tick, 1, "FULL data is fresh at the flush tick");
        assert_eq!(ds[0].trace_seq, 1);
        assert_eq!(ds[0].summary.frames, 1);
        assert_eq!(ds[0].summary.entries, 8);

        // A dry bucket coalesces at tick 2; when the flush finally
        // lands, origin_tick must still say 2 — the span measures the
        // whole coalescing delay, not just the last observation.
        let changed: Vec<(u32, u32, u64)> = (0..8).map(|i| (i, 2, 100)).collect();
        p.observe(&snap(2, &changed), false, 0);
        assert!(!p.has_frames());
        let mut flushed = None;
        for t in 3..64 {
            p.observe(&snap(t, &changed), false, 0);
            if p.has_frames() {
                flushed = Some(t);
                break;
            }
        }
        let flush_tick = flushed.expect("tokens must return");
        let ds = deltas(p.take_frames());
        assert_eq!(ds[0].origin_tick, 2, "origin survives coalescing");
        assert_eq!(ds[0].tick, flush_tick);
        assert!(ds[0].tick - ds[0].origin_tick >= 1, "delay is visible");
        assert_eq!(ds[0].trace_seq, 2, "trace seq is monotone per frame");
        assert_eq!(ds[0].summary.deltas_coalesced, p.stats().deltas_coalesced);
    }

    #[test]
    fn stale_epoch_acks_are_fenced() {
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100)]), false, 0);
        p.take_frames();
        assert_eq!(p.handle_ack(&plain_ack(1, 2)), AckDisposition::Applied);
        assert_eq!(p.ctl_epoch_seen(), 2);

        // A deposed primary (epoch 1) pushes a tempting policy and a
        // resync demand: both must be ignored wholesale.
        let stale = Ack {
            resync: true,
            policy: Some(FleetPolicy {
                epoch: 99,
                staleness_budget: 1,
                max_batch: 1,
                rate_burst: 1,
            }),
            ..plain_ack(1, 1)
        };
        assert_eq!(p.handle_ack(&stale), AckDisposition::Fenced);
        assert_eq!(p.stats().acks_fenced, 1);
        assert_eq!(p.policy(), FleetPolicy::default(), "policy not adopted");
        assert_eq!(p.stats().resyncs, 0, "resync not honoured");
        p.observe(&snap(2, &[(1, 3, 100)]), false, 0);
        let ds = deltas(p.take_frames());
        assert!(!ds[0].full, "no FULL was scheduled by the fenced ACK");

        // not_leader from a current-epoch controller: nothing applied
        // either, but the disposition says to walk the list.
        let nl = Ack {
            not_leader: true,
            ..plain_ack(1, 2)
        };
        assert_eq!(p.handle_ack(&nl), AckDisposition::NotLeader);
    }

    #[test]
    fn reconnect_rehellos_and_resyncs() {
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100)]), false, 0);
        p.take_frames();
        p.on_reconnect();
        assert_eq!(p.stats().failovers, 1);
        p.observe(&snap(2, &[(1, 2, 100)]), false, 0);
        let frames = p.take_frames();
        assert!(matches!(decode_frame(&frames[0]), Some(Frame::Hello(_))));
        let ds = deltas(frames);
        assert!(ds[0].full, "reconnect answers with a FULL snapshot");
    }

    mod fencing_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Arbitrary interleavings of stale-primary and
            /// promoted-standby ACKs: an ACK whose epoch is below the
            /// highest seen NEVER mutates periphery state.
            #[test]
            fn lower_epoch_acks_never_mutate(
                ops in prop::collection::vec(
                    (0u64..4, prop::bool::ANY, prop::bool::ANY, 1u64..8), 0..32),
            ) {
                let mut p = Periphery::new(1);
                p.observe(&snap(1, &[(1, 2, 100)]), false, 0);
                p.take_frames();
                let mut max_seen = 0u64;
                for (ctl_epoch, not_leader, resync, pepoch) in ops {
                    let before = (
                        p.policy(),
                        p.stats().resyncs,
                        p.stats().policy_updates,
                        p.ctl_epoch_seen(),
                    );
                    let d = p.handle_ack(&Ack {
                        host: 1,
                        expected_seq: 0,
                        ctl_epoch,
                        resync,
                        not_leader,
                        policy: Some(FleetPolicy {
                            epoch: pepoch,
                            ..FleetPolicy::default()
                        }),
                    });
                    if ctl_epoch < max_seen {
                        prop_assert_eq!(d, AckDisposition::Fenced);
                        let after = (
                            p.policy(),
                            p.stats().resyncs,
                            p.stats().policy_updates,
                            p.ctl_epoch_seen(),
                        );
                        prop_assert_eq!(before, after, "fenced ACK mutated state");
                    } else {
                        max_seen = ctl_epoch;
                        prop_assert!(d != AckDisposition::Fenced);
                    }
                    prop_assert_eq!(p.ctl_epoch_seen(), max_seen);
                }
            }
        }
    }
}
