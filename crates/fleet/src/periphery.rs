//! The periphery: a thin per-host agent that streams view deltas up.
//!
//! A [`Periphery`] rides the host's update timer. Each firing it is
//! handed the monitor's persisted snapshot (the same
//! [`arv_persist::Snapshot`] the journal checkpoints), diffs it against
//! what it last shipped, and queues DELTA frames — chunked to the
//! controller's `max_batch` — on an outbox the transport drains. The
//! first frame after attach (and after any controller-requested resync)
//! is a FULL snapshot; everything else is incremental.
//!
//! The periphery owns no socket: the caller moves frames and feeds ACKs
//! back. That keeps it deterministic under simulation and reusable over
//! either the real wire ([`crate::wire::FleetClient`]) or an in-process
//! link (the `--fig fleet` campaign).

use arv_persist::Snapshot;
use std::collections::HashMap;

use crate::protocol::{
    encode_delta, encode_hello, Ack, Delta, DeltaEntry, FleetPolicy, Hello, HEALTH_DEGRADED,
    HEALTH_FRESH, HEALTH_STALE,
};

/// What the periphery has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeripheryStats {
    /// DELTA frames queued.
    pub frames: u64,
    /// Delta entries shipped across all frames.
    pub entries: u64,
    /// FULL snapshots sent (first attach and every resync).
    pub full_syncs: u64,
    /// Controller-requested resyncs honoured (sequence gaps).
    pub resyncs: u64,
    /// Policy updates adopted from ACKs.
    pub policy_updates: u64,
}

/// Per-host agent streaming view deltas to the [`crate::FleetController`].
#[derive(Debug)]
pub struct Periphery {
    host: u32,
    seq: u64,
    policy: FleetPolicy,
    said_hello: bool,
    pending_full: bool,
    last_health: u8,
    last_sent: HashMap<u32, DeltaEntry>,
    tenants: HashMap<u32, u32>,
    outbox: Vec<Vec<u8>>,
    stats: PeripheryStats,
}

impl Periphery {
    /// A fresh agent for `host`. Its first observation ships a HELLO
    /// followed by a FULL snapshot.
    pub fn new(host: u32) -> Periphery {
        Periphery {
            host,
            seq: 0,
            policy: FleetPolicy::default(),
            said_hello: false,
            pending_full: true,
            last_health: HEALTH_FRESH,
            last_sent: HashMap::new(),
            tenants: HashMap::new(),
            outbox: Vec::new(),
            stats: PeripheryStats::default(),
        }
    }

    /// The host this agent speaks for.
    pub fn host(&self) -> u32 {
        self.host
    }

    /// The policy currently in force (defaults until the first ACK).
    pub fn policy(&self) -> FleetPolicy {
        self.policy
    }

    /// Counters so far.
    pub fn stats(&self) -> PeripheryStats {
        self.stats
    }

    /// Record a container's owning tenant (carried in every delta entry;
    /// containers without a record roll up under tenant 0).
    pub fn set_tenant(&mut self, container: u32, tenant: u32) {
        self.tenants.insert(container, tenant);
    }

    /// Diff `snap` against the last shipped state and queue the
    /// resulting DELTA frames. `stalled` marks the host's monitor as
    /// behind; `staleness_age` is how many ticks behind.
    pub fn observe(&mut self, snap: &Snapshot, stalled: bool, staleness_age: u64) {
        if !self.said_hello {
            self.outbox.push(encode_hello(&Hello {
                host: self.host,
                tick: snap.tick,
                containers: snap.entries.len() as u32,
                epoch: self.policy.epoch,
            }));
            self.said_hello = true;
        }

        let health = if stalled {
            HEALTH_DEGRADED
        } else if staleness_age > 0 {
            HEALTH_STALE
        } else {
            HEALTH_FRESH
        };

        let full = self.pending_full;
        let mut entries = Vec::new();
        for s in &snap.entries {
            let entry = DeltaEntry {
                id: s.id,
                tenant: self.tenants.get(&s.id).copied().unwrap_or(0),
                e_cpu: s.e_cpu,
                e_mem: s.e_mem,
                e_avail: s.e_avail,
                last_tick: s.last_tick,
            };
            if full || self.last_sent.get(&s.id) != Some(&entry) {
                entries.push(entry);
            }
        }
        let mut removed: Vec<u32> = if full {
            Vec::new()
        } else {
            let mut gone: Vec<u32> = self
                .last_sent
                .keys()
                .filter(|id| snap.get(**id).is_none())
                .copied()
                .collect();
            gone.sort_unstable();
            gone
        };

        // A health transition with no view changes still ships one
        // (empty) delta, so the controller sees Fresh↔Stale↔Degraded
        // flips as they happen.
        if !full && entries.is_empty() && removed.is_empty() && health == self.last_health {
            return;
        }
        self.last_health = health;

        // Rebuild the shipped-state mirror.
        if full {
            self.last_sent.clear();
        }
        for id in &removed {
            self.last_sent.remove(id);
            self.tenants.remove(id);
        }
        for e in &entries {
            self.last_sent.insert(e.id, *e);
        }

        // Chunk into frames of at most `max_batch` entries. The FULL
        // flag rides only the first frame of a resync; followers are
        // ordinary increments the controller applies in sequence.
        let batch = self.policy.max_batch.max(1) as usize;
        let mut first = true;
        let mut rest = entries.as_slice();
        loop {
            let take = rest.len().min(batch);
            let (chunk, tail) = rest.split_at(take);
            let frame_removed = if first || tail.is_empty() {
                std::mem::take(&mut removed)
            } else {
                Vec::new()
            };
            self.stats.frames += 1;
            self.stats.entries += chunk.len() as u64;
            self.outbox.push(encode_delta(&Delta {
                host: self.host,
                seq: self.seq,
                tick: snap.tick,
                full: full && first,
                health,
                staleness_age,
                epoch: self.policy.epoch,
                entries: chunk.to_vec(),
                removed: frame_removed,
            }));
            self.seq += 1;
            first = false;
            rest = tail;
            if rest.is_empty() {
                break;
            }
        }
        if full {
            self.stats.full_syncs += 1;
            self.pending_full = false;
        }
    }

    /// Drain the queued frames (HELLO first, then DELTAs in order).
    pub fn take_frames(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.outbox)
    }

    /// Whether frames are waiting to be drained.
    pub fn has_frames(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// Apply a controller ACK: adopt a strictly newer policy, and honour
    /// a resync request by scheduling a FULL snapshot. (The ACK's
    /// `expected_seq` is informational — with several frames in flight
    /// it naturally trails the local counter, so only the controller's
    /// explicit resync flag marks real loss.)
    pub fn handle_ack(&mut self, ack: &Ack) {
        if ack.host != self.host {
            return;
        }
        if let Some(p) = &ack.policy {
            if p.epoch > self.policy.epoch {
                self.policy = *p;
                self.stats.policy_updates += 1;
            }
        }
        if ack.resync && !self.pending_full {
            self.pending_full = true;
            self.stats.resyncs += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{decode_frame, Frame};
    use arv_persist::ViewState;

    fn snap(tick: u64, states: &[(u32, u32, u64)]) -> Snapshot {
        let mut s = Snapshot::at(tick);
        for (id, cpu, mem) in states {
            s.entries.push(ViewState {
                id: *id,
                e_cpu: *cpu,
                e_mem: *mem,
                e_avail: mem / 2,
                last_tick: tick,
            });
        }
        s
    }

    fn deltas(frames: Vec<Vec<u8>>) -> Vec<Delta> {
        frames
            .into_iter()
            .filter_map(|f| match decode_frame(&f) {
                Some(Frame::Delta(d)) => Some(d),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn first_observation_is_hello_plus_full() {
        let mut p = Periphery::new(4);
        p.observe(&snap(1, &[(1, 2, 100), (2, 4, 200)]), false, 0);
        let frames = p.take_frames();
        assert_eq!(frames.len(), 2);
        assert!(matches!(
            decode_frame(&frames[0]),
            Some(Frame::Hello(h)) if h.host == 4 && h.containers == 2
        ));
        let d = deltas(vec![frames[1].clone()]).remove(0);
        assert!(d.full);
        assert_eq!(d.entries.len(), 2);
        assert_eq!(d.seq, 0);
    }

    #[test]
    fn unchanged_state_sends_nothing() {
        let mut p = Periphery::new(1);
        let s = snap(1, &[(1, 2, 100)]);
        p.observe(&s, false, 0);
        p.take_frames();
        p.observe(&s, false, 0);
        assert!(!p.has_frames());
    }

    #[test]
    fn incremental_diff_and_removal() {
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100), (2, 4, 200)]), false, 0);
        p.take_frames();
        p.observe(&snap(2, &[(1, 3, 100)]), false, 0);
        let ds = deltas(p.take_frames());
        assert_eq!(ds.len(), 1);
        assert!(!ds[0].full);
        assert_eq!(ds[0].entries.len(), 1);
        assert_eq!(ds[0].entries[0].e_cpu, 3);
        assert_eq!(ds[0].removed, vec![2]);
    }

    #[test]
    fn resync_request_triggers_full() {
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100)]), false, 0);
        p.take_frames();
        p.handle_ack(&Ack {
            host: 1,
            expected_seq: 0,
            resync: true,
            policy: None,
        });
        p.observe(&snap(2, &[(1, 2, 100)]), false, 0);
        let ds = deltas(p.take_frames());
        assert_eq!(ds.len(), 1);
        assert!(ds[0].full);
        assert_eq!(p.stats().resyncs, 1);
    }

    #[test]
    fn batches_chunk_to_policy() {
        let mut p = Periphery::new(1);
        p.handle_ack(&Ack {
            host: 1,
            expected_seq: 0,
            resync: false,
            policy: Some(FleetPolicy {
                epoch: 1,
                max_batch: 3,
                ..FleetPolicy::default()
            }),
        });
        let states: Vec<(u32, u32, u64)> = (0..10).map(|i| (i, 1, 100)).collect();
        p.observe(&snap(1, &states), false, 0);
        let ds = deltas(p.take_frames());
        assert_eq!(ds.len(), 4);
        assert!(ds[0].full && !ds[1].full);
        assert_eq!(ds.iter().map(|d| d.entries.len()).sum::<usize>(), 10);
        let seqs: Vec<u64> = ds.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(p.stats().policy_updates, 1);
    }

    #[test]
    fn tenants_ride_entries() {
        let mut p = Periphery::new(1);
        p.set_tenant(1, 77);
        p.observe(&snap(1, &[(1, 2, 100), (2, 2, 100)]), false, 0);
        let ds = deltas(p.take_frames());
        let tenants: Vec<u32> = ds[0].entries.iter().map(|e| e.tenant).collect();
        assert_eq!(tenants, vec![77, 0]);
    }
}
