//! The fleet delta protocol: frame layouts for the core↔periphery wire.
//!
//! Frames ride the same `u32le len | payload` framing as the viewd wire
//! (the shared [`arv_viewd::codec`]). The payload's first byte is an
//! opcode; everything after it is little-endian fixed-width fields:
//!
//! ```text
//! HELLO  := 0x10 | host u32 | tick u64 | containers u32 | epoch u64
//! DELTA  := 0x11 | host u32 | seq u64 | tick u64 | flags u8 | health u8
//!           | staleness_age u64 | epoch u64 | origin_tick u64
//!           | trace_seq u64 | summary (8 × u64)
//!           | n u32 | n × entry | m u32 | m × removed-id u32
//!   entry := id u32 | tenant u32 | e_cpu u32 | e_mem u64 | e_avail u64
//!           | last_tick u64
//!   flags bit0 = FULL (snapshot replacing all host state)
//!   health bit7 = DURABILITY_LOST (the host journals into a flagged
//!   in-memory fallback; orthogonal to the staleness code in bits 0–6)
//!   origin_tick / trace_seq = the causal span stamp: the host tick at
//!   which the oldest coalesced diff in this batch was observed, and a
//!   monotone per-periphery trace sequence; summary = the periphery's
//!   own counters piggybacked so one controller scrape exposes the
//!   whole fleet (see `HostSummary`)
//! POLICY := 0x12 | epoch u64 | staleness_budget u64 | max_batch u32
//!           | rate_burst u32
//! QUERY  := 0x13 | kind u8 | arg u32
//!   kind 0 = cluster capacity, 1 = tenant rollup (arg = tenant),
//!   kind 2 = top-k pressured containers (arg = k),
//!   kind 3 = Prometheus stats exposition (arg ignored),
//!   kind 4 = flight-recorder dump (arg = dumps back from newest)
//! REPL   := 0x14 | ctl_epoch u64 | repl_seq u64 | as_of_tick u64
//!           | records
//!   records = zero or more CRC-framed `arv_persist` journal records
//!   (checkpoint / delta / remove), exactly the bytes the primary's
//!   journal appended; the standby validates each record's CRC on
//!   apply; as_of_tick = the primary's controller tick at drain time,
//!   so a standby can gauge how far its shadow index trails
//! ACK    := 0x20 | host u32 | expected_seq u64 | ctl_epoch u64
//!           | flags u8 [| POLICY body when bit1 set]
//!   flags bit0 = resync required (next DELTA must be FULL),
//!   flags bit1 = policy block attached,
//!   flags bit2 = sender is not the lease holder (try another
//!   controller); peripheries fence ACKs whose ctl_epoch is below the
//!   highest they have seen
//! ROLLUP := 0x21 | ctl_epoch u64 | as_of_tick u64 | origin_min u64
//!           | trace_max u64 | kind u8 | status u8 | body
//!   status reuses the viewd wire codes: 0 = fresh, 2 = degraded
//!   (at least one host is partitioned and served last-good); readers
//!   fence rollups from epochs below the highest observed; the span
//!   stamp (as_of_tick, origin_min, trace_max) traces the answer back
//!   to the oldest host tick contributing to it
//! ```
//!
//! Every decode path is bounds-checked and returns `Option` — arbitrary
//! truncation or corruption must never panic the controller (the same
//! contract the viewd wire fuzz enforces).

use arv_viewd::{STATUS_OK, STATUS_OK_DEGRADED};

/// Opcode: periphery introduces itself (and learns the current policy).
pub const OP_HELLO: u8 = 0x10;
/// Opcode: a batch of view deltas from one periphery.
pub const OP_DELTA: u8 = 0x11;
/// Opcode: a standalone policy push.
pub const OP_POLICY: u8 = 0x12;
/// Opcode: a cross-host rollup query.
pub const OP_QUERY: u8 = 0x13;
/// Opcode: primary→standby replication of accepted journal records.
pub const OP_REPL: u8 = 0x14;
/// Opcode: controller's answer to HELLO/DELTA.
pub const OP_ACK: u8 = 0x20;
/// Opcode: controller's answer to QUERY.
pub const OP_ROLLUP: u8 = 0x21;

/// Query kind: cluster-wide effective capacity.
pub const QUERY_CLUSTER: u8 = 0;
/// Query kind: one tenant's rollup.
pub const QUERY_TENANT: u8 = 1;
/// Query kind: top-k pressured containers.
pub const QUERY_TOPK: u8 = 2;
/// Query kind: Prometheus text exposition of the fleet counters.
pub const QUERY_STATS: u8 = 3;
/// Query kind: retrieve a frozen flight-recorder dump (`arg` = how
/// many dumps back from the newest; 0 = newest).
pub const QUERY_FLIGHT: u8 = 4;

/// DELTA flag: the batch is a full snapshot replacing all host state.
pub const DELTA_FULL: u8 = 1;
/// ACK flag: controller lost sequence; the next DELTA must be FULL.
pub const ACK_RESYNC: u8 = 1;
/// ACK flag: a policy block follows the header.
pub const ACK_POLICY: u8 = 2;
/// ACK flag: the sender is not the current lease holder — the
/// periphery should walk its controller list.
pub const ACK_NOT_LEADER: u8 = 4;

/// Sentinel `Ack.host` used when a standby acknowledges a REPL frame:
/// `expected_seq` is then the next replication sequence, not a delta
/// sequence. Real hosts never use this id.
pub const REPL_PEER: u32 = u32::MAX;

/// Largest accepted fleet frame. A full batch at the default
/// [`FleetPolicy::max_batch`] is ~9 KiB; REPL frames carrying a
/// compacted checkpoint of a large index need far more headroom. The
/// cap still bounds what a corrupt length prefix can allocate.
pub const MAX_FLEET_FRAME: u32 = 1024 * 1024;

/// Host-level health byte carried in DELTA: monitor healthy.
pub const HEALTH_FRESH: u8 = 0;
/// Host-level health byte: view age within budget but monitor behind.
pub const HEALTH_STALE: u8 = 1;
/// Host-level health byte: host serving conservative fallbacks.
pub const HEALTH_DEGRADED: u8 = 2;
/// Health-byte flag (bit 7): the host's journal lost durability and is
/// writing to a flagged in-memory fallback. Orthogonal to the staleness
/// code carried in the low bits — a host can be Fresh yet non-durable.
pub const HEALTH_DURABILITY_LOST: u8 = 0x80;

/// Bytes of one encoded delta entry.
const ENTRY_BYTES: usize = 4 + 4 + 4 + 8 + 8 + 8;

/// The policy a controller pushes down to every periphery: the fleet
/// analogue of the per-host staleness budget and `WireLimits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetPolicy {
    /// Monotone policy generation; peripheries adopt strictly newer.
    pub epoch: u64,
    /// Controller-side staleness budget, in controller ticks: a host
    /// with no accepted delta for longer is flagged partitioned and its
    /// contribution served last-good, degraded.
    pub staleness_budget: u64,
    /// Max delta entries per DELTA frame (peripheries chunk above it).
    pub max_batch: u32,
    /// Advisory periphery send burst (WireLimits `rate_burst` analogue).
    pub rate_burst: u32,
}

impl Default for FleetPolicy {
    fn default() -> FleetPolicy {
        FleetPolicy {
            epoch: 0,
            staleness_budget: 3,
            max_batch: 256,
            rate_burst: 1 << 12,
        }
    }
}

/// One container's view state as carried in a DELTA frame: the
/// persisted [`arv_persist::ViewState`] fields plus the owning tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaEntry {
    /// Container (cgroup) id on the source host.
    pub id: u32,
    /// Owning tenant, for per-tenant rollups.
    pub tenant: u32,
    /// Effective CPU count.
    pub e_cpu: u32,
    /// Effective memory limit, bytes.
    pub e_mem: u64,
    /// Available memory as seen by the container, bytes.
    pub e_avail: u64,
    /// Host update-timer tick of the last view refresh.
    pub last_tick: u64,
}

/// A decoded HELLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Sending host.
    pub host: u32,
    /// Host update-timer tick at send time.
    pub tick: u64,
    /// Containers currently live on the host.
    pub containers: u32,
    /// Newest policy epoch the periphery has adopted.
    pub epoch: u64,
}

/// The periphery's own counters, piggybacked on every DELTA frame so a
/// single controller scrape exposes per-host agent health for the
/// whole fleet without touching any host.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostSummary {
    /// DELTA frames the periphery has queued so far.
    pub frames: u64,
    /// Delta entries shipped across all frames.
    pub entries: u64,
    /// FULL snapshots sent.
    pub full_syncs: u64,
    /// Controller-requested resyncs honoured.
    pub resyncs: u64,
    /// Observations coalesced because the token bucket ran dry.
    pub deltas_coalesced: u64,
    /// ACKs fenced for carrying a stale controller epoch.
    pub acks_fenced: u64,
    /// Journal store errors the host has absorbed (durability ladder).
    pub journal_io_errors: u64,
    /// Bytes currently held in the host's in-memory fallback journal
    /// (0 while durable).
    pub journal_fallback_bytes: u64,
}

/// A decoded DELTA batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Sending host.
    pub host: u32,
    /// Per-host frame sequence number (gap ⇒ resync).
    pub seq: u64,
    /// Host update-timer tick the batch was taken at (the flush tick).
    pub tick: u64,
    /// Whether this batch is a full snapshot (replaces all host state).
    pub full: bool,
    /// Host-level health (`HEALTH_*`, low bits only — the durability
    /// flag is split out into [`Delta::durability_lost`]).
    pub health: u8,
    /// Whether the host's journal has lost durability (health byte bit
    /// 7 on the wire).
    pub durability_lost: bool,
    /// Host view age in ticks behind its update timer.
    pub staleness_age: u64,
    /// Newest policy epoch the periphery has adopted.
    pub epoch: u64,
    /// Causal span stamp: the host tick at which the oldest diff in
    /// this batch was observed. With coalescing, `tick − origin_tick`
    /// is the flush delay the token bucket imposed.
    pub origin_tick: u64,
    /// Causal span stamp: monotone per-periphery trace sequence,
    /// incremented on every frame and never reset by resync logic.
    pub trace_seq: u64,
    /// The periphery's piggybacked counter summary.
    pub summary: HostSummary,
    /// Changed/new container states.
    pub entries: Vec<DeltaEntry>,
    /// Containers removed since the last batch.
    pub removed: Vec<u32>,
}

/// A decoded ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Host the ACK addresses ([`REPL_PEER`] for replication ACKs).
    pub host: u32,
    /// Next DELTA sequence the controller will accept in order (next
    /// REPL sequence for replication ACKs).
    pub expected_seq: u64,
    /// Controller epoch the sender holds; lower-than-seen is fenced.
    pub ctl_epoch: u64,
    /// Controller lost sequence: the next DELTA must be FULL.
    pub resync: bool,
    /// The sender does not hold the lease; walk the controller list.
    pub not_leader: bool,
    /// Policy push-down, attached when the periphery's epoch is stale.
    pub policy: Option<FleetPolicy>,
}

/// A decoded REPL batch: raw journal records streamed primary→standby.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repl {
    /// Controller epoch of the sending primary.
    pub ctl_epoch: u64,
    /// Sequence of this replication frame (gap ⇒ standby demands a
    /// fresh checkpoint).
    pub repl_seq: u64,
    /// The primary's controller tick when this frame was drained —
    /// the span stamp that lets a standby gauge its shadow-index lag.
    pub as_of_tick: u64,
    /// CRC-framed `arv_persist` record bytes, zero or more records.
    pub records: Vec<u8>,
}

/// A decoded QUERY.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// `QUERY_*` kind.
    pub kind: u8,
    /// Tenant id or `k`, by kind.
    pub arg: u32,
}

/// Cluster-wide capacity rollup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterRollup {
    /// Sum of effective CPUs across all containers on all hosts.
    pub cpu: u64,
    /// Sum of effective memory, bytes.
    pub mem: u64,
    /// Sum of available memory, bytes.
    pub avail: u64,
    /// Hosts in the index.
    pub hosts: u32,
    /// Hosts currently flagged partitioned (served last-good).
    pub partitioned: u32,
    /// Containers in the index.
    pub containers: u64,
}

impl ClusterRollup {
    /// Whether any contribution is served last-good.
    pub fn degraded(&self) -> bool {
        self.partitioned > 0
    }
}

/// One tenant's rollup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantRollup {
    /// Sum of effective CPUs across the tenant's containers.
    pub cpu: u64,
    /// Sum of effective memory, bytes.
    pub mem: u64,
    /// Sum of available memory, bytes.
    pub avail: u64,
    /// The tenant's container count.
    pub containers: u64,
}

/// One entry of a top-k pressure answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressurePoint {
    /// Hosting host.
    pub host: u32,
    /// Container id on that host.
    pub id: u32,
    /// Memory pressure in milli-units: `1000 · (1 − e_avail/e_mem)`.
    pub pressure_milli: u32,
}

/// A decoded ROLLUP response.
#[derive(Debug, Clone, PartialEq)]
pub enum Rollup {
    /// Cluster capacity (`degraded` = served with partitioned hosts).
    Cluster {
        /// The rollup values.
        rollup: ClusterRollup,
        /// Whether any host contribution is last-good.
        degraded: bool,
    },
    /// One tenant's rollup.
    Tenant {
        /// The rollup values.
        rollup: TenantRollup,
        /// Whether any host contribution is last-good.
        degraded: bool,
    },
    /// Top-k pressured containers, most pressured first.
    TopK(Vec<PressurePoint>),
    /// Prometheus text exposition of the fleet counters.
    Stats(String),
    /// A frozen flight-recorder dump, encoded with
    /// [`arv_telemetry::FlightDump::encode`]. Empty bytes mean no dump
    /// exists at the requested position.
    Flight(Vec<u8>),
}

/// The causal span stamp a controller attaches to every ROLLUP answer:
/// enough to trace the value back to the oldest host tick that fed it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStamp {
    /// Controller tick when the answer was computed.
    pub as_of_tick: u64,
    /// Minimum origin tick across all hosts contributing to the answer
    /// — the oldest causally-linked host observation.
    pub origin_min: u64,
    /// Maximum periphery trace sequence ingested so far.
    pub trace_max: u64,
}

impl SpanStamp {
    /// Worst-case end-to-end lag this answer embodies: how many
    /// controller ticks behind the freshest data its oldest
    /// contribution is.
    pub fn max_lag(&self) -> u64 {
        self.as_of_tick.saturating_sub(self.origin_min)
    }
}

/// A ROLLUP answer stamped with the answering controller's epoch, so
/// readers can fence answers from deposed primaries.
#[derive(Debug, Clone, PartialEq)]
pub struct RollupFrame {
    /// Controller epoch of the answering controller.
    pub ctl_epoch: u64,
    /// Causal span stamp tracing the answer to its oldest host tick.
    pub span: SpanStamp,
    /// The rollup body.
    pub body: Rollup,
}

/// Any decoded fleet frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A periphery introduction.
    Hello(Hello),
    /// A delta batch.
    Delta(Delta),
    /// A standalone policy push.
    Policy(FleetPolicy),
    /// A rollup query.
    Query(Query),
    /// A replication batch.
    Repl(Repl),
    /// A controller ACK.
    Ack(Ack),
    /// A controller rollup answer.
    Rollup(RollupFrame),
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_policy(out: &mut Vec<u8>, p: &FleetPolicy) {
    put_u64(out, p.epoch);
    put_u64(out, p.staleness_budget);
    put_u32(out, p.max_batch);
    put_u32(out, p.rate_burst);
}

/// Encode a HELLO payload.
pub fn encode_hello(h: &Hello) -> Vec<u8> {
    let mut out = Vec::with_capacity(25);
    out.push(OP_HELLO);
    put_u32(&mut out, h.host);
    put_u64(&mut out, h.tick);
    put_u32(&mut out, h.containers);
    put_u64(&mut out, h.epoch);
    out
}

/// Encode a DELTA payload.
pub fn encode_delta(d: &Delta) -> Vec<u8> {
    let mut out = Vec::with_capacity(47 + d.entries.len() * ENTRY_BYTES + d.removed.len() * 4);
    out.push(OP_DELTA);
    put_u32(&mut out, d.host);
    put_u64(&mut out, d.seq);
    put_u64(&mut out, d.tick);
    out.push(if d.full { DELTA_FULL } else { 0 });
    out.push(
        d.health
            | if d.durability_lost {
                HEALTH_DURABILITY_LOST
            } else {
                0
            },
    );
    put_u64(&mut out, d.staleness_age);
    put_u64(&mut out, d.epoch);
    put_u64(&mut out, d.origin_tick);
    put_u64(&mut out, d.trace_seq);
    put_u64(&mut out, d.summary.frames);
    put_u64(&mut out, d.summary.entries);
    put_u64(&mut out, d.summary.full_syncs);
    put_u64(&mut out, d.summary.resyncs);
    put_u64(&mut out, d.summary.deltas_coalesced);
    put_u64(&mut out, d.summary.acks_fenced);
    put_u64(&mut out, d.summary.journal_io_errors);
    put_u64(&mut out, d.summary.journal_fallback_bytes);
    put_u32(&mut out, d.entries.len() as u32);
    for e in &d.entries {
        put_u32(&mut out, e.id);
        put_u32(&mut out, e.tenant);
        put_u32(&mut out, e.e_cpu);
        put_u64(&mut out, e.e_mem);
        put_u64(&mut out, e.e_avail);
        put_u64(&mut out, e.last_tick);
    }
    put_u32(&mut out, d.removed.len() as u32);
    for id in &d.removed {
        put_u32(&mut out, *id);
    }
    out
}

/// Encode a standalone POLICY payload.
pub fn encode_policy(p: &FleetPolicy) -> Vec<u8> {
    let mut out = Vec::with_capacity(25);
    out.push(OP_POLICY);
    put_policy(&mut out, p);
    out
}

/// Encode a QUERY payload.
pub fn encode_query(q: &Query) -> Vec<u8> {
    let mut out = Vec::with_capacity(6);
    out.push(OP_QUERY);
    out.push(q.kind);
    put_u32(&mut out, q.arg);
    out
}

/// Encode a REPL payload.
pub fn encode_repl(r: &Repl) -> Vec<u8> {
    let mut out = Vec::with_capacity(25 + r.records.len());
    out.push(OP_REPL);
    put_u64(&mut out, r.ctl_epoch);
    put_u64(&mut out, r.repl_seq);
    put_u64(&mut out, r.as_of_tick);
    out.extend_from_slice(&r.records);
    out
}

/// Encode an ACK payload.
pub fn encode_ack(a: &Ack) -> Vec<u8> {
    let mut out = Vec::with_capacity(22 + 24);
    out.push(OP_ACK);
    put_u32(&mut out, a.host);
    put_u64(&mut out, a.expected_seq);
    put_u64(&mut out, a.ctl_epoch);
    let mut flags = 0u8;
    if a.resync {
        flags |= ACK_RESYNC;
    }
    if a.policy.is_some() {
        flags |= ACK_POLICY;
    }
    if a.not_leader {
        flags |= ACK_NOT_LEADER;
    }
    out.push(flags);
    if let Some(p) = &a.policy {
        put_policy(&mut out, p);
    }
    out
}

/// Encode a ROLLUP payload.
pub fn encode_rollup(r: &RollupFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    out.push(OP_ROLLUP);
    put_u64(&mut out, r.ctl_epoch);
    put_u64(&mut out, r.span.as_of_tick);
    put_u64(&mut out, r.span.origin_min);
    put_u64(&mut out, r.span.trace_max);
    match &r.body {
        Rollup::Cluster { rollup, degraded } => {
            out.push(QUERY_CLUSTER);
            out.push(if *degraded {
                STATUS_OK_DEGRADED
            } else {
                STATUS_OK
            });
            put_u64(&mut out, rollup.cpu);
            put_u64(&mut out, rollup.mem);
            put_u64(&mut out, rollup.avail);
            put_u32(&mut out, rollup.hosts);
            put_u32(&mut out, rollup.partitioned);
            put_u64(&mut out, rollup.containers);
        }
        Rollup::Tenant { rollup, degraded } => {
            out.push(QUERY_TENANT);
            out.push(if *degraded {
                STATUS_OK_DEGRADED
            } else {
                STATUS_OK
            });
            put_u64(&mut out, rollup.cpu);
            put_u64(&mut out, rollup.mem);
            put_u64(&mut out, rollup.avail);
            put_u64(&mut out, rollup.containers);
        }
        Rollup::TopK(points) => {
            out.push(QUERY_TOPK);
            out.push(STATUS_OK);
            put_u32(&mut out, points.len() as u32);
            for p in points {
                put_u32(&mut out, p.host);
                put_u32(&mut out, p.id);
                put_u32(&mut out, p.pressure_milli);
            }
        }
        Rollup::Stats(text) => {
            out.push(QUERY_STATS);
            out.push(STATUS_OK);
            out.extend_from_slice(text.as_bytes());
        }
        Rollup::Flight(dump) => {
            out.push(QUERY_FLIGHT);
            out.push(STATUS_OK);
            out.extend_from_slice(dump);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Decoding — bounds-checked, never panics
// ---------------------------------------------------------------------

struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Cur<'a> {
        Cur { b, i: 0 }
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.i
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.b.get(self.i)?;
        self.i += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.b.get(self.i..self.i + 4)?;
        self.i += 4;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(s);
        Some(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.b.get(self.i..self.i + 8)?;
        self.i += 8;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(s);
        Some(u64::from_le_bytes(buf))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.b[self.i..];
        self.i = self.b.len();
        s
    }

    /// The payload must end exactly where parsing did — trailing bytes
    /// mean the frame is not what its opcode claims.
    fn done(self) -> bool {
        self.i == self.b.len()
    }
}

fn get_policy(c: &mut Cur) -> Option<FleetPolicy> {
    Some(FleetPolicy {
        epoch: c.u64()?,
        staleness_budget: c.u64()?,
        max_batch: c.u32()?,
        rate_burst: c.u32()?,
    })
}

fn decode_delta(c: &mut Cur) -> Option<Delta> {
    let host = c.u32()?;
    let seq = c.u64()?;
    let tick = c.u64()?;
    let flags = c.u8()?;
    let raw_health = c.u8()?;
    let durability_lost = raw_health & HEALTH_DURABILITY_LOST != 0;
    let health = raw_health & !HEALTH_DURABILITY_LOST;
    if health > HEALTH_DEGRADED {
        return None;
    }
    let staleness_age = c.u64()?;
    let epoch = c.u64()?;
    let origin_tick = c.u64()?;
    let trace_seq = c.u64()?;
    let summary = HostSummary {
        frames: c.u64()?,
        entries: c.u64()?,
        full_syncs: c.u64()?,
        resyncs: c.u64()?,
        deltas_coalesced: c.u64()?,
        acks_fenced: c.u64()?,
        journal_io_errors: c.u64()?,
        journal_fallback_bytes: c.u64()?,
    };
    let n = c.u32()? as usize;
    // A claimed count larger than the bytes present is corruption; the
    // check also bounds the allocation below.
    if n > c.remaining() / ENTRY_BYTES {
        return None;
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(DeltaEntry {
            id: c.u32()?,
            tenant: c.u32()?,
            e_cpu: c.u32()?,
            e_mem: c.u64()?,
            e_avail: c.u64()?,
            last_tick: c.u64()?,
        });
    }
    let m = c.u32()? as usize;
    if m > c.remaining() / 4 {
        return None;
    }
    let mut removed = Vec::with_capacity(m);
    for _ in 0..m {
        removed.push(c.u32()?);
    }
    Some(Delta {
        host,
        seq,
        tick,
        full: flags & DELTA_FULL != 0,
        health,
        durability_lost,
        staleness_age,
        epoch,
        origin_tick,
        trace_seq,
        summary,
        entries,
        removed,
    })
}

fn decode_rollup(c: &mut Cur<'_>) -> Option<Rollup> {
    let kind = c.u8()?;
    let status = c.u8()?;
    if status != STATUS_OK && status != STATUS_OK_DEGRADED {
        return None;
    }
    let degraded = status == STATUS_OK_DEGRADED;
    match kind {
        QUERY_CLUSTER => Some(Rollup::Cluster {
            rollup: ClusterRollup {
                cpu: c.u64()?,
                mem: c.u64()?,
                avail: c.u64()?,
                hosts: c.u32()?,
                partitioned: c.u32()?,
                containers: c.u64()?,
            },
            degraded,
        }),
        QUERY_TENANT => Some(Rollup::Tenant {
            rollup: TenantRollup {
                cpu: c.u64()?,
                mem: c.u64()?,
                avail: c.u64()?,
                containers: c.u64()?,
            },
            degraded,
        }),
        QUERY_TOPK => {
            let n = c.u32()? as usize;
            if n > c.remaining() / 12 {
                return None;
            }
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                points.push(PressurePoint {
                    host: c.u32()?,
                    id: c.u32()?,
                    pressure_milli: c.u32()?,
                });
            }
            Some(Rollup::TopK(points))
        }
        QUERY_STATS => {
            let text = String::from_utf8(c.rest().to_vec()).ok()?;
            Some(Rollup::Stats(text))
        }
        QUERY_FLIGHT => Some(Rollup::Flight(c.rest().to_vec())),
        _ => None,
    }
}

/// Decode any fleet frame payload. `None` for anything malformed —
/// unknown opcode, short fields, impossible counts, trailing bytes.
/// Never panics, for any input bytes.
pub fn decode_frame(payload: &[u8]) -> Option<Frame> {
    let mut c = Cur::new(payload);
    let frame = match c.u8()? {
        OP_HELLO => Frame::Hello(Hello {
            host: c.u32()?,
            tick: c.u64()?,
            containers: c.u32()?,
            epoch: c.u64()?,
        }),
        OP_DELTA => Frame::Delta(decode_delta(&mut c)?),
        OP_POLICY => Frame::Policy(get_policy(&mut c)?),
        OP_QUERY => {
            let kind = c.u8()?;
            if kind > QUERY_FLIGHT {
                return None;
            }
            Frame::Query(Query {
                kind,
                arg: c.u32()?,
            })
        }
        OP_REPL => Frame::Repl(Repl {
            ctl_epoch: c.u64()?,
            repl_seq: c.u64()?,
            as_of_tick: c.u64()?,
            records: c.rest().to_vec(),
        }),
        OP_ACK => {
            let host = c.u32()?;
            let expected_seq = c.u64()?;
            let ctl_epoch = c.u64()?;
            let flags = c.u8()?;
            if flags & !(ACK_RESYNC | ACK_POLICY | ACK_NOT_LEADER) != 0 {
                return None;
            }
            let policy = if flags & ACK_POLICY != 0 {
                Some(get_policy(&mut c)?)
            } else {
                None
            };
            Frame::Ack(Ack {
                host,
                expected_seq,
                ctl_epoch,
                resync: flags & ACK_RESYNC != 0,
                not_leader: flags & ACK_NOT_LEADER != 0,
                policy,
            })
        }
        OP_ROLLUP => {
            let ctl_epoch = c.u64()?;
            let span = SpanStamp {
                as_of_tick: c.u64()?,
                origin_min: c.u64()?,
                trace_max: c.u64()?,
            };
            Frame::Rollup(RollupFrame {
                ctl_epoch,
                span,
                body: decode_rollup(&mut c)?,
            })
        }
        _ => return None,
    };
    if c.done() {
        Some(frame)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_delta() -> Delta {
        Delta {
            host: 7,
            seq: 42,
            tick: 1000,
            full: false,
            health: HEALTH_STALE,
            durability_lost: true,
            staleness_age: 2,
            epoch: 3,
            origin_tick: 997,
            trace_seq: 58,
            summary: HostSummary {
                frames: 58,
                entries: 120,
                full_syncs: 2,
                resyncs: 1,
                deltas_coalesced: 7,
                acks_fenced: 0,
                journal_io_errors: 3,
                journal_fallback_bytes: 4096,
            },
            entries: vec![
                DeltaEntry {
                    id: 1,
                    tenant: 10,
                    e_cpu: 4,
                    e_mem: 1 << 30,
                    e_avail: 1 << 29,
                    last_tick: 999,
                },
                DeltaEntry {
                    id: 2,
                    tenant: 11,
                    e_cpu: 2,
                    e_mem: 1 << 28,
                    e_avail: 1 << 20,
                    last_tick: 1000,
                },
            ],
            removed: vec![3, 9],
        }
    }

    #[test]
    fn round_trips() {
        let hello = Hello {
            host: 3,
            tick: 17,
            containers: 5,
            epoch: 0,
        };
        assert_eq!(
            decode_frame(&encode_hello(&hello)),
            Some(Frame::Hello(hello))
        );

        let delta = sample_delta();
        assert_eq!(
            decode_frame(&encode_delta(&delta)),
            Some(Frame::Delta(delta))
        );

        let policy = FleetPolicy {
            epoch: 9,
            staleness_budget: 5,
            max_batch: 64,
            rate_burst: 128,
        };
        assert_eq!(
            decode_frame(&encode_policy(&policy)),
            Some(Frame::Policy(policy))
        );

        let ack = Ack {
            host: 3,
            expected_seq: 43,
            ctl_epoch: 7,
            resync: true,
            not_leader: false,
            policy: Some(policy),
        };
        assert_eq!(decode_frame(&encode_ack(&ack)), Some(Frame::Ack(ack)));

        let fenced_ack = Ack {
            host: REPL_PEER,
            expected_seq: 9,
            ctl_epoch: 2,
            resync: false,
            not_leader: true,
            policy: None,
        };
        assert_eq!(
            decode_frame(&encode_ack(&fenced_ack)),
            Some(Frame::Ack(fenced_ack))
        );

        let repl = Repl {
            ctl_epoch: 4,
            repl_seq: 11,
            as_of_tick: 99,
            records: vec![1, 2, 3, 4, 5],
        };
        assert_eq!(decode_frame(&encode_repl(&repl)), Some(Frame::Repl(repl)));

        let query = Query {
            kind: QUERY_TENANT,
            arg: 11,
        };
        assert_eq!(
            decode_frame(&encode_query(&query)),
            Some(Frame::Query(query))
        );

        for body in [
            Rollup::Cluster {
                rollup: ClusterRollup {
                    cpu: 100,
                    mem: 1 << 40,
                    avail: 1 << 39,
                    hosts: 10,
                    partitioned: 1,
                    containers: 500,
                },
                degraded: true,
            },
            Rollup::Tenant {
                rollup: TenantRollup {
                    cpu: 8,
                    mem: 1 << 31,
                    avail: 1 << 30,
                    containers: 4,
                },
                degraded: false,
            },
            Rollup::TopK(vec![PressurePoint {
                host: 1,
                id: 2,
                pressure_milli: 900,
            }]),
            Rollup::Stats("arv_fleet_deltas_ingested 3\n".to_string()),
            Rollup::Flight(vec![7, 8, 9, 10]),
        ] {
            let rollup = RollupFrame {
                ctl_epoch: 5,
                span: SpanStamp {
                    as_of_tick: 40,
                    origin_min: 33,
                    trace_max: 17,
                },
                body,
            };
            assert_eq!(
                decode_frame(&encode_rollup(&rollup)),
                Some(Frame::Rollup(rollup))
            );
        }
    }

    #[test]
    fn truncation_never_panics() {
        let frames = [
            encode_hello(&Hello {
                host: 1,
                tick: 2,
                containers: 3,
                epoch: 4,
            }),
            encode_delta(&sample_delta()),
            encode_ack(&Ack {
                host: 1,
                expected_seq: 2,
                ctl_epoch: 3,
                resync: false,
                not_leader: false,
                policy: Some(FleetPolicy::default()),
            }),
            encode_rollup(&RollupFrame {
                ctl_epoch: 1,
                span: SpanStamp {
                    as_of_tick: 9,
                    origin_min: 4,
                    trace_max: 2,
                },
                body: Rollup::TopK(vec![PressurePoint {
                    host: 1,
                    id: 2,
                    pressure_milli: 500,
                }]),
            }),
            encode_repl(&Repl {
                ctl_epoch: 2,
                repl_seq: 3,
                as_of_tick: 5,
                records: vec![9; 24],
            }),
        ];
        for frame in &frames {
            for cut in 0..frame.len() {
                let _ = decode_frame(&frame[..cut]);
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = encode_query(&Query {
            kind: QUERY_CLUSTER,
            arg: 0,
        });
        frame.push(0);
        assert_eq!(decode_frame(&frame), None);
    }

    mod frame_props {
        use super::*;
        use crate::controller::FleetController;
        use proptest::prelude::*;

        fn arb_delta(host: u32, seq: u64, n: usize, m: usize) -> Delta {
            Delta {
                host,
                seq,
                tick: seq.wrapping_mul(3),
                full: seq % 2 == 0,
                health: (seq % 3) as u8,
                durability_lost: seq % 4 == 1,
                staleness_age: seq % 5,
                epoch: 0,
                origin_tick: seq.wrapping_mul(3).saturating_sub(seq % 4),
                trace_seq: seq,
                summary: HostSummary {
                    frames: seq,
                    entries: seq.wrapping_mul(n as u64),
                    full_syncs: seq / 2,
                    resyncs: seq % 2,
                    deltas_coalesced: seq % 7,
                    acks_fenced: 0,
                    journal_io_errors: seq % 3,
                    journal_fallback_bytes: (seq % 2) * 512,
                },
                entries: (0..n)
                    .map(|i| DeltaEntry {
                        id: i as u32,
                        tenant: (i % 4) as u32,
                        e_cpu: (i % 9) as u32,
                        e_mem: (i as u64 + 1) * 1000,
                        e_avail: (i as u64) * 400,
                        last_tick: seq,
                    })
                    .collect(),
                removed: (0..m).map(|i| 1000 + i as u32).collect(),
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Arbitrary bytes never panic the frame decoder.
            #[test]
            fn decode_frame_never_panics(
                bytes in prop::collection::vec(0u8..255, 0..96)
            ) {
                let _ = decode_frame(&bytes);
            }

            /// Arbitrary bytes never panic the controller either — the
            /// full ingest path behind `handle_frame` is fuzz-hardened,
            /// not just the decoder.
            #[test]
            fn controller_never_panics_on_garbage(
                bytes in prop::collection::vec(0u8..255, 0..96)
            ) {
                let ctl = FleetController::new(2, FleetPolicy::default());
                let _ = ctl.handle_frame(&bytes);
            }

            /// Truncating a valid DELTA at any point never panics the
            /// controller: the frame either still decodes (and is
            /// handled) or is rejected cleanly.
            #[test]
            fn truncated_delta_never_panics_controller(
                host in 0u32..16,
                seq in 0u64..8,
                n in 0usize..6,
                m in 0usize..4,
                cut in 0usize..512
            ) {
                let frame = encode_delta(&arb_delta(host, seq, n, m));
                let keep = cut.min(frame.len());
                let ctl = FleetController::new(2, FleetPolicy::default());
                let _ = ctl.handle_frame(&frame[..keep]);
            }

            /// Flipping one bit of a valid DELTA never panics the
            /// controller (it may still be accepted, with different
            /// contents — CRC-level integrity is the journal's job, the
            /// wire trusts the kernel's byte stream like viewd does).
            #[test]
            fn corrupted_delta_never_panics_controller(
                host in 0u32..16,
                seq in 0u64..8,
                n in 0usize..6,
                idx in 0usize..4096,
                bit in 0u8..8
            ) {
                let mut frame = encode_delta(&arb_delta(host, seq, n, 1));
                let i = idx % frame.len();
                frame[i] ^= 1 << bit;
                let ctl = FleetController::new(2, FleetPolicy::default());
                let _ = ctl.handle_frame(&frame);
            }

            /// Well-formed deltas round-trip exactly.
            #[test]
            fn delta_round_trips(
                host in 0u32..1000,
                seq in 0u64..1000,
                n in 0usize..8,
                m in 0usize..8
            ) {
                let delta = arb_delta(host, seq, n, m);
                prop_assert_eq!(
                    decode_frame(&encode_delta(&delta)),
                    Some(Frame::Delta(delta))
                );
            }

            /// Span stamps survive a DELTA round-trip exactly: the
            /// origin tick, trace sequence, and piggybacked summary a
            /// periphery stamps are what the controller decodes.
            #[test]
            fn stamped_delta_preserves_span(
                host in 0u32..1000,
                seq in 0u64..10_000,
                n in 0usize..8
            ) {
                let delta = arb_delta(host, seq, n, 1);
                let decoded = decode_frame(&encode_delta(&delta));
                prop_assert!(matches!(decoded, Some(Frame::Delta(_))));
                let Some(Frame::Delta(got)) = decoded else {
                    unreachable!()
                };
                prop_assert_eq!(got.origin_tick, delta.origin_tick);
                prop_assert_eq!(got.trace_seq, delta.trace_seq);
                prop_assert_eq!(got.summary, delta.summary);
            }

            /// Span stamps survive a ROLLUP round-trip exactly, and the
            /// derived max-lag matches tick arithmetic.
            #[test]
            fn stamped_rollup_round_trips(
                ctl_epoch in 0u64..100,
                as_of in 0u64..10_000,
                lag in 0u64..64,
                trace_max in 0u64..10_000,
                cpu in 0u64..1_000_000
            ) {
                let frame = RollupFrame {
                    ctl_epoch,
                    span: SpanStamp {
                        as_of_tick: as_of,
                        origin_min: as_of.saturating_sub(lag),
                        trace_max,
                    },
                    body: Rollup::Cluster {
                        rollup: ClusterRollup { cpu, ..ClusterRollup::default() },
                        degraded: false,
                    },
                };
                let decoded = decode_frame(&encode_rollup(&frame));
                prop_assert!(matches!(decoded, Some(Frame::Rollup(_))));
                let Some(Frame::Rollup(got)) = decoded else {
                    unreachable!()
                };
                prop_assert_eq!(got.span, frame.span);
                prop_assert_eq!(got.span.max_lag(), lag.min(as_of));
            }

            /// Truncating or bit-flipping a stamped ROLLUP frame never
            /// panics the decoder — it decodes to something or to None.
            #[test]
            fn corrupted_stamped_rollup_never_panics(
                as_of in 0u64..10_000,
                trace_max in 0u64..10_000,
                cut in 0usize..128,
                idx in 0usize..4096,
                bit in 0u8..8
            ) {
                let mut frame = encode_rollup(&RollupFrame {
                    ctl_epoch: 3,
                    span: SpanStamp {
                        as_of_tick: as_of,
                        origin_min: as_of / 2,
                        trace_max,
                    },
                    body: Rollup::Flight(vec![0xAB; 16]),
                });
                let keep = cut.min(frame.len());
                let _ = decode_frame(&frame[..keep]);
                let i = idx % frame.len();
                frame[i] ^= 1 << bit;
                let _ = decode_frame(&frame);
            }

            /// Arbitrary record bytes shipped through a REPL frame never
            /// panic a standby — torn, corrupt, or adversarial streams
            /// degrade to a resync demand, not a crash.
            #[test]
            fn repl_garbage_never_panics_standby(
                ctl_epoch in 0u64..8,
                repl_seq in 0u64..8,
                records in prop::collection::vec(0u8..255, 0..256)
            ) {
                let frame = encode_repl(&Repl { ctl_epoch, repl_seq, as_of_tick: 0, records });
                let standby = FleetController::new(2, FleetPolicy::default());
                let _ = standby.handle_frame(&frame);
            }

            /// Truncating a valid REPL stream at any byte never panics a
            /// standby: the CRC framing drops the torn tail and the
            /// standby asks for a checkpoint.
            #[test]
            fn truncated_repl_never_panics_standby(
                n in 0usize..6,
                cut in 0usize..512
            ) {
                use arv_persist::{encode_record, Record, ViewState};
                let mut records = Vec::new();
                for i in 0..n {
                    records.extend_from_slice(&encode_record(&Record::Delta {
                        state: ViewState {
                            id: (1u32 << 16) | i as u32,
                            e_cpu: i as u32,
                            e_mem: 1,
                            e_avail: 1,
                            last_tick: i as u64,
                        },
                        tick: i as u64,
                    }));
                }
                let keep = cut.min(records.len());
                records.truncate(keep);
                let frame = encode_repl(&Repl { ctl_epoch: 1, repl_seq: 0, as_of_tick: 0, records });
                let standby = FleetController::new(2, FleetPolicy::default());
                let _ = standby.handle_frame(&frame);
            }
        }
    }

    #[test]
    fn impossible_counts_rejected() {
        let mut frame = encode_delta(&Delta {
            host: 1,
            seq: 0,
            tick: 0,
            full: true,
            health: HEALTH_FRESH,
            durability_lost: false,
            staleness_age: 0,
            epoch: 0,
            origin_tick: 0,
            trace_seq: 0,
            summary: HostSummary::default(),
            entries: Vec::new(),
            removed: Vec::new(),
        });
        // Overwrite the entry count (offset 119) with a huge claim.
        frame[119..123].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&frame), None);
    }
}
