//! The fleet core: a sharded host×container index answering
//! cluster-wide queries over every periphery's streamed view state.
//!
//! The controller ingests [`crate::protocol`] frames (transport-agnostic
//! — the wire server and the in-process campaign both call
//! [`FleetController::handle_frame`]), maintains per-shard running
//! totals so capacity rollups are O(shards) rather than O(containers),
//! and journals every accepted delta through `arv-persist` so a crashed
//! controller warm-restarts prefix-consistently and is caught up by
//! periphery resyncs.
//!
//! # Sequence and staleness rules
//!
//! Each host's DELTA frames carry a dense sequence number. The
//! controller applies in-order frames incrementally; any gap flips the
//! host into `needs_resync` and every ACK requests a FULL snapshot
//! until one arrives (mirroring the single-host watchdog's gap →
//! resync rule). A host with no accepted delta for more than the
//! policy's staleness budget of controller ticks is flagged
//! *partitioned*: its last-good contribution stays in every rollup,
//! but the rollup is flagged degraded — the cluster-level analogue of
//! the staleness fallback.

use arv_persist::{restore, Journal, Snapshot, ViewState};
use arv_telemetry::{PipelineEvent, PromText, Tracer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::protocol::{
    decode_frame, encode_ack, encode_policy, encode_rollup, Ack, ClusterRollup, Delta, DeltaEntry,
    FleetPolicy, Frame, PressurePoint, Query, Rollup, TenantRollup, QUERY_CLUSTER, QUERY_STATS,
    QUERY_TENANT, QUERY_TOPK,
};

/// Mask for the host-tick bits of a journaled `last_tick` (the tenant
/// rides the top 16 bits — see [`pack_id`]).
const TICK_MASK: u64 = (1 << 48) - 1;

/// Pack a (host, container) pair into a journalable `ViewState` id.
/// Both must fit 16 bits — the fleet model caps at 65 536 hosts and
/// 65 536 containers per host, far above the paper's scale.
fn pack_id(host: u32, container: u32) -> Option<u32> {
    if host <= 0xFFFF && container <= 0xFFFF {
        Some((host << 16) | container)
    } else {
        None
    }
}

/// Lock-free counters for the controller. The four headline counters
/// (`deltas_ingested`, `deltas_gap_resyncs`, `hosts_partitioned`,
/// `rollup_queries`) are the ones the Prometheus exposition leads with.
#[derive(Debug, Default)]
pub struct FleetMetrics {
    /// DELTA frames accepted and applied.
    pub deltas_ingested: AtomicU64,
    /// Delta entries applied across all accepted frames.
    pub delta_entries: AtomicU64,
    /// Sequence gaps detected (each flips a host into resync).
    pub deltas_gap_resyncs: AtomicU64,
    /// FULL snapshots accepted.
    pub full_syncs: AtomicU64,
    /// Transitions of a host into the partitioned state.
    pub hosts_partitioned: AtomicU64,
    /// Rollup queries answered (cluster, tenant, top-k, stats).
    pub rollup_queries: AtomicU64,
    /// Frames that failed to decode (connection-fatal for the sender).
    pub malformed_frames: AtomicU64,
    /// Policy blocks pushed down in ACKs.
    pub policy_pushes: AtomicU64,
    /// HELLO frames answered.
    pub hellos: AtomicU64,
}

/// A point-in-time copy of [`FleetMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetMetricsSnapshot {
    /// DELTA frames accepted and applied.
    pub deltas_ingested: u64,
    /// Delta entries applied across all accepted frames.
    pub delta_entries: u64,
    /// Sequence gaps detected.
    pub deltas_gap_resyncs: u64,
    /// FULL snapshots accepted.
    pub full_syncs: u64,
    /// Transitions of a host into the partitioned state.
    pub hosts_partitioned: u64,
    /// Rollup queries answered.
    pub rollup_queries: u64,
    /// Frames that failed to decode.
    pub malformed_frames: u64,
    /// Policy blocks pushed down in ACKs.
    pub policy_pushes: u64,
    /// HELLO frames answered.
    pub hellos: u64,
}

impl FleetMetrics {
    /// Copy the counters.
    pub fn snapshot(&self) -> FleetMetricsSnapshot {
        FleetMetricsSnapshot {
            deltas_ingested: self.deltas_ingested.load(Ordering::Relaxed),
            delta_entries: self.delta_entries.load(Ordering::Relaxed),
            deltas_gap_resyncs: self.deltas_gap_resyncs.load(Ordering::Relaxed),
            full_syncs: self.full_syncs.load(Ordering::Relaxed),
            hosts_partitioned: self.hosts_partitioned.load(Ordering::Relaxed),
            rollup_queries: self.rollup_queries.load(Ordering::Relaxed),
            malformed_frames: self.malformed_frames.load(Ordering::Relaxed),
            policy_pushes: self.policy_pushes.load(Ordering::Relaxed),
            hellos: self.hellos.load(Ordering::Relaxed),
        }
    }
}

/// One tracked host.
#[derive(Debug, Default)]
struct HostEntry {
    /// Next DELTA sequence accepted in order.
    expected_seq: u64,
    /// Controller tick of the last accepted delta (staleness clock).
    last_delta_tick: u64,
    /// Host-side update-timer tick of the last accepted delta.
    host_tick: u64,
    /// Host-reported health byte of the last accepted delta.
    health: u8,
    /// Currently flagged partitioned (contribution served last-good).
    partitioned: bool,
    /// A gap was detected; ACKs demand a FULL snapshot until one lands.
    needs_resync: bool,
    /// Live container states.
    containers: HashMap<u32, DeltaEntry>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Totals {
    cpu: u64,
    mem: u64,
    avail: u64,
    containers: u64,
}

impl Totals {
    fn add(&mut self, e: &DeltaEntry) {
        self.cpu += u64::from(e.e_cpu);
        self.mem += e.e_mem;
        self.avail += e.e_avail;
        self.containers += 1;
    }

    fn sub(&mut self, e: &DeltaEntry) {
        self.cpu -= u64::from(e.e_cpu);
        self.mem -= e.e_mem;
        self.avail -= e.e_avail;
        self.containers -= 1;
    }
}

/// One shard: a slice of the host index plus its running totals.
#[derive(Debug, Default)]
struct Shard {
    hosts: HashMap<u32, HostEntry>,
    totals: Totals,
    tenants: HashMap<u32, Totals>,
}

impl Shard {
    fn upsert(&mut self, host: &mut HostEntry, e: DeltaEntry) {
        if let Some(old) = host.containers.insert(e.id, e) {
            self.totals.sub(&old);
            if let Some(t) = self.tenants.get_mut(&old.tenant) {
                t.sub(&old);
            }
        }
        self.totals.add(&e);
        self.tenants.entry(e.tenant).or_default().add(&e);
    }

    fn remove(&mut self, host: &mut HostEntry, id: u32) -> bool {
        match host.containers.remove(&id) {
            Some(old) => {
                self.totals.sub(&old);
                if let Some(t) = self.tenants.get_mut(&old.tenant) {
                    t.sub(&old);
                }
                true
            }
            None => false,
        }
    }
}

/// Journal plumbing: the append-only log plus its checkpoint cadence.
#[derive(Debug)]
struct JournalState {
    journal: Journal,
    every: u64,
    last_checkpoint: u64,
}

/// The central aggregator of the fleet control plane.
#[derive(Debug)]
pub struct FleetController {
    shards: Box<[Mutex<Shard>]>,
    mask: u64,
    policy: Mutex<FleetPolicy>,
    tick: AtomicU64,
    metrics: FleetMetrics,
    journal: Mutex<Option<JournalState>>,
    tracer: Tracer,
}

impl FleetController {
    /// A controller with `shards` index shards (rounded up to a power of
    /// two) under `policy`.
    pub fn new(shards: usize, policy: FleetPolicy) -> FleetController {
        let n = shards.max(1).next_power_of_two();
        FleetController {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            mask: n as u64 - 1,
            policy: Mutex::new(policy),
            tick: AtomicU64::new(0),
            metrics: FleetMetrics::default(),
            journal: Mutex::new(None),
            tracer: Tracer::disabled(),
        }
    }

    /// Route fleet pipeline events (partition flagged, gap resync,
    /// failover) into a trace ring. Call before sharing the controller.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The controller's staleness clock (advanced by the driver once per
    /// aggregation period).
    pub fn now_tick(&self) -> u64 {
        self.tick.load(Ordering::Acquire)
    }

    /// The policy currently pushed down to peripheries.
    pub fn policy(&self) -> FleetPolicy {
        *lock(&self.policy)
    }

    /// Install a new policy (staleness budget, batch and burst limits).
    /// The epoch is bumped internally; every periphery adopts it via the
    /// policy block attached to its next ACK.
    pub fn set_policy(&mut self, staleness_budget: u64, max_batch: u32, rate_burst: u32) {
        let mut p = lock(&self.policy);
        p.epoch += 1;
        p.staleness_budget = staleness_budget;
        p.max_batch = max_batch;
        p.rate_burst = rate_burst;
    }

    /// Counters.
    pub fn metrics(&self) -> &FleetMetrics {
        &self.metrics
    }

    /// Hosts currently tracked.
    pub fn host_count(&self) -> usize {
        self.shards.iter().map(|s| lock(s).hosts.len()).sum()
    }

    /// Containers currently tracked.
    pub fn container_count(&self) -> u64 {
        self.shards.iter().map(|s| lock(s).totals.containers).sum()
    }

    fn shard_for(&self, host: u32) -> &Mutex<Shard> {
        let h = u64::from(host).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h & self.mask) as usize]
    }

    /// Advance the controller's staleness clock one aggregation period:
    /// flag hosts silent past the staleness budget as partitioned, and
    /// take a journal checkpoint when the cadence is due.
    pub fn advance_tick(&self) {
        let now = self.tick.fetch_add(1, Ordering::AcqRel) + 1;
        let budget = lock(&self.policy).staleness_budget;
        for shard in self.shards.iter() {
            let mut s = lock(shard);
            for host in s.hosts.values_mut() {
                if !host.partitioned && now.saturating_sub(host.last_delta_tick) > budget {
                    host.partitioned = true;
                    self.metrics
                        .hosts_partitioned
                        .fetch_add(1, Ordering::Relaxed);
                    self.tracer
                        .emit_pipeline(now, None, PipelineEvent::FleetPartitioned);
                }
            }
        }
        let mut journal = lock(&self.journal);
        if let Some(js) = journal.as_mut() {
            if now.saturating_sub(js.last_checkpoint) >= js.every {
                let snap = self.index_snapshot(now);
                js.journal.checkpoint(&snap);
                js.last_checkpoint = now;
            }
        }
    }

    /// Handle one decoded-or-not request frame; `None` means the frame
    /// was malformed (or not a request) and the connection should drop.
    /// Never panics, for any input bytes.
    pub fn handle_frame(&self, payload: &[u8]) -> Option<Vec<u8>> {
        match decode_frame(payload) {
            Some(Frame::Hello(h)) => Some(self.handle_hello(h.host, h.epoch)),
            Some(Frame::Delta(d)) => Some(self.handle_delta(d)),
            Some(Frame::Query(q)) => Some(self.handle_query(q)),
            Some(Frame::Policy(p)) => self.handle_policy_push(p),
            Some(Frame::Ack(_)) | Some(Frame::Rollup(_)) | None => {
                self.metrics
                    .malformed_frames
                    .fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn ack_for(&self, host: u32, expected_seq: u64, resync: bool, periphery_epoch: u64) -> Vec<u8> {
        let policy = *lock(&self.policy);
        let attach = policy.epoch > periphery_epoch;
        if attach {
            self.metrics.policy_pushes.fetch_add(1, Ordering::Relaxed);
        }
        encode_ack(&Ack {
            host,
            expected_seq,
            resync,
            policy: attach.then_some(policy),
        })
    }

    fn handle_hello(&self, host: u32, epoch: u64) -> Vec<u8> {
        self.metrics.hellos.fetch_add(1, Ordering::Relaxed);
        let now = self.now_tick();
        let mut s = lock(self.shard_for(host));
        let entry = s.hosts.entry(host).or_default();
        entry.last_delta_tick = now;
        let (expected, resync) = (entry.expected_seq, entry.needs_resync);
        drop(s);
        self.ack_for(host, expected, resync, epoch)
    }

    /// An admin-side policy push: adopt a strictly newer policy and echo
    /// the one now in force.
    fn handle_policy_push(&self, p: FleetPolicy) -> Option<Vec<u8>> {
        let mut cur = lock(&self.policy);
        if p.epoch > cur.epoch {
            *cur = p;
        }
        let now = *cur;
        drop(cur);
        Some(encode_policy(&now))
    }

    fn handle_delta(&self, d: Delta) -> Vec<u8> {
        let now = self.now_tick();
        let host_id = d.host;
        let epoch = d.epoch;
        let mut s = lock(self.shard_for(host_id));
        let shard = &mut *s;
        // Take the host out of the map so shard totals and host state
        // can be updated together without aliasing the shard borrow.
        let mut host = shard.hosts.remove(&host_id).unwrap_or_default();

        let accept = d.full || (d.seq == host.expected_seq && !host.needs_resync);
        if !accept {
            // A gap (or an unknown mid-stream host): drop the frame's
            // contents — applying out-of-order deltas could double-count
            // — and demand a FULL snapshot, mirroring the watchdog.
            if !host.needs_resync {
                host.needs_resync = true;
                self.metrics
                    .deltas_gap_resyncs
                    .fetch_add(1, Ordering::Relaxed);
                self.tracer
                    .emit_pipeline(now, None, PipelineEvent::FleetGapResync);
            }
            let expected = host.expected_seq;
            shard.hosts.insert(host_id, host);
            drop(s);
            return self.ack_for(host_id, expected, true, epoch);
        }

        let mut journaled_removals: Vec<u32> = Vec::new();
        if d.full {
            // Replace the host's state wholesale; containers absent from
            // the snapshot are removals the journal must also see.
            let stale: Vec<u32> = host
                .containers
                .keys()
                .filter(|id| !d.entries.iter().any(|e| e.id == **id))
                .copied()
                .collect();
            for id in stale {
                shard.remove(&mut host, id);
                journaled_removals.push(id);
            }
            host.needs_resync = false;
            host.expected_seq = d.seq + 1;
            self.metrics.full_syncs.fetch_add(1, Ordering::Relaxed);
        } else {
            host.expected_seq += 1;
        }
        for id in &d.removed {
            if shard.remove(&mut host, *id) {
                journaled_removals.push(*id);
            }
        }
        for e in &d.entries {
            shard.upsert(&mut host, *e);
        }
        host.last_delta_tick = now;
        host.host_tick = d.tick;
        host.health = d.health;
        host.partitioned = false;
        let expected = host.expected_seq;
        shard.hosts.insert(host_id, host);
        drop(s);

        self.metrics.deltas_ingested.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .delta_entries
            .fetch_add(d.entries.len() as u64, Ordering::Relaxed);

        let mut journal = lock(&self.journal);
        if let Some(js) = journal.as_mut() {
            for id in &journaled_removals {
                if let Some(packed) = pack_id(host_id, *id) {
                    js.journal.append_remove(packed);
                }
            }
            for e in &d.entries {
                if let Some(packed) = pack_id(host_id, e.id) {
                    js.journal.append_delta(
                        &ViewState {
                            id: packed,
                            e_cpu: e.e_cpu,
                            e_mem: e.e_mem,
                            e_avail: e.e_avail,
                            last_tick: (u64::from(e.tenant) << 48) | (e.last_tick & TICK_MASK),
                        },
                        now,
                    );
                }
            }
        }
        drop(journal);

        self.ack_for(host_id, expected, false, epoch)
    }

    fn handle_query(&self, q: Query) -> Vec<u8> {
        self.metrics.rollup_queries.fetch_add(1, Ordering::Relaxed);
        let rollup = match q.kind {
            QUERY_CLUSTER => {
                let r = self.cluster_capacity();
                Rollup::Cluster {
                    degraded: r.degraded(),
                    rollup: r,
                }
            }
            QUERY_TENANT => {
                let (r, degraded) = self.tenant_rollup(q.arg);
                Rollup::Tenant {
                    rollup: r,
                    degraded,
                }
            }
            QUERY_TOPK => Rollup::TopK(self.top_pressured(q.arg as usize)),
            QUERY_STATS => Rollup::Stats(self.prometheus_exposition()),
            // decode_frame bounds the kind; unreachable defensively.
            _ => Rollup::TopK(Vec::new()),
        };
        encode_rollup(&rollup)
    }

    /// Cluster-wide effective capacity: the sum of every container's
    /// effective view across every host, with partitioned hosts'
    /// last-good contribution included but flagged.
    pub fn cluster_capacity(&self) -> ClusterRollup {
        let mut out = ClusterRollup::default();
        for shard in self.shards.iter() {
            let s = lock(shard);
            out.cpu += s.totals.cpu;
            out.mem += s.totals.mem;
            out.avail += s.totals.avail;
            out.containers += s.totals.containers;
            out.hosts += s.hosts.len() as u32;
            out.partitioned += s.hosts.values().filter(|h| h.partitioned).count() as u32;
        }
        out
    }

    /// One tenant's rollup, plus whether any host is partitioned (the
    /// tenant's numbers may then be last-good).
    pub fn tenant_rollup(&self, tenant: u32) -> (TenantRollup, bool) {
        let mut out = TenantRollup::default();
        let mut degraded = false;
        for shard in self.shards.iter() {
            let s = lock(shard);
            if let Some(t) = s.tenants.get(&tenant) {
                out.cpu += t.cpu;
                out.mem += t.mem;
                out.avail += t.avail;
                out.containers += t.containers;
            }
            degraded |= s.hosts.values().any(|h| h.partitioned);
        }
        (out, degraded)
    }

    /// The `k` most memory-pressured containers cluster-wide, most
    /// pressured first (ties broken by host then container id, so the
    /// answer is deterministic).
    pub fn top_pressured(&self, k: usize) -> Vec<PressurePoint> {
        let mut points: Vec<PressurePoint> = Vec::new();
        for shard in self.shards.iter() {
            let s = lock(shard);
            for (hid, host) in &s.hosts {
                for e in host.containers.values() {
                    let pressure = (e.e_avail.min(e.e_mem) * 1000)
                        .checked_div(e.e_mem)
                        .map_or(0, |served| (1000 - served) as u32);
                    points.push(PressurePoint {
                        host: *hid,
                        id: e.id,
                        pressure_milli: pressure,
                    });
                }
            }
        }
        points.sort_unstable_by(|a, b| {
            b.pressure_milli
                .cmp(&a.pressure_milli)
                .then(a.host.cmp(&b.host))
                .then(a.id.cmp(&b.id))
        });
        points.truncate(k);
        points
    }

    /// Per-host breakdown (host id, partitioned?, containers, cpu sum)
    /// in host-id order — ground-truth checks in tests and experiments.
    pub fn host_rollups(&self) -> Vec<(u32, bool, u64, u64)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let s = lock(shard);
            for (hid, host) in &s.hosts {
                let cpu: u64 = host.containers.values().map(|e| u64::from(e.e_cpu)).sum();
                out.push((*hid, host.partitioned, host.containers.len() as u64, cpu));
            }
        }
        out.sort_unstable_by_key(|r| r.0);
        out
    }

    // -----------------------------------------------------------------
    // Journaling and failover
    // -----------------------------------------------------------------

    /// Journal the aggregate state, checkpointing every `every` ticks.
    pub fn enable_journal(&mut self, every: u64) {
        let snap = self.index_snapshot(self.now_tick());
        let mut journal = Journal::new();
        journal.checkpoint(&snap);
        *lock(&self.journal) = Some(JournalState {
            journal,
            every: every.max(1),
            last_checkpoint: self.now_tick(),
        });
    }

    /// The journal's current bytes (what a failover peer would replay).
    pub fn journal_bytes(&self) -> Option<Vec<u8>> {
        lock(&self.journal)
            .as_ref()
            .map(|js| js.journal.as_bytes().to_vec())
    }

    /// Build a persistable snapshot of the whole index: ids packed
    /// `host << 16 | container`, tenant in the top 16 bits of
    /// `last_tick` (host ticks never approach 2^48).
    fn index_snapshot(&self, tick: u64) -> Snapshot {
        let mut snap = Snapshot::at(tick);
        for shard in self.shards.iter() {
            let s = lock(shard);
            for (hid, host) in &s.hosts {
                for e in host.containers.values() {
                    if let Some(packed) = pack_id(*hid, e.id) {
                        snap.entries.push(ViewState {
                            id: packed,
                            e_cpu: e.e_cpu,
                            e_mem: e.e_mem,
                            e_avail: e.e_avail,
                            last_tick: (u64::from(e.tenant) << 48) | (e.last_tick & TICK_MASK),
                        });
                    }
                }
            }
        }
        snap.entries.sort_unstable_by_key(|e| e.id);
        snap
    }

    /// Warm-restart a replacement controller from journal bytes
    /// (possibly torn mid-record: `arv_persist::restore` keeps the
    /// longest valid prefix). Every restored host starts partitioned
    /// and `needs_resync` — rollups serve its last-good state flagged
    /// degraded until the host's next delta triggers a FULL resync.
    pub fn restore_from(bytes: &[u8], shards: usize, policy: FleetPolicy) -> FleetController {
        let report = restore(bytes);
        let mut ctl = FleetController::new(shards, policy);
        let Some(snap) = report.snapshot else {
            return ctl;
        };
        ctl.tick = AtomicU64::new(snap.tick);
        let mut partitioned = 0u64;
        {
            let mut seen = std::collections::HashSet::new();
            for e in &snap.entries {
                let host_id = e.id >> 16;
                let container = e.id & 0xFFFF;
                let tenant = (e.last_tick >> 48) as u32;
                let mut s = lock(ctl.shard_for(host_id));
                let shard = &mut *s;
                let mut host = shard.hosts.remove(&host_id).unwrap_or_default();
                if seen.insert(host_id) {
                    host.partitioned = true;
                    host.needs_resync = true;
                    host.last_delta_tick = snap.tick;
                    partitioned += 1;
                }
                shard.upsert(
                    &mut host,
                    DeltaEntry {
                        id: container,
                        tenant,
                        e_cpu: e.e_cpu,
                        e_mem: e.e_mem,
                        e_avail: e.e_avail,
                        last_tick: e.last_tick & TICK_MASK,
                    },
                );
                shard.hosts.insert(host_id, host);
            }
        }
        ctl.metrics
            .hosts_partitioned
            .store(partitioned, Ordering::Relaxed);
        ctl.tracer
            .emit_pipeline(snap.tick, None, PipelineEvent::FleetFailover);
        ctl
    }

    // -----------------------------------------------------------------
    // Exposition
    // -----------------------------------------------------------------

    /// Prometheus text exposition of the fleet counters, in the same
    /// format (and servable alongside) the viewd metrics.
    pub fn prometheus_exposition(&self) -> String {
        let m = self.metrics.snapshot();
        let r = self.cluster_capacity();
        let mut out = PromText::new();
        out.header(
            "arv_fleet_deltas_ingested",
            "DELTA frames accepted and applied",
            "counter",
        );
        out.sample("arv_fleet_deltas_ingested_total", m.deltas_ingested as f64);
        out.header(
            "arv_fleet_delta_entries",
            "Delta entries applied across all frames",
            "counter",
        );
        out.sample("arv_fleet_delta_entries_total", m.delta_entries as f64);
        out.header(
            "arv_fleet_deltas_gap_resyncs",
            "Sequence gaps detected (host flipped into resync)",
            "counter",
        );
        out.sample(
            "arv_fleet_deltas_gap_resyncs_total",
            m.deltas_gap_resyncs as f64,
        );
        out.header(
            "arv_fleet_hosts_partitioned",
            "Transitions of a host into the partitioned state",
            "counter",
        );
        out.sample(
            "arv_fleet_hosts_partitioned_total",
            m.hosts_partitioned as f64,
        );
        out.header(
            "arv_fleet_rollup_queries",
            "Rollup queries answered",
            "counter",
        );
        out.sample("arv_fleet_rollup_queries_total", m.rollup_queries as f64);
        out.header("arv_fleet_full_syncs", "FULL snapshots accepted", "counter");
        out.sample("arv_fleet_full_syncs_total", m.full_syncs as f64);
        out.header(
            "arv_fleet_malformed_frames",
            "Frames that failed to decode",
            "counter",
        );
        out.sample(
            "arv_fleet_malformed_frames_total",
            m.malformed_frames as f64,
        );
        out.header(
            "arv_fleet_policy_pushes",
            "Policy blocks pushed down in ACKs",
            "counter",
        );
        out.sample("arv_fleet_policy_pushes_total", m.policy_pushes as f64);
        out.header("arv_fleet_hosts", "Hosts tracked", "gauge");
        out.sample("arv_fleet_hosts", f64::from(r.hosts));
        out.header(
            "arv_fleet_hosts_partitioned_now",
            "Hosts currently partitioned",
            "gauge",
        );
        out.sample("arv_fleet_hosts_partitioned_now", f64::from(r.partitioned));
        out.header("arv_fleet_containers", "Containers tracked", "gauge");
        out.sample("arv_fleet_containers", r.containers as f64);
        out.finish()
    }
}

/// Lock helper mirroring the rest of the project: a poisoned mutex
/// (panicked peer) still yields the data — counters and index state
/// remain usable for the surviving threads.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::periphery::Periphery;
    use arv_persist::Snapshot as PSnapshot;
    use arv_persist::ViewState as PViewState;

    fn snap(tick: u64, states: &[(u32, u32, u64, u64)]) -> PSnapshot {
        let mut s = PSnapshot::at(tick);
        for (id, cpu, mem, avail) in states {
            s.entries.push(PViewState {
                id: *id,
                e_cpu: *cpu,
                e_mem: *mem,
                e_avail: *avail,
                last_tick: tick,
            });
        }
        s
    }

    /// Pump every queued periphery frame into the controller, feeding
    /// ACKs back.
    fn pump(p: &mut Periphery, ctl: &FleetController) {
        for frame in p.take_frames() {
            if let Some(resp) = ctl.handle_frame(&frame) {
                if let Some(Frame::Ack(ack)) = decode_frame(&resp) {
                    p.handle_ack(&ack);
                }
            }
        }
    }

    #[test]
    fn rollup_equals_ground_truth() {
        let ctl = FleetController::new(4, FleetPolicy::default());
        let mut p1 = Periphery::new(1);
        let mut p2 = Periphery::new(2);
        p1.set_tenant(10, 7);
        p1.observe(&snap(1, &[(10, 4, 1000, 500), (11, 2, 600, 300)]), false, 0);
        p2.observe(&snap(1, &[(10, 8, 2000, 100)]), false, 0);
        pump(&mut p1, &ctl);
        pump(&mut p2, &ctl);

        let r = ctl.cluster_capacity();
        assert_eq!(r.cpu, 14);
        assert_eq!(r.mem, 3600);
        assert_eq!(r.avail, 900);
        assert_eq!(r.hosts, 2);
        assert_eq!(r.containers, 3);
        assert!(!r.degraded());

        let (t, _) = ctl.tenant_rollup(7);
        assert_eq!((t.cpu, t.mem, t.containers), (4, 1000, 1));
        let (t0, _) = ctl.tenant_rollup(0);
        assert_eq!(t0.containers, 2);

        // Host 2's lone container has the least available share.
        let top = ctl.top_pressured(2);
        assert_eq!(top[0].host, 2);
        assert_eq!(top[0].pressure_milli, 950);
    }

    #[test]
    fn incremental_updates_keep_totals_consistent() {
        let ctl = FleetController::new(2, FleetPolicy::default());
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50), (2, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        p.observe(&snap(2, &[(1, 6, 300, 150)]), false, 0);
        pump(&mut p, &ctl);
        let r = ctl.cluster_capacity();
        assert_eq!((r.cpu, r.mem, r.avail, r.containers), (6, 300, 150, 1));
    }

    #[test]
    fn gap_triggers_resync_and_recovery() {
        let ctl = FleetController::new(2, FleetPolicy::default());
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);

        // Lose a frame: the next delta arrives with a gapped sequence.
        p.observe(&snap(2, &[(1, 3, 100, 50)]), false, 0);
        let lost = p.take_frames();
        assert_eq!(lost.len(), 1);

        p.observe(&snap(3, &[(1, 4, 100, 50)]), false, 0);
        pump(&mut p, &ctl); // rejected, resync requested
        assert_eq!(ctl.metrics().snapshot().deltas_gap_resyncs, 1);
        // Stale value still served (last-good).
        assert_eq!(ctl.cluster_capacity().cpu, 2);

        p.observe(&snap(4, &[(1, 5, 100, 50)]), false, 0);
        pump(&mut p, &ctl); // FULL snapshot realigns
        assert_eq!(ctl.cluster_capacity().cpu, 5);
        assert_eq!(ctl.metrics().snapshot().full_syncs, 2);
        assert_eq!(p.stats().resyncs, 1);
    }

    #[test]
    fn silent_host_flagged_partitioned_then_heals() {
        let ctl = FleetController::new(2, FleetPolicy::default());
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        for _ in 0..5 {
            ctl.advance_tick();
        }
        let r = ctl.cluster_capacity();
        assert_eq!(r.partitioned, 1);
        assert!(r.degraded());
        assert_eq!(r.cpu, 2, "last-good contribution still served");
        assert_eq!(ctl.metrics().snapshot().hosts_partitioned, 1);

        p.observe(&snap(2, &[(1, 3, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        let r = ctl.cluster_capacity();
        assert_eq!(r.partitioned, 0);
        assert!(!r.degraded());
        assert_eq!(r.cpu, 3);
    }

    #[test]
    fn policy_push_reaches_periphery() {
        let mut ctl = FleetController::new(2, FleetPolicy::default());
        ctl.set_policy(7, 32, 64);
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        assert_eq!(p.policy().staleness_budget, 7);
        assert_eq!(p.policy().max_batch, 32);
        assert_eq!(p.stats().policy_updates, 1);
        assert!(ctl.metrics().snapshot().policy_pushes >= 1);
    }

    #[test]
    fn journal_restore_is_prefix_consistent_and_resyncs() {
        let mut ctl = FleetController::new(2, FleetPolicy::default());
        ctl.enable_journal(2);
        let mut p = Periphery::new(3);
        p.set_tenant(1, 9);
        p.observe(&snap(1, &[(1, 4, 400, 200), (2, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        ctl.advance_tick();
        p.observe(&snap(2, &[(1, 6, 400, 200)]), false, 0);
        pump(&mut p, &ctl);

        let bytes = ctl.journal_bytes().expect("journal on");
        let before = ctl.cluster_capacity();

        // Failover: a replacement controller restores the journal.
        let ctl2 = FleetController::restore_from(&bytes, 2, FleetPolicy::default());
        let r = ctl2.cluster_capacity();
        assert_eq!(
            (r.cpu, r.mem, r.containers),
            (before.cpu, before.mem, before.containers)
        );
        assert_eq!(r.partitioned, 1, "restored hosts start last-good");
        let (t, degraded) = ctl2.tenant_rollup(9);
        assert_eq!(t.cpu, 6, "tenant survives failover");
        assert!(degraded);

        // The periphery's next delta is rejected (unknown seq) and the
        // demanded FULL snapshot heals the host to Fresh.
        p.observe(&snap(3, &[(1, 8, 400, 200)]), false, 0);
        pump(&mut p, &ctl2);
        p.observe(&snap(4, &[(1, 8, 400, 200), (2, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl2);
        let r = ctl2.cluster_capacity();
        assert_eq!(r.partitioned, 0, "resync heals the restored host");
        assert_eq!(r.cpu, 10);
    }

    #[test]
    fn truncated_journal_restores_a_prefix() {
        let mut ctl = FleetController::new(2, FleetPolicy::default());
        ctl.enable_journal(1);
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        let bytes = ctl.journal_bytes().expect("journal on");
        // Tear the tail mid-record; restore must still see the earlier prefix.
        let torn = &bytes[..bytes.len() - 3];
        let ctl2 = FleetController::restore_from(torn, 2, FleetPolicy::default());
        assert!(ctl2.host_count() <= 1);
    }

    #[test]
    fn exposition_names_the_headline_counters() {
        let ctl = FleetController::new(2, FleetPolicy::default());
        ctl.handle_frame(&crate::protocol::encode_query(&Query {
            kind: QUERY_CLUSTER,
            arg: 0,
        }));
        let text = ctl.prometheus_exposition();
        for name in [
            "arv_fleet_deltas_ingested_total",
            "arv_fleet_deltas_gap_resyncs_total",
            "arv_fleet_hosts_partitioned_total",
            "arv_fleet_rollup_queries_total",
        ] {
            assert!(text.contains(name), "missing {name} in exposition");
        }
    }

    #[test]
    fn malformed_frames_never_panic_and_are_counted() {
        let ctl = FleetController::new(2, FleetPolicy::default());
        assert!(ctl.handle_frame(&[]).is_none());
        assert!(ctl.handle_frame(&[0xFF, 1, 2, 3]).is_none());
        let ack = encode_ack(&Ack {
            host: 1,
            expected_seq: 0,
            resync: false,
            policy: None,
        });
        assert!(ctl.handle_frame(&ack).is_none(), "ACK is not a request");
        assert_eq!(ctl.metrics().snapshot().malformed_frames, 3);
    }
}
