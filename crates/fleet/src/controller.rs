//! The fleet core: a sharded host×container index answering
//! cluster-wide queries over every periphery's streamed view state.
//!
//! The controller ingests [`crate::protocol`] frames (transport-agnostic
//! — the wire server and the in-process campaign both call
//! [`FleetController::handle_frame`]), maintains per-shard running
//! totals so capacity rollups are O(shards) rather than O(containers),
//! and journals every accepted delta through `arv-persist` so a crashed
//! controller warm-restarts prefix-consistently and is caught up by
//! periphery resyncs.
//!
//! # Replication and leadership
//!
//! A controller can run **replicated**: the primary streams every
//! accepted journal record to hot standbys over `REPL` frames
//! ([`FleetController::take_repl_frames`]); a standby applies them into
//! a *live* shadow index ([`FleetController::handle_frame`] on the
//! REPL opcode) so promotion costs no replay. Leadership is governed by
//! a shared [`SharedLease`] with monotone epochs: the holder renews on
//! every tick (same epoch); a standby acquires only after expiry (epoch
//! bumped), then marks every host `needs_resync` + partitioned —
//! last-good rollups stay servable while FULL snapshots converge the
//! index. Every ACK and ROLLUP is stamped with the sender's epoch;
//! anything stamped lower than the highest epoch a receiver has seen is
//! **fenced** (counted, never applied), so a deposed primary cannot
//! corrupt state no matter how long it keeps talking.
//!
//! # Sequence and staleness rules
//!
//! Each host's DELTA frames carry a dense sequence number. The
//! controller applies in-order frames incrementally; any gap flips the
//! host into `needs_resync` and every ACK requests a FULL snapshot
//! until one arrives (mirroring the single-host watchdog's gap →
//! resync rule). A host with no accepted delta for more than the
//! policy's staleness budget of controller ticks is flagged
//! *partitioned*: its last-good contribution stays in every rollup,
//! but the rollup is flagged degraded — the cluster-level analogue of
//! the staleness fallback.

use arv_persist::lease::{Lease, LeaseError, LeaseFile};
use arv_persist::{
    decode_records, encode_record, restore, Journal, Record, Snapshot, Store, ViewState,
};
use arv_telemetry::{FlightRecorder, FlightTrigger, LagHistogram, PipelineEvent, PromText, Tracer};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::protocol::{
    decode_frame, encode_ack, encode_policy, encode_repl, encode_rollup, Ack, ClusterRollup, Delta,
    DeltaEntry, FleetPolicy, Frame, HostSummary, PressurePoint, Query, Repl, Rollup, RollupFrame,
    SpanStamp, TenantRollup, MAX_FLEET_FRAME, QUERY_CLUSTER, QUERY_FLIGHT, QUERY_STATS,
    QUERY_TENANT, QUERY_TOPK, REPL_PEER,
};

/// A lease store shared between contending controllers — the
/// simulation's stand-in for a lease file on shared storage.
#[derive(Debug, Clone, Default)]
pub struct SharedLease(Arc<Mutex<LeaseFile>>);

impl SharedLease {
    /// An empty (never-granted) shared lease.
    pub fn new() -> SharedLease {
        SharedLease::default()
    }

    /// Rehydrate from persisted bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> SharedLease {
        SharedLease(Arc::new(Mutex::new(LeaseFile::from_bytes(bytes))))
    }

    /// A shared lease over a caller-supplied storage backend (e.g. a
    /// seeded `FaultyStore` in chaos campaigns).
    pub fn with_store(store: Box<dyn Store>) -> SharedLease {
        SharedLease(Arc::new(Mutex::new(LeaseFile::with_store(store))))
    }

    /// Try to acquire for `holder` (see [`LeaseFile::try_acquire`]).
    pub fn try_acquire(&self, holder: u32, now: u64, ttl: u64) -> Result<Lease, LeaseError> {
        lock(&self.0).try_acquire(holder, now, ttl)
    }

    /// Strictly renew an already-held lease (see [`LeaseFile::renew`]):
    /// never takes over, so a holder that cannot persist the renewal
    /// learns it must step down.
    pub fn renew(&self, holder: u32, now: u64, ttl: u64) -> Result<Lease, LeaseError> {
        lock(&self.0).renew(holder, now, ttl)
    }

    /// Advance the store's fault clock (drives `FaultyStore` windows).
    pub fn set_tick(&self, tick: u64) {
        lock(&self.0).set_tick(tick);
    }

    /// The current lease, if intact.
    pub fn current(&self) -> Option<Lease> {
        lock(&self.0).current()
    }

    /// The raw store bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        lock(&self.0).as_bytes().to_vec()
    }
}

/// Mask for the host-tick bits of a journaled `last_tick` (the tenant
/// rides the top 16 bits — see [`pack_id`]).
const TICK_MASK: u64 = (1 << 48) - 1;

/// Pack a (host, container) pair into a journalable `ViewState` id.
/// Both must fit 16 bits — the fleet model caps at 65 536 hosts and
/// 65 536 containers per host, far above the paper's scale.
fn pack_id(host: u32, container: u32) -> Option<u32> {
    if host <= 0xFFFF && container <= 0xFFFF {
        Some((host << 16) | container)
    } else {
        None
    }
}

/// Lock-free counters for the controller. The four headline counters
/// (`deltas_ingested`, `deltas_gap_resyncs`, `hosts_partitioned`,
/// `rollup_queries`) are the ones the Prometheus exposition leads with.
#[derive(Debug, Default)]
pub struct FleetMetrics {
    /// DELTA frames accepted and applied.
    pub deltas_ingested: AtomicU64,
    /// Delta entries applied across all accepted frames.
    pub delta_entries: AtomicU64,
    /// Sequence gaps detected (each flips a host into resync).
    pub deltas_gap_resyncs: AtomicU64,
    /// FULL snapshots accepted.
    pub full_syncs: AtomicU64,
    /// Transitions of a host into the partitioned state.
    pub hosts_partitioned: AtomicU64,
    /// Rollup queries answered (cluster, tenant, top-k, stats).
    pub rollup_queries: AtomicU64,
    /// Frames that failed to decode (connection-fatal for the sender).
    pub malformed_frames: AtomicU64,
    /// Policy blocks pushed down in ACKs.
    pub policy_pushes: AtomicU64,
    /// HELLO frames answered.
    pub hellos: AtomicU64,
    /// Standby→primary promotions (lease takeovers).
    pub promotions: AtomicU64,
    /// Primary→standby demotions (lost lease / saw a higher epoch).
    pub demotions: AtomicU64,
    /// Journal records streamed out in REPL frames (primary side).
    pub repl_records_streamed: AtomicU64,
    /// Journal records applied into the shadow index (standby side).
    pub repl_records_applied: AtomicU64,
    /// REPL frames fenced for carrying a stale controller epoch.
    pub repl_fenced: AtomicU64,
    /// Full checkpoints queued because a standby lost REPL sequence.
    pub repl_gap_snapshots: AtomicU64,
    /// REPL frames whose record stream was torn or corrupt (the valid
    /// prefix was applied; a checkpoint was demanded).
    pub repl_truncated: AtomicU64,
    /// HELLO/DELTA frames rejected because this controller does not
    /// hold the lease.
    pub not_leader_rejects: AtomicU64,
    /// Journal/lease store errors absorbed by this controller (its own
    /// durability ladder, not the per-host summaries).
    pub journal_io_errors: AtomicU64,
}

/// A point-in-time copy of [`FleetMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetMetricsSnapshot {
    /// DELTA frames accepted and applied.
    pub deltas_ingested: u64,
    /// Delta entries applied across all accepted frames.
    pub delta_entries: u64,
    /// Sequence gaps detected.
    pub deltas_gap_resyncs: u64,
    /// FULL snapshots accepted.
    pub full_syncs: u64,
    /// Transitions of a host into the partitioned state.
    pub hosts_partitioned: u64,
    /// Rollup queries answered.
    pub rollup_queries: u64,
    /// Frames that failed to decode.
    pub malformed_frames: u64,
    /// Policy blocks pushed down in ACKs.
    pub policy_pushes: u64,
    /// HELLO frames answered.
    pub hellos: u64,
    /// Standby→primary promotions.
    pub promotions: u64,
    /// Primary→standby demotions.
    pub demotions: u64,
    /// Journal records streamed out in REPL frames.
    pub repl_records_streamed: u64,
    /// Journal records applied into the shadow index.
    pub repl_records_applied: u64,
    /// REPL frames fenced for carrying a stale epoch.
    pub repl_fenced: u64,
    /// Full checkpoints queued after a standby REPL gap.
    pub repl_gap_snapshots: u64,
    /// REPL frames with a torn or corrupt record stream.
    pub repl_truncated: u64,
    /// Frames rejected for lack of the lease.
    pub not_leader_rejects: u64,
    /// Journal/lease store errors absorbed by this controller.
    pub journal_io_errors: u64,
}

impl FleetMetrics {
    /// Copy the counters.
    pub fn snapshot(&self) -> FleetMetricsSnapshot {
        FleetMetricsSnapshot {
            deltas_ingested: self.deltas_ingested.load(Ordering::Relaxed),
            delta_entries: self.delta_entries.load(Ordering::Relaxed),
            deltas_gap_resyncs: self.deltas_gap_resyncs.load(Ordering::Relaxed),
            full_syncs: self.full_syncs.load(Ordering::Relaxed),
            hosts_partitioned: self.hosts_partitioned.load(Ordering::Relaxed),
            rollup_queries: self.rollup_queries.load(Ordering::Relaxed),
            malformed_frames: self.malformed_frames.load(Ordering::Relaxed),
            policy_pushes: self.policy_pushes.load(Ordering::Relaxed),
            hellos: self.hellos.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            repl_records_streamed: self.repl_records_streamed.load(Ordering::Relaxed),
            repl_records_applied: self.repl_records_applied.load(Ordering::Relaxed),
            repl_fenced: self.repl_fenced.load(Ordering::Relaxed),
            repl_gap_snapshots: self.repl_gap_snapshots.load(Ordering::Relaxed),
            repl_truncated: self.repl_truncated.load(Ordering::Relaxed),
            not_leader_rejects: self.not_leader_rejects.load(Ordering::Relaxed),
            journal_io_errors: self.journal_io_errors.load(Ordering::Relaxed),
        }
    }
}

/// Causal events retained per host for [`FleetController::explain_host`].
pub const EXPLAIN_EVENTS: usize = 16;

/// What happened to a host, as recorded in its causal event ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostEventKind {
    /// The host introduced itself (attach or reconnect).
    Hello,
    /// An in-order incremental delta was applied.
    DeltaApplied,
    /// A FULL snapshot replaced the host's state.
    FullApplied,
    /// A sequence gap flipped the host into resync.
    GapResync,
    /// The host fell silent past the staleness budget.
    Partitioned,
    /// A promoted standby marked the host last-good pending resync.
    Promoted,
    /// The host reported its journal lost durability.
    DurabilityLost,
    /// The host reported its journal healed back to durable.
    DurabilityRestored,
}

impl HostEventKind {
    /// Short label used in rendered explanations.
    pub fn label(self) -> &'static str {
        match self {
            HostEventKind::Hello => "hello",
            HostEventKind::DeltaApplied => "delta-applied",
            HostEventKind::FullApplied => "full-applied",
            HostEventKind::GapResync => "gap-resync",
            HostEventKind::Partitioned => "partitioned",
            HostEventKind::Promoted => "promoted",
            HostEventKind::DurabilityLost => "durability-lost",
            HostEventKind::DurabilityRestored => "durability-restored",
        }
    }
}

/// One entry of a host's causal event ring: what happened, when (in
/// controller ticks), and the span coordinates it happened at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostCausalEvent {
    /// Controller tick the event was recorded at.
    pub tick: u64,
    /// What happened.
    pub kind: HostEventKind,
    /// The delta sequence involved (the frame's for applies/gaps, the
    /// expected one for hello/partition/promotion events).
    pub seq: u64,
    /// The host origin tick in force when the event was recorded.
    pub origin_tick: u64,
}

/// The answer to "why is host H stale/partitioned/fenced": the host's
/// current span state plus its last [`EXPLAIN_EVENTS`] causal events.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetExplain {
    /// The host being explained.
    pub host: u32,
    /// Host-reported health byte of the last accepted delta.
    pub health: u8,
    /// Whether the host last reported its journal durability lost.
    pub durability_lost: bool,
    /// Whether the host is currently flagged partitioned.
    pub partitioned: bool,
    /// Whether ACKs are demanding a FULL snapshot.
    pub needs_resync: bool,
    /// Next DELTA sequence accepted in order.
    pub expected_seq: u64,
    /// Origin tick of the newest accepted delta (span start).
    pub origin_tick: u64,
    /// Host flush tick of the newest accepted delta.
    pub flush_tick: u64,
    /// Controller tick the newest delta was ingested at.
    pub ingest_tick: u64,
    /// Newest periphery trace sequence ingested.
    pub trace_seq: u64,
    /// End-to-end freshness lag right now, in controller ticks
    /// (`now − origin_tick`).
    pub freshness_lag: u64,
    /// Containers currently tracked for the host.
    pub containers: u64,
    /// The periphery's piggybacked counter summary.
    pub summary: HostSummary,
    /// End-to-end lag distribution across every accepted delta.
    pub waterfall: LagHistogram,
    /// The last causal events, oldest first.
    pub events: Vec<HostCausalEvent>,
}

impl FleetExplain {
    /// Render the explanation as human-readable lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "host {}: health={} durability_lost={} partitioned={} needs_resync={} lag={} ticks",
            self.host,
            self.health,
            self.durability_lost,
            self.partitioned,
            self.needs_resync,
            self.freshness_lag
        );
        let _ = writeln!(
            out,
            "  span: origin_tick={} flush_tick={} ingest_tick={} trace_seq={} expected_seq={}",
            self.origin_tick, self.flush_tick, self.ingest_tick, self.trace_seq, self.expected_seq
        );
        let _ = writeln!(
            out,
            "  waterfall: n={} sum={} max={} containers={}",
            self.waterfall.total(),
            self.waterfall.sum(),
            self.waterfall.max_lag(),
            self.containers
        );
        for e in &self.events {
            let _ = writeln!(
                out,
                "  [tick {:>4}] {} seq={} origin={}",
                e.tick,
                e.kind.label(),
                e.seq,
                e.origin_tick
            );
        }
        out
    }
}

/// One tracked host.
#[derive(Debug, Default)]
struct HostEntry {
    /// Next DELTA sequence accepted in order.
    expected_seq: u64,
    /// Controller tick of the last accepted delta (staleness clock).
    last_delta_tick: u64,
    /// Host-side update-timer tick of the last accepted delta.
    host_tick: u64,
    /// Host-reported health byte of the last accepted delta.
    health: u8,
    /// Host-reported durability flag of the last accepted delta.
    durability_lost: bool,
    /// Currently flagged partitioned (contribution served last-good).
    partitioned: bool,
    /// A gap was detected; ACKs demand a FULL snapshot until one lands.
    needs_resync: bool,
    /// Origin tick of the newest accepted delta (causal span start).
    origin_tick: u64,
    /// Newest periphery trace sequence ingested.
    trace_seq: u64,
    /// The periphery's piggybacked counter summary, as last seen.
    summary: HostSummary,
    /// End-to-end (origin tick → ingest) lag histogram.
    waterfall: LagHistogram,
    /// Recent causal events, oldest first, capped at [`EXPLAIN_EVENTS`].
    events: VecDeque<HostCausalEvent>,
    /// Live container states.
    containers: HashMap<u32, DeltaEntry>,
}

impl HostEntry {
    fn push_event(&mut self, tick: u64, kind: HostEventKind, seq: u64) {
        self.events.push_back(HostCausalEvent {
            tick,
            kind,
            seq,
            origin_tick: self.origin_tick,
        });
        while self.events.len() > EXPLAIN_EVENTS {
            self.events.pop_front();
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Totals {
    cpu: u64,
    mem: u64,
    avail: u64,
    containers: u64,
}

impl Totals {
    fn add(&mut self, e: &DeltaEntry) {
        self.cpu += u64::from(e.e_cpu);
        self.mem += e.e_mem;
        self.avail += e.e_avail;
        self.containers += 1;
    }

    fn sub(&mut self, e: &DeltaEntry) {
        self.cpu -= u64::from(e.e_cpu);
        self.mem -= e.e_mem;
        self.avail -= e.e_avail;
        self.containers -= 1;
    }
}

/// One shard: a slice of the host index plus its running totals.
#[derive(Debug, Default)]
struct Shard {
    hosts: HashMap<u32, HostEntry>,
    totals: Totals,
    tenants: HashMap<u32, Totals>,
}

impl Shard {
    fn upsert(&mut self, host: &mut HostEntry, e: DeltaEntry) {
        if let Some(old) = host.containers.insert(e.id, e) {
            self.totals.sub(&old);
            if let Some(t) = self.tenants.get_mut(&old.tenant) {
                t.sub(&old);
            }
        }
        self.totals.add(&e);
        self.tenants.entry(e.tenant).or_default().add(&e);
    }

    fn remove(&mut self, host: &mut HostEntry, id: u32) -> bool {
        match host.containers.remove(&id) {
            Some(old) => {
                self.totals.sub(&old);
                if let Some(t) = self.tenants.get_mut(&old.tenant) {
                    t.sub(&old);
                }
                true
            }
            None => false,
        }
    }
}

/// Journal plumbing: the append-only log plus its checkpoint cadence
/// and the controller's own durability-ladder flag.
#[derive(Debug)]
struct JournalState {
    journal: Journal,
    every: u64,
    last_checkpoint: u64,
    /// A store error was absorbed; the flag heals on the next
    /// checkpoint that fully reaches the store.
    degraded: bool,
}

/// Lease plumbing: the shared store this controller contends on.
#[derive(Debug)]
struct LeaseState {
    store: SharedLease,
    holder: u32,
    ttl: u64,
    /// Fault hook: a stalled controller cannot reach the lease store
    /// (renewals and acquisitions silently fail).
    stalled: bool,
}

/// Replication plumbing, used on both sides: the primary's record
/// outbox and the standby's apply cursor.
#[derive(Debug, Default)]
struct ReplState {
    /// Primary: CRC-framed record bytes not yet shipped.
    outbox: Vec<Vec<u8>>,
    /// Primary: sequence of the next REPL frame to send.
    next_seq: u64,
    /// Standby: next REPL sequence accepted in order.
    expected_seq: u64,
    /// Standby: lost sequence — only a checkpoint-led frame realigns.
    need_snapshot: bool,
    /// Primary: a standby demanded a full checkpoint.
    send_snapshot: bool,
    /// Standby: the primary's tick stamped on the last applied REPL
    /// frame — how fresh the shadow index is.
    last_as_of: u64,
}

/// The central aggregator of the fleet control plane.
#[derive(Debug)]
pub struct FleetController {
    shards: Box<[Mutex<Shard>]>,
    mask: u64,
    policy: Mutex<FleetPolicy>,
    tick: AtomicU64,
    metrics: FleetMetrics,
    journal: Mutex<Option<JournalState>>,
    /// Monotone controller epoch stamped on every ACK and ROLLUP.
    /// Lease-less controllers stay at epoch 0 (single-controller
    /// deployments predating replication).
    ctl_epoch: AtomicU64,
    /// Whether this controller currently believes it leads. Always true
    /// without an attached lease.
    leader: AtomicBool,
    lease: Mutex<Option<LeaseState>>,
    repl: Mutex<Option<ReplState>>,
    tracer: Tracer,
    flight: FlightRecorder,
}

impl FleetController {
    /// A controller with `shards` index shards (rounded up to a power of
    /// two) under `policy`.
    pub fn new(shards: usize, policy: FleetPolicy) -> FleetController {
        let n = shards.max(1).next_power_of_two();
        FleetController {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            mask: n as u64 - 1,
            policy: Mutex::new(policy),
            tick: AtomicU64::new(0),
            metrics: FleetMetrics::default(),
            journal: Mutex::new(None),
            ctl_epoch: AtomicU64::new(0),
            leader: AtomicBool::new(true),
            lease: Mutex::new(None),
            repl: Mutex::new(None),
            tracer: Tracer::disabled(),
            flight: FlightRecorder::disabled(),
        }
    }

    /// Route fleet pipeline events (partition flagged, gap resync,
    /// failover) into a trace ring. Call before sharing the controller.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attach a flight recorder: anomaly triggers (gap resync, fence,
    /// promotion, demotion, partition) freeze the tracer's recent
    /// events plus a counter snapshot into retrievable dumps. Call
    /// before sharing the controller.
    pub fn set_flight_recorder(&mut self, flight: FlightRecorder) {
        self.flight = flight;
    }

    /// The attached flight recorder (disabled unless
    /// [`set_flight_recorder`](Self::set_flight_recorder) was called).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Freeze a flight dump around an anomaly: the trace ring as it
    /// stands plus the headline counters. No-op when disabled.
    fn record_flight(&self, now: u64, trigger: FlightTrigger) {
        if !self.flight.is_enabled() {
            return;
        }
        let m = self.metrics.snapshot();
        self.flight.record(
            now,
            trigger,
            &self.tracer,
            &[
                ("deltas_ingested", m.deltas_ingested),
                ("deltas_gap_resyncs", m.deltas_gap_resyncs),
                ("hosts_partitioned", m.hosts_partitioned),
                ("full_syncs", m.full_syncs),
                ("promotions", m.promotions),
                ("demotions", m.demotions),
                ("repl_fenced", m.repl_fenced),
                ("ctl_epoch", self.ctl_epoch()),
            ],
        );
    }

    /// The controller's staleness clock (advanced by the driver once per
    /// aggregation period).
    pub fn now_tick(&self) -> u64 {
        self.tick.load(Ordering::Acquire)
    }

    /// The controller epoch stamped on every ACK and ROLLUP.
    pub fn ctl_epoch(&self) -> u64 {
        self.ctl_epoch.load(Ordering::Acquire)
    }

    /// Whether this controller currently believes it holds the lease.
    pub fn is_leader(&self) -> bool {
        self.leader.load(Ordering::Acquire)
    }

    /// The policy currently pushed down to peripheries.
    pub fn policy(&self) -> FleetPolicy {
        *lock(&self.policy)
    }

    /// Install a new policy (staleness budget, batch and burst limits).
    /// The epoch is bumped internally; every periphery adopts it via the
    /// policy block attached to its next ACK.
    pub fn set_policy(&mut self, staleness_budget: u64, max_batch: u32, rate_burst: u32) {
        let mut p = lock(&self.policy);
        p.epoch += 1;
        p.staleness_budget = staleness_budget;
        p.max_batch = max_batch;
        p.rate_burst = rate_burst;
    }

    /// Counters.
    pub fn metrics(&self) -> &FleetMetrics {
        &self.metrics
    }

    /// Hosts currently tracked.
    pub fn host_count(&self) -> usize {
        self.shards.iter().map(|s| lock(s).hosts.len()).sum()
    }

    /// Containers currently tracked.
    pub fn container_count(&self) -> u64 {
        self.shards.iter().map(|s| lock(s).totals.containers).sum()
    }

    fn shard_for(&self, host: u32) -> &Mutex<Shard> {
        let h = u64::from(host).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h & self.mask) as usize]
    }

    /// Advance the controller's staleness clock one aggregation period:
    /// maintain the lease (renew as holder, try to take over as
    /// standby), flag hosts silent past the staleness budget as
    /// partitioned, and take a journal checkpoint when the cadence is
    /// due.
    pub fn advance_tick(&self) {
        let now = self.tick.fetch_add(1, Ordering::AcqRel) + 1;
        self.maintain_lease(now);
        let budget = lock(&self.policy).staleness_budget;
        let mut newly_partitioned = false;
        for shard in self.shards.iter() {
            let mut s = lock(shard);
            for host in s.hosts.values_mut() {
                if !host.partitioned && now.saturating_sub(host.last_delta_tick) > budget {
                    host.partitioned = true;
                    let seq = host.expected_seq;
                    host.push_event(now, HostEventKind::Partitioned, seq);
                    newly_partitioned = true;
                    self.metrics
                        .hosts_partitioned
                        .fetch_add(1, Ordering::Relaxed);
                    self.tracer
                        .emit_pipeline(now, None, PipelineEvent::FleetPartitioned);
                }
            }
        }
        if newly_partitioned {
            // One dump per tick no matter how many hosts flipped: the
            // dump's counters already say how many went silent.
            self.record_flight(now, FlightTrigger::Partition);
        }
        self.journal_tick(now);
    }

    /// The controller's own durability ladder, run once per tick:
    /// group-commit the journal (sync), take the cadence checkpoint,
    /// and while degraded re-checkpoint every tick so the flag heals
    /// the moment the store recovers.
    fn journal_tick(&self, now: u64) {
        let mut journal = lock(&self.journal);
        let Some(js) = journal.as_mut() else {
            return;
        };
        js.journal.set_tick(now);
        let mut errored = false;
        if js.journal.sync().is_err() {
            errored = true;
        }
        if now.saturating_sub(js.last_checkpoint) >= js.every || js.degraded {
            let snap = self.index_snapshot(now);
            match js.journal.checkpoint(&snap) {
                Ok(()) => {
                    js.last_checkpoint = now;
                    if js.degraded && !errored {
                        js.degraded = false;
                        drop(journal);
                        self.tracer
                            .emit_pipeline(now, None, PipelineEvent::DurabilityRestored);
                        self.record_flight(now, FlightTrigger::DurabilityRestored);
                        return;
                    }
                }
                Err(_) => errored = true,
            }
        }
        if errored {
            self.metrics
                .journal_io_errors
                .fetch_add(1, Ordering::Relaxed);
            let flip = !js.degraded;
            js.degraded = true;
            drop(journal);
            if flip {
                self.tracer
                    .emit_pipeline(now, None, PipelineEvent::DurabilityLost);
                self.record_flight(now, FlightTrigger::DurabilityLost);
            }
        }
    }

    // -----------------------------------------------------------------
    // Leadership
    // -----------------------------------------------------------------

    /// Contend on a shared lease as `holder`, renewing to `now + ttl`
    /// each tick. The first acquisition attempt happens immediately:
    /// win and this controller leads at the lease's epoch; lose and it
    /// becomes a standby that keeps trying every
    /// [`advance_tick`](Self::advance_tick) and promotes only after the
    /// holder's lease expires.
    pub fn attach_lease(&self, store: SharedLease, holder: u32, ttl: u64) {
        let ttl = ttl.max(1);
        let now = self.now_tick();
        let won = store.try_acquire(holder, now, ttl);
        *lock(&self.lease) = Some(LeaseState {
            store,
            holder,
            ttl,
            stalled: false,
        });
        match won {
            Ok(l) => {
                self.ctl_epoch.store(l.epoch, Ordering::Release);
                self.leader.store(true, Ordering::Release);
            }
            Err(e) => {
                if matches!(e, LeaseError::Store(_)) {
                    self.metrics
                        .journal_io_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
                self.leader.store(false, Ordering::Release);
            }
        }
    }

    /// Fault hook: while stalled, this controller cannot reach the
    /// lease store — renewals and takeover attempts silently fail, so a
    /// stalled primary's lease expires under it.
    pub fn set_lease_stalled(&self, stalled: bool) {
        if let Some(ls) = lock(&self.lease).as_mut() {
            ls.stalled = stalled;
        }
    }

    fn maintain_lease(&self, now: u64) {
        let mut lease = lock(&self.lease);
        let Some(ls) = lease.as_mut() else {
            return;
        };
        ls.store.set_tick(now);
        if ls.stalled {
            return;
        }
        let was_leader = self.is_leader();
        // A holder strictly *renews* — a renewal that cannot be
        // persisted (or a lease that lapsed under us) means step down
        // before the TTL rather than risk split-brain on a lease nobody
        // else can read. Only a standby contends via try_acquire.
        let attempt = if was_leader {
            ls.store.renew(ls.holder, now, ls.ttl)
        } else {
            ls.store.try_acquire(ls.holder, now, ls.ttl)
        };
        match attempt {
            Ok(l) => {
                self.ctl_epoch.store(l.epoch, Ordering::Release);
                self.leader.store(true, Ordering::Release);
                drop(lease);
                if !was_leader {
                    self.promote(now);
                }
            }
            Err(e) => {
                self.leader.store(false, Ordering::Release);
                drop(lease);
                if let LeaseError::Store(_) = e {
                    // The lease store itself refused the write: surface
                    // the why on the trace ring and the flight recorder
                    // — this is a durability event, not a lost race.
                    self.metrics
                        .journal_io_errors
                        .fetch_add(1, Ordering::Relaxed);
                    self.tracer
                        .emit_pipeline(now, None, PipelineEvent::DurabilityLost);
                    if was_leader {
                        self.record_flight(now, FlightTrigger::DurabilityLost);
                    }
                }
                if was_leader {
                    self.metrics.demotions.fetch_add(1, Ordering::Relaxed);
                    self.record_flight(now, FlightTrigger::Demotion);
                }
            }
        }
    }

    /// A standby just took over the lease: every replicated host may
    /// lag the dead primary's last accepted frames, so all hosts start
    /// `needs_resync` + partitioned — rollups serve their last-good
    /// contribution (degraded) while FULL snapshots converge them back
    /// to Fresh.
    fn promote(&self, now: u64) {
        let mut flagged = 0u64;
        for shard in self.shards.iter() {
            let mut s = lock(shard);
            for host in s.hosts.values_mut() {
                host.needs_resync = true;
                if !host.partitioned {
                    host.partitioned = true;
                    flagged += 1;
                }
                host.last_delta_tick = now;
                let seq = host.expected_seq;
                host.push_event(now, HostEventKind::Promoted, seq);
            }
        }
        self.metrics
            .hosts_partitioned
            .fetch_add(flagged, Ordering::Relaxed);
        self.metrics.promotions.fetch_add(1, Ordering::Relaxed);
        self.tracer
            .emit_pipeline(now, None, PipelineEvent::FleetPromoted);
        self.record_flight(now, FlightTrigger::Promotion);
    }

    /// Handle one decoded-or-not request frame; `None` means the frame
    /// was malformed (or not a request) and the connection should drop.
    /// Never panics, for any input bytes.
    pub fn handle_frame(&self, payload: &[u8]) -> Option<Vec<u8>> {
        match decode_frame(payload) {
            Some(Frame::Hello(h)) => Some(self.handle_hello(h.host, h.epoch, h.tick)),
            Some(Frame::Delta(d)) => Some(self.handle_delta(d)),
            Some(Frame::Query(q)) => Some(self.handle_query(q)),
            Some(Frame::Policy(p)) => self.handle_policy_push(p),
            Some(Frame::Repl(r)) => Some(self.handle_repl(&r)),
            Some(Frame::Ack(_)) | Some(Frame::Rollup(_)) | None => {
                self.metrics
                    .malformed_frames
                    .fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn ack_for(&self, host: u32, expected_seq: u64, resync: bool, periphery_epoch: u64) -> Vec<u8> {
        let policy = *lock(&self.policy);
        let attach = policy.epoch > periphery_epoch;
        if attach {
            self.metrics.policy_pushes.fetch_add(1, Ordering::Relaxed);
        }
        encode_ack(&Ack {
            host,
            expected_seq,
            ctl_epoch: self.ctl_epoch(),
            resync,
            not_leader: false,
            policy: attach.then_some(policy),
        })
    }

    /// The ACK a non-leader sends back for HELLO/DELTA: nothing was
    /// applied; the periphery should walk its controller list.
    fn not_leader_ack(&self, host: u32, expected_seq: u64) -> Vec<u8> {
        self.metrics
            .not_leader_rejects
            .fetch_add(1, Ordering::Relaxed);
        encode_ack(&Ack {
            host,
            expected_seq,
            ctl_epoch: self.ctl_epoch(),
            resync: false,
            not_leader: true,
            policy: None,
        })
    }

    fn handle_hello(&self, host: u32, epoch: u64, host_tick: u64) -> Vec<u8> {
        self.metrics.hellos.fetch_add(1, Ordering::Relaxed);
        if !self.is_leader() {
            return self.not_leader_ack(host, 0);
        }
        let now = self.now_tick();
        let mut s = lock(self.shard_for(host));
        let entry = s.hosts.entry(host).or_default();
        entry.last_delta_tick = now;
        // Seed the span origin so a hello-only host doesn't report a
        // freshness lag measured from tick zero.
        entry.origin_tick = entry.origin_tick.max(host_tick);
        let seq = entry.expected_seq;
        entry.push_event(now, HostEventKind::Hello, seq);
        let (expected, resync) = (entry.expected_seq, entry.needs_resync);
        drop(s);
        self.ack_for(host, expected, resync, epoch)
    }

    /// An admin-side policy push: adopt a strictly newer policy and echo
    /// the one now in force.
    fn handle_policy_push(&self, p: FleetPolicy) -> Option<Vec<u8>> {
        let mut cur = lock(&self.policy);
        if p.epoch > cur.epoch {
            *cur = p;
        }
        let now = *cur;
        drop(cur);
        Some(encode_policy(&now))
    }

    fn handle_delta(&self, d: Delta) -> Vec<u8> {
        if !self.is_leader() {
            return self.not_leader_ack(d.host, d.seq);
        }
        let now = self.now_tick();
        let host_id = d.host;
        let epoch = d.epoch;
        let mut s = lock(self.shard_for(host_id));
        let shard = &mut *s;
        // Take the host out of the map so shard totals and host state
        // can be updated together without aliasing the shard borrow.
        let mut host = shard.hosts.remove(&host_id).unwrap_or_default();

        let accept = d.full || (d.seq == host.expected_seq && !host.needs_resync);
        if !accept {
            // A gap (or an unknown mid-stream host): drop the frame's
            // contents — applying out-of-order deltas could double-count
            // — and demand a FULL snapshot, mirroring the watchdog.
            let gap_detected = !host.needs_resync;
            if gap_detected {
                host.needs_resync = true;
                host.push_event(now, HostEventKind::GapResync, d.seq);
                self.metrics
                    .deltas_gap_resyncs
                    .fetch_add(1, Ordering::Relaxed);
                self.tracer
                    .emit_pipeline(now, None, PipelineEvent::FleetGapResync);
            }
            let expected = host.expected_seq;
            shard.hosts.insert(host_id, host);
            drop(s);
            if gap_detected {
                self.record_flight(now, FlightTrigger::GapResync);
            }
            return self.ack_for(host_id, expected, true, epoch);
        }

        let mut journaled_removals: Vec<u32> = Vec::new();
        if d.full {
            // Replace the host's state wholesale; containers absent from
            // the snapshot are removals the journal must also see.
            let stale: Vec<u32> = host
                .containers
                .keys()
                .filter(|id| !d.entries.iter().any(|e| e.id == **id))
                .copied()
                .collect();
            for id in stale {
                shard.remove(&mut host, id);
                journaled_removals.push(id);
            }
            host.needs_resync = false;
            host.expected_seq = d.seq + 1;
            self.metrics.full_syncs.fetch_add(1, Ordering::Relaxed);
        } else {
            host.expected_seq += 1;
        }
        for id in &d.removed {
            if shard.remove(&mut host, *id) {
                journaled_removals.push(*id);
            }
        }
        for e in &d.entries {
            shard.upsert(&mut host, *e);
        }
        host.last_delta_tick = now;
        host.host_tick = d.tick;
        host.health = d.health;
        // Track the host's durability ladder: each edge is a causal
        // event, a trace-ring entry, and (for losses) a flight dump.
        let durability_flip = d.durability_lost != host.durability_lost;
        if durability_flip {
            host.durability_lost = d.durability_lost;
            host.push_event(
                now,
                if d.durability_lost {
                    HostEventKind::DurabilityLost
                } else {
                    HostEventKind::DurabilityRestored
                },
                d.seq,
            );
        }
        host.partitioned = false;
        // Fold the causal span in: where this data originated, how far
        // the periphery's trace has advanced, and the end-to-end lag
        // (origin tick → ingest) for the waterfall.
        host.origin_tick = host.origin_tick.max(d.origin_tick);
        host.trace_seq = host.trace_seq.max(d.trace_seq);
        host.summary = d.summary;
        host.waterfall.observe(now.saturating_sub(d.origin_tick));
        host.push_event(
            now,
            if d.full {
                HostEventKind::FullApplied
            } else {
                HostEventKind::DeltaApplied
            },
            d.seq,
        );
        let expected = host.expected_seq;
        shard.hosts.insert(host_id, host);
        drop(s);

        if durability_flip {
            self.tracer.emit_pipeline(
                now,
                None,
                if d.durability_lost {
                    PipelineEvent::DurabilityLost
                } else {
                    PipelineEvent::DurabilityRestored
                },
            );
            self.record_flight(
                now,
                if d.durability_lost {
                    FlightTrigger::DurabilityLost
                } else {
                    FlightTrigger::DurabilityRestored
                },
            );
        }

        self.metrics.deltas_ingested.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .delta_entries
            .fetch_add(d.entries.len() as u64, Ordering::Relaxed);

        let mut journal = lock(&self.journal);
        let mut repl = lock(&self.repl);
        let mut journal_errs = 0u64;
        if journal.is_some() || repl.is_some() {
            for id in &journaled_removals {
                if let Some(packed) = pack_id(host_id, *id) {
                    if let Some(js) = journal.as_mut() {
                        if js.journal.append_remove(packed).is_err() {
                            journal_errs += 1;
                        }
                    }
                    if let Some(rs) = repl.as_mut() {
                        rs.outbox.push(encode_record(&Record::Remove(packed)));
                    }
                }
            }
            for e in &d.entries {
                if let Some(packed) = pack_id(host_id, e.id) {
                    let state = ViewState {
                        id: packed,
                        e_cpu: e.e_cpu,
                        e_mem: e.e_mem,
                        e_avail: e.e_avail,
                        last_tick: (u64::from(e.tenant) << 48) | (e.last_tick & TICK_MASK),
                    };
                    if let Some(js) = journal.as_mut() {
                        if js.journal.append_delta(&state, now).is_err() {
                            journal_errs += 1;
                        }
                    }
                    if let Some(rs) = repl.as_mut() {
                        rs.outbox
                            .push(encode_record(&Record::Delta { state, tick: now }));
                    }
                }
            }
        }
        // An append the store refused means the journal no longer holds
        // everything the live index does: flip the controller's own
        // ladder; the next successful checkpoint heals it (and rebuilds
        // the missing records from the index itself).
        let flip = journal_errs > 0
            && journal.as_mut().is_some_and(|js| {
                let first = !js.degraded;
                js.degraded = true;
                first
            });
        drop(repl);
        drop(journal);
        if journal_errs > 0 {
            self.metrics
                .journal_io_errors
                .fetch_add(journal_errs, Ordering::Relaxed);
            if flip {
                self.tracer
                    .emit_pipeline(now, None, PipelineEvent::DurabilityLost);
                self.record_flight(now, FlightTrigger::DurabilityLost);
            }
        }

        self.ack_for(host_id, expected, false, epoch)
    }

    fn handle_query(&self, q: Query) -> Vec<u8> {
        self.metrics.rollup_queries.fetch_add(1, Ordering::Relaxed);
        let rollup = match q.kind {
            QUERY_CLUSTER => {
                let r = self.cluster_capacity();
                Rollup::Cluster {
                    degraded: r.degraded(),
                    rollup: r,
                }
            }
            QUERY_TENANT => {
                let (r, degraded) = self.tenant_rollup(q.arg);
                Rollup::Tenant {
                    rollup: r,
                    degraded,
                }
            }
            QUERY_TOPK => Rollup::TopK(self.top_pressured(q.arg as usize)),
            QUERY_STATS => Rollup::Stats(self.prometheus_exposition()),
            QUERY_FLIGHT => Rollup::Flight(
                self.flight
                    .get(q.arg as usize)
                    .map(|d| d.encode())
                    .unwrap_or_default(),
            ),
            // decode_frame bounds the kind; unreachable defensively.
            _ => Rollup::TopK(Vec::new()),
        };
        encode_rollup(&RollupFrame {
            ctl_epoch: self.ctl_epoch(),
            span: self.span_stamp(),
            body: rollup,
        })
    }

    /// The causal span stamp for an answer computed right now: the
    /// controller tick, the oldest origin tick still contributing to
    /// the index, and the newest periphery trace sequence ingested.
    pub fn span_stamp(&self) -> SpanStamp {
        let now = self.now_tick();
        let mut origin_min = u64::MAX;
        let mut trace_max = 0u64;
        for shard in self.shards.iter() {
            let s = lock(shard);
            for host in s.hosts.values() {
                origin_min = origin_min.min(host.origin_tick);
                trace_max = trace_max.max(host.trace_seq);
            }
        }
        SpanStamp {
            as_of_tick: now,
            // No hosts: nothing is stale, the span collapses to now.
            origin_min: if origin_min == u64::MAX {
                now
            } else {
                origin_min
            },
            trace_max,
        }
    }

    /// Per-host freshness lag right now (`now − origin_tick` per host),
    /// sorted by host id — the gauge family the exposition serves and
    /// the ground-truth hook experiments assert against.
    pub fn host_freshness_lags(&self) -> Vec<(u32, u64)> {
        let now = self.now_tick();
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let s = lock(shard);
            for (hid, host) in &s.hosts {
                out.push((*hid, now.saturating_sub(host.origin_tick)));
            }
        }
        out.sort_unstable_by_key(|r| r.0);
        out
    }

    /// Why is host `host` stale/partitioned/fenced: its span state,
    /// lag waterfall, and last [`EXPLAIN_EVENTS`] causal events.
    pub fn explain_host(&self, host: u32) -> Option<FleetExplain> {
        let now = self.now_tick();
        let s = lock(self.shard_for(host));
        let h = s.hosts.get(&host)?;
        Some(FleetExplain {
            host,
            health: h.health,
            durability_lost: h.durability_lost,
            partitioned: h.partitioned,
            needs_resync: h.needs_resync,
            expected_seq: h.expected_seq,
            origin_tick: h.origin_tick,
            flush_tick: h.host_tick,
            ingest_tick: h.last_delta_tick,
            trace_seq: h.trace_seq,
            freshness_lag: now.saturating_sub(h.origin_tick),
            containers: h.containers.len() as u64,
            summary: h.summary,
            waterfall: h.waterfall,
            events: h.events.iter().copied().collect(),
        })
    }

    /// Cluster-wide effective capacity: the sum of every container's
    /// effective view across every host, with partitioned hosts'
    /// last-good contribution included but flagged.
    pub fn cluster_capacity(&self) -> ClusterRollup {
        let mut out = ClusterRollup::default();
        for shard in self.shards.iter() {
            let s = lock(shard);
            out.cpu += s.totals.cpu;
            out.mem += s.totals.mem;
            out.avail += s.totals.avail;
            out.containers += s.totals.containers;
            out.hosts += s.hosts.len() as u32;
            out.partitioned += s.hosts.values().filter(|h| h.partitioned).count() as u32;
        }
        out
    }

    /// One tenant's rollup, plus whether any host is partitioned (the
    /// tenant's numbers may then be last-good).
    pub fn tenant_rollup(&self, tenant: u32) -> (TenantRollup, bool) {
        let mut out = TenantRollup::default();
        let mut degraded = false;
        for shard in self.shards.iter() {
            let s = lock(shard);
            if let Some(t) = s.tenants.get(&tenant) {
                out.cpu += t.cpu;
                out.mem += t.mem;
                out.avail += t.avail;
                out.containers += t.containers;
            }
            degraded |= s.hosts.values().any(|h| h.partitioned);
        }
        (out, degraded)
    }

    /// The `k` most memory-pressured containers cluster-wide, most
    /// pressured first (ties broken by host then container id, so the
    /// answer is deterministic).
    pub fn top_pressured(&self, k: usize) -> Vec<PressurePoint> {
        let mut points: Vec<PressurePoint> = Vec::new();
        for shard in self.shards.iter() {
            let s = lock(shard);
            for (hid, host) in &s.hosts {
                for e in host.containers.values() {
                    let pressure = (e.e_avail.min(e.e_mem) * 1000)
                        .checked_div(e.e_mem)
                        .map_or(0, |served| (1000 - served) as u32);
                    points.push(PressurePoint {
                        host: *hid,
                        id: e.id,
                        pressure_milli: pressure,
                    });
                }
            }
        }
        points.sort_unstable_by(|a, b| {
            b.pressure_milli
                .cmp(&a.pressure_milli)
                .then(a.host.cmp(&b.host))
                .then(a.id.cmp(&b.id))
        });
        points.truncate(k);
        points
    }

    /// Per-host breakdown (host id, partitioned?, containers, cpu sum)
    /// in host-id order — ground-truth checks in tests and experiments.
    pub fn host_rollups(&self) -> Vec<(u32, bool, u64, u64)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let s = lock(shard);
            for (hid, host) in &s.hosts {
                let cpu: u64 = host.containers.values().map(|e| u64::from(e.e_cpu)).sum();
                out.push((*hid, host.partitioned, host.containers.len() as u64, cpu));
            }
        }
        out.sort_unstable_by_key(|r| r.0);
        out
    }

    // -----------------------------------------------------------------
    // Journaling and failover
    // -----------------------------------------------------------------

    /// Journal the aggregate state, checkpointing every `every` ticks.
    pub fn enable_journal(&mut self, every: u64) {
        let snap = self.index_snapshot(self.now_tick());
        let mut journal = Journal::new();
        journal
            .checkpoint(&snap)
            .expect("MemStore checkpoint never fails");
        *lock(&self.journal) = Some(JournalState {
            journal,
            every: every.max(1),
            last_checkpoint: self.now_tick(),
            degraded: false,
        });
    }

    /// Journal over a caller-supplied storage backend (e.g. a seeded
    /// `FaultyStore`). The initial checkpoint may itself fail — the
    /// journal then starts on the degraded rung of the ladder and heals
    /// at the first checkpoint the store accepts.
    pub fn enable_journal_with_store(&mut self, store: Box<dyn Store>, every: u64) {
        let snap = self.index_snapshot(self.now_tick());
        let (journal, degraded) = match Journal::with_store(store) {
            Ok(mut journal) => {
                let degraded = journal.checkpoint(&snap).is_err();
                (journal, degraded)
            }
            Err(_) => (Journal::new(), true),
        };
        if degraded {
            self.metrics
                .journal_io_errors
                .fetch_add(1, Ordering::Relaxed);
        }
        *lock(&self.journal) = Some(JournalState {
            journal,
            every: every.max(1),
            last_checkpoint: self.now_tick(),
            degraded,
        });
    }

    /// The journal's current bytes (what a failover peer would replay).
    pub fn journal_bytes(&self) -> Option<Vec<u8>> {
        lock(&self.journal)
            .as_ref()
            .map(|js| js.journal.as_bytes().to_vec())
    }

    /// The journal's *durable* bytes — the synced prefix that survives
    /// a crash under the fsync model.
    pub fn journal_durable_bytes(&self) -> Option<Vec<u8>> {
        lock(&self.journal)
            .as_ref()
            .map(|js| js.journal.durable_bytes().to_vec())
    }

    /// Whether the controller's own journal sits on the degraded rung
    /// of the durability ladder.
    pub fn journal_degraded(&self) -> bool {
        lock(&self.journal).as_ref().is_some_and(|js| js.degraded)
    }

    /// Hosts currently reporting `DurabilityLost` (the Prometheus
    /// `arv_fleet_durability_degraded_hosts` gauge).
    pub fn durability_degraded_hosts(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| lock(s).hosts.values().filter(|h| h.durability_lost).count() as u64)
            .sum()
    }

    /// Total bytes sitting in hosts' in-memory fallback journals, per
    /// the piggybacked summaries (`arv_fleet_journal_fallback_bytes`).
    pub fn journal_fallback_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                lock(s)
                    .hosts
                    .values()
                    .map(|h| h.summary.journal_fallback_bytes)
                    .sum::<u64>()
            })
            .sum()
    }

    // -----------------------------------------------------------------
    // Replication
    // -----------------------------------------------------------------

    /// Start streaming accepted records to standbys. The first
    /// [`take_repl_frames`](Self::take_repl_frames) ships a full
    /// checkpoint so a fresh standby aligns without replaying history.
    pub fn enable_replication(&self) {
        let mut repl = lock(&self.repl);
        let rs = repl.get_or_insert_with(ReplState::default);
        rs.send_snapshot = true;
    }

    /// Records queued for standbys but not yet shipped (replication
    /// lag, in records — the failover bench's headline number).
    pub fn repl_backlog_records(&self) -> u64 {
        lock(&self.repl)
            .as_ref()
            .map_or(0, |rs| rs.outbox.len() as u64)
    }

    /// Standby: the primary's tick stamped on the last applied REPL
    /// frame (0 before any) — how fresh the shadow index is.
    pub fn repl_last_as_of(&self) -> u64 {
        lock(&self.repl).as_ref().map_or(0, |rs| rs.last_as_of)
    }

    /// Drain the replication outbox into encoded REPL frames, each
    /// under [`MAX_FLEET_FRAME`], chunked at record boundaries. Ship
    /// every frame to every standby; feed their ACKs back through
    /// [`handle_repl_ack`](Self::handle_repl_ack).
    pub fn take_repl_frames(&self) -> Vec<Vec<u8>> {
        let epoch = self.ctl_epoch();
        let now = self.now_tick();
        // index_snapshot takes shard locks while `repl` is held; the
        // standby apply path orders the same way (repl, then shards).
        let mut repl = lock(&self.repl);
        let Some(rs) = repl.as_mut() else {
            return Vec::new();
        };
        if rs.send_snapshot {
            rs.send_snapshot = false;
            rs.outbox.clear();
            rs.outbox
                .push(encode_record(&Record::Checkpoint(self.index_snapshot(now))));
        }
        if rs.outbox.is_empty() {
            return Vec::new();
        }
        let records = std::mem::take(&mut rs.outbox);
        self.metrics
            .repl_records_streamed
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        let budget = (MAX_FLEET_FRAME as usize).saturating_sub(64);
        let mut frames = Vec::new();
        let mut cur: Vec<u8> = Vec::new();
        for rec in records {
            if !cur.is_empty() && cur.len() + rec.len() > budget {
                frames.push(encode_repl(&Repl {
                    ctl_epoch: epoch,
                    repl_seq: rs.next_seq,
                    as_of_tick: now,
                    records: std::mem::take(&mut cur),
                }));
                rs.next_seq += 1;
            }
            cur.extend_from_slice(&rec);
        }
        if !cur.is_empty() {
            frames.push(encode_repl(&Repl {
                ctl_epoch: epoch,
                repl_seq: rs.next_seq,
                as_of_tick: now,
                records: cur,
            }));
            rs.next_seq += 1;
        }
        frames
    }

    /// Primary side of the replication handshake: fold one standby ACK
    /// back in. A higher epoch in the ACK means a standby was promoted
    /// over us — stand down immediately. A resync flag means the
    /// standby lost sequence — queue a full checkpoint.
    pub fn handle_repl_ack(&self, ack: &Ack) {
        if ack.host != REPL_PEER {
            return;
        }
        if ack.ctl_epoch > self.ctl_epoch() && self.is_leader() && lock(&self.lease).is_some() {
            // Keep our own (stale) epoch: it correctly marks everything
            // we still serve as fenceable.
            self.leader.store(false, Ordering::Release);
            self.metrics.demotions.fetch_add(1, Ordering::Relaxed);
        }
        if ack.resync {
            let mut repl = lock(&self.repl);
            if let Some(rs) = repl.as_mut() {
                if !rs.send_snapshot {
                    rs.send_snapshot = true;
                    self.metrics
                        .repl_gap_snapshots
                        .fetch_add(1, Ordering::Relaxed);
                }
                rs.next_seq = rs.next_seq.max(ack.expected_seq);
            }
        }
    }

    /// Standby side: apply one REPL frame into the live shadow index
    /// and answer with a replication ACK ([`REPL_PEER`] host).
    ///
    /// Stale epochs are fenced — counted, never applied — and the ACK
    /// carries our higher epoch so the deposed sender stands down. A
    /// sequence gap or a torn record stream switches the standby to
    /// demanding a checkpoint; only a checkpoint-led frame realigns it.
    fn handle_repl(&self, r: &Repl) -> Vec<u8> {
        let own = self.ctl_epoch();
        let repl_ack = |expected_seq: u64, epoch: u64, resync: bool| {
            encode_ack(&Ack {
                host: REPL_PEER,
                expected_seq,
                ctl_epoch: epoch,
                resync,
                not_leader: false,
                policy: None,
            })
        };
        if r.ctl_epoch < own {
            self.metrics.repl_fenced.fetch_add(1, Ordering::Relaxed);
            let now = self.now_tick();
            self.tracer
                .emit_pipeline(now, None, PipelineEvent::FleetFenced);
            self.record_flight(now, FlightTrigger::Fence);
            let expected = lock(&self.repl).as_ref().map_or(0, |rs| rs.expected_seq);
            return repl_ack(expected, own, false);
        }
        if r.ctl_epoch > own {
            if self.is_leader() && lock(&self.lease).is_some() {
                self.leader.store(false, Ordering::Release);
                self.metrics.demotions.fetch_add(1, Ordering::Relaxed);
                self.record_flight(self.now_tick(), FlightTrigger::Demotion);
            }
            // Our shadow index now mirrors the higher-epoch primary.
            self.ctl_epoch.store(r.ctl_epoch, Ordering::Release);
        }
        let epoch = self.ctl_epoch();
        let now = self.now_tick();

        let scan = decode_records(&r.records);
        let starts_with_checkpoint = matches!(scan.records.first(), Some(Record::Checkpoint(_)));

        // Lock order matches handle_delta: journal, then repl, then
        // shards (inside apply_record).
        let mut journal = lock(&self.journal);
        let mut repl = lock(&self.repl);
        let rs = repl.get_or_insert_with(ReplState::default);
        let in_order = r.repl_seq == rs.expected_seq && !rs.need_snapshot;
        if !in_order && !starts_with_checkpoint {
            rs.need_snapshot = true;
            let expected = rs.expected_seq;
            drop(repl);
            return repl_ack(expected, epoch, true);
        }
        rs.expected_seq = r.repl_seq + 1;
        rs.need_snapshot = false;
        rs.last_as_of = rs.last_as_of.max(r.as_of_tick);
        for record in &scan.records {
            self.apply_record(record, now);
        }
        self.metrics
            .repl_records_applied
            .fetch_add(scan.records.len() as u64, Ordering::Relaxed);

        // Shadow-journal what was applied, so a promoted standby's
        // journal already holds its index. A store error here means the
        // shadow would silently diverge from the live mirror — instead
        // the standby flags its ladder and demands a fresh checkpoint;
        // a checkpoint-led frame that lands cleanly heals the flag.
        let mut shadow_err = false;
        let mut flip = false;
        let mut healed = false;
        if let Some(js) = journal.as_mut() {
            js.journal.set_tick(now);
            for record in &scan.records {
                let res = match record {
                    Record::Checkpoint(s) => {
                        let res = js.journal.checkpoint(s);
                        if res.is_ok() {
                            js.last_checkpoint = now;
                        }
                        res
                    }
                    Record::Delta { state, tick } => js.journal.append_delta(state, *tick),
                    Record::Remove(id) => js.journal.append_remove(*id),
                };
                if res.is_err() {
                    shadow_err = true;
                    break;
                }
            }
            if !shadow_err && js.journal.sync().is_err() {
                shadow_err = true;
            }
            if shadow_err {
                flip = !js.degraded;
                js.degraded = true;
            } else if js.degraded && starts_with_checkpoint {
                js.degraded = false;
                healed = true;
            }
        }
        drop(journal);
        if shadow_err {
            self.metrics
                .journal_io_errors
                .fetch_add(1, Ordering::Relaxed);
            rs.need_snapshot = true;
            let expected = rs.expected_seq;
            drop(repl);
            if flip {
                self.tracer
                    .emit_pipeline(now, None, PipelineEvent::DurabilityLost);
                self.record_flight(now, FlightTrigger::DurabilityLost);
            }
            return repl_ack(expected, epoch, true);
        }
        if healed {
            self.tracer
                .emit_pipeline(now, None, PipelineEvent::DurabilityRestored);
            self.record_flight(now, FlightTrigger::DurabilityRestored);
        }
        if scan.truncated > 0 {
            // The valid prefix is applied (prefix-consistent, like the
            // journal); the lost tail forces a checkpoint realign.
            self.metrics.repl_truncated.fetch_add(1, Ordering::Relaxed);
            rs.need_snapshot = true;
            let expected = rs.expected_seq;
            drop(repl);
            return repl_ack(expected, epoch, true);
        }
        let expected = rs.expected_seq;
        drop(repl);
        repl_ack(expected, epoch, false)
    }

    /// Fold one replicated journal record into the live index.
    fn apply_record(&self, record: &Record, now: u64) {
        match record {
            Record::Checkpoint(snap) => {
                for shard in self.shards.iter() {
                    let mut s = lock(shard);
                    s.hosts.clear();
                    s.totals = Totals::default();
                    s.tenants.clear();
                }
                for e in &snap.entries {
                    self.apply_packed_state(e, now);
                }
            }
            Record::Delta { state, .. } => self.apply_packed_state(state, now),
            Record::Remove(packed) => {
                let host_id = *packed >> 16;
                let container = *packed & 0xFFFF;
                let mut s = lock(self.shard_for(host_id));
                let shard = &mut *s;
                if let Some(mut host) = shard.hosts.remove(&host_id) {
                    shard.remove(&mut host, container);
                    shard.hosts.insert(host_id, host);
                }
            }
        }
    }

    /// Upsert one packed (`host << 16 | container`) state into the
    /// shadow index, refreshing the host's staleness clock.
    fn apply_packed_state(&self, e: &ViewState, now: u64) {
        let host_id = e.id >> 16;
        let container = e.id & 0xFFFF;
        let tenant = (e.last_tick >> 48) as u32;
        let mut s = lock(self.shard_for(host_id));
        let shard = &mut *s;
        let mut host = shard.hosts.remove(&host_id).unwrap_or_default();
        host.last_delta_tick = now;
        host.partitioned = false;
        shard.upsert(
            &mut host,
            DeltaEntry {
                id: container,
                tenant,
                e_cpu: e.e_cpu,
                e_mem: e.e_mem,
                e_avail: e.e_avail,
                last_tick: e.last_tick & TICK_MASK,
            },
        );
        shard.hosts.insert(host_id, host);
    }

    /// Build a persistable snapshot of the whole index: ids packed
    /// `host << 16 | container`, tenant in the top 16 bits of
    /// `last_tick` (host ticks never approach 2^48).
    fn index_snapshot(&self, tick: u64) -> Snapshot {
        let mut snap = Snapshot::at(tick);
        for shard in self.shards.iter() {
            let s = lock(shard);
            for (hid, host) in &s.hosts {
                for e in host.containers.values() {
                    if let Some(packed) = pack_id(*hid, e.id) {
                        snap.entries.push(ViewState {
                            id: packed,
                            e_cpu: e.e_cpu,
                            e_mem: e.e_mem,
                            e_avail: e.e_avail,
                            last_tick: (u64::from(e.tenant) << 48) | (e.last_tick & TICK_MASK),
                        });
                    }
                }
            }
        }
        snap.entries.sort_unstable_by_key(|e| e.id);
        snap
    }

    /// Warm-restart a replacement controller from journal bytes
    /// (possibly torn mid-record: `arv_persist::restore` keeps the
    /// longest valid prefix). Every restored host starts partitioned
    /// and `needs_resync` — rollups serve its last-good state flagged
    /// degraded until the host's next delta triggers a FULL resync.
    pub fn restore_from(bytes: &[u8], shards: usize, policy: FleetPolicy) -> FleetController {
        let report = restore(bytes);
        let mut ctl = FleetController::new(shards, policy);
        let Some(snap) = report.snapshot else {
            return ctl;
        };
        ctl.tick = AtomicU64::new(snap.tick);
        let mut partitioned = 0u64;
        {
            let mut seen = std::collections::HashSet::new();
            for e in &snap.entries {
                let host_id = e.id >> 16;
                let container = e.id & 0xFFFF;
                let tenant = (e.last_tick >> 48) as u32;
                let mut s = lock(ctl.shard_for(host_id));
                let shard = &mut *s;
                let mut host = shard.hosts.remove(&host_id).unwrap_or_default();
                if seen.insert(host_id) {
                    host.partitioned = true;
                    host.needs_resync = true;
                    host.last_delta_tick = snap.tick;
                    partitioned += 1;
                }
                shard.upsert(
                    &mut host,
                    DeltaEntry {
                        id: container,
                        tenant,
                        e_cpu: e.e_cpu,
                        e_mem: e.e_mem,
                        e_avail: e.e_avail,
                        last_tick: e.last_tick & TICK_MASK,
                    },
                );
                shard.hosts.insert(host_id, host);
            }
        }
        ctl.metrics
            .hosts_partitioned
            .store(partitioned, Ordering::Relaxed);
        ctl.tracer
            .emit_pipeline(snap.tick, None, PipelineEvent::FleetFailover);
        ctl
    }

    // -----------------------------------------------------------------
    // Exposition
    // -----------------------------------------------------------------

    /// Prometheus text exposition of the fleet counters, in the same
    /// format (and servable alongside) the viewd metrics. One scrape
    /// exposes the whole fleet: the controller's own counters, per-host
    /// freshness-lag gauges and end-to-end lag waterfalls, and the
    /// periphery counter summaries piggybacked on DELTA frames.
    pub fn prometheus_exposition(&self) -> String {
        let m = self.metrics.snapshot();
        let r = self.cluster_capacity();
        let now = self.now_tick();
        let mut out = PromText::new();
        out.counter(
            "arv_fleet_deltas_ingested",
            "DELTA frames accepted and applied",
            m.deltas_ingested as f64,
        );
        out.counter(
            "arv_fleet_delta_entries",
            "Delta entries applied across all frames",
            m.delta_entries as f64,
        );
        out.counter(
            "arv_fleet_deltas_gap_resyncs",
            "Sequence gaps detected (host flipped into resync)",
            m.deltas_gap_resyncs as f64,
        );
        out.counter(
            "arv_fleet_hosts_partitioned",
            "Transitions of a host into the partitioned state",
            m.hosts_partitioned as f64,
        );
        out.counter(
            "arv_fleet_rollup_queries",
            "Rollup queries answered",
            m.rollup_queries as f64,
        );
        out.counter(
            "arv_fleet_full_syncs",
            "FULL snapshots accepted",
            m.full_syncs as f64,
        );
        out.counter(
            "arv_fleet_malformed_frames",
            "Frames that failed to decode",
            m.malformed_frames as f64,
        );
        out.counter(
            "arv_fleet_policy_pushes",
            "Policy blocks pushed down in ACKs",
            m.policy_pushes as f64,
        );
        out.counter(
            "arv_fleet_failover_promotions",
            "Standby-to-primary promotions (lease takeovers)",
            m.promotions as f64,
        );
        out.counter(
            "arv_fleet_failover_demotions",
            "Primary-to-standby demotions",
            m.demotions as f64,
        );
        out.counter(
            "arv_fleet_failover_repl_records_streamed",
            "Journal records streamed to standbys",
            m.repl_records_streamed as f64,
        );
        out.counter(
            "arv_fleet_failover_repl_records_applied",
            "Replicated records applied into the shadow index",
            m.repl_records_applied as f64,
        );
        out.counter(
            "arv_fleet_failover_fenced",
            "REPL frames fenced for carrying a stale epoch",
            m.repl_fenced as f64,
        );
        out.counter(
            "arv_fleet_failover_gap_snapshots",
            "Full checkpoints queued after a standby REPL gap",
            m.repl_gap_snapshots as f64,
        );
        out.counter(
            "arv_fleet_failover_repl_truncated",
            "REPL frames with a torn or corrupt record stream",
            m.repl_truncated as f64,
        );
        out.counter(
            "arv_fleet_failover_not_leader_rejects",
            "HELLO/DELTA frames rejected for lack of the lease",
            m.not_leader_rejects as f64,
        );
        out.counter(
            "arv_fleet_journal_io_errors",
            "Journal/lease store errors absorbed by this controller",
            m.journal_io_errors as f64,
        );
        out.gauge(
            "arv_fleet_durability_degraded_hosts",
            "Hosts currently reporting journal durability lost",
            self.durability_degraded_hosts() as f64,
        );
        out.gauge(
            "arv_fleet_journal_fallback_bytes",
            "Bytes held in hosts' in-memory fallback journals",
            self.journal_fallback_bytes() as f64,
        );
        out.gauge(
            "arv_fleet_journal_degraded",
            "Whether this controller's own journal is on the degraded rung (1) or durable (0)",
            if self.journal_degraded() { 1.0 } else { 0.0 },
        );
        out.gauge(
            "arv_fleet_ctl_epoch",
            "Controller epoch stamped on ACKs and ROLLUPs",
            self.ctl_epoch() as f64,
        );
        out.gauge(
            "arv_fleet_is_leader",
            "Whether this controller holds the lease (1) or stands by (0)",
            if self.is_leader() { 1.0 } else { 0.0 },
        );
        out.gauge("arv_fleet_hosts", "Hosts tracked", f64::from(r.hosts));
        out.gauge(
            "arv_fleet_hosts_partitioned_now",
            "Hosts currently partitioned",
            f64::from(r.partitioned),
        );
        out.gauge(
            "arv_fleet_containers",
            "Containers tracked",
            r.containers as f64,
        );
        out.gauge(
            "arv_fleet_flight_dumps",
            "Flight-recorder dumps frozen so far",
            self.flight.dumps_frozen() as f64,
        );

        // Per-host observability: freshness lags, span coordinates,
        // piggybacked periphery summaries, and the lag waterfalls. Host
        // order is sorted so scrapes are deterministic.
        type HostRow = (u32, u64, u64, u64, bool, bool, HostSummary, LagHistogram);
        let mut hosts: Vec<HostRow> = Vec::new();
        for shard in self.shards.iter() {
            let s = lock(shard);
            for (hid, host) in &s.hosts {
                hosts.push((
                    *hid,
                    now.saturating_sub(host.origin_tick),
                    host.origin_tick,
                    host.trace_seq,
                    host.partitioned,
                    host.durability_lost,
                    host.summary,
                    host.waterfall,
                ));
            }
        }
        hosts.sort_unstable_by_key(|h| h.0);
        out.header(
            "arv_fleet_host_freshness_lag_ticks",
            "Per-host end-to-end freshness lag (controller tick minus origin tick)",
            "gauge",
        );
        for (hid, lag, ..) in &hosts {
            out.labeled(
                "arv_fleet_host_freshness_lag_ticks",
                &[("host", hid.to_string())],
                *lag as f64,
            );
        }
        out.header(
            "arv_fleet_host_origin_tick",
            "Per-host origin tick of the newest accepted delta",
            "gauge",
        );
        for (hid, _, origin, ..) in &hosts {
            out.labeled(
                "arv_fleet_host_origin_tick",
                &[("host", hid.to_string())],
                *origin as f64,
            );
        }
        out.header(
            "arv_fleet_host_trace_seq",
            "Per-host newest periphery trace sequence ingested",
            "gauge",
        );
        for (hid, _, _, trace, ..) in &hosts {
            out.labeled(
                "arv_fleet_host_trace_seq",
                &[("host", hid.to_string())],
                *trace as f64,
            );
        }
        out.header(
            "arv_fleet_host_partitioned",
            "Whether the host is currently partitioned (1) or live (0)",
            "gauge",
        );
        for (hid, _, _, _, part, ..) in &hosts {
            out.labeled(
                "arv_fleet_host_partitioned",
                &[("host", hid.to_string())],
                if *part { 1.0 } else { 0.0 },
            );
        }
        out.header(
            "arv_fleet_host_durability_lost",
            "Whether the host's journal has lost durability (1) or is durable (0)",
            "gauge",
        );
        for (hid, _, _, _, _, lost, ..) in &hosts {
            out.labeled(
                "arv_fleet_host_durability_lost",
                &[("host", hid.to_string())],
                if *lost { 1.0 } else { 0.0 },
            );
        }
        out.header(
            "arv_fleet_host_agent",
            "Periphery agent counters piggybacked on DELTA frames",
            "gauge",
        );
        for (hid, _, _, _, _, _, sum, _) in &hosts {
            let host = hid.to_string();
            for (stat, v) in [
                ("frames", sum.frames),
                ("entries", sum.entries),
                ("full_syncs", sum.full_syncs),
                ("resyncs", sum.resyncs),
                ("coalesced", sum.deltas_coalesced),
                ("acks_fenced", sum.acks_fenced),
                ("journal_io_errors", sum.journal_io_errors),
                ("journal_fallback_bytes", sum.journal_fallback_bytes),
            ] {
                out.labeled(
                    "arv_fleet_host_agent",
                    &[("host", host.clone()), ("stat", stat.to_string())],
                    v as f64,
                );
            }
        }
        out.header(
            "arv_fleet_host_e2e_lag_ticks",
            "Per-host end-to-end lag histogram (origin tick to ingest)",
            "histogram",
        );
        for (hid, _, _, _, _, _, _, wf) in &hosts {
            wf.expose(
                &mut out,
                "arv_fleet_host_e2e_lag_ticks",
                &[("host", hid.to_string())],
            );
        }
        out.finish()
    }
}

/// Lock helper mirroring the rest of the project: a poisoned mutex
/// (panicked peer) still yields the data — counters and index state
/// remain usable for the surviving threads.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::periphery::Periphery;
    use arv_persist::Snapshot as PSnapshot;
    use arv_persist::ViewState as PViewState;

    fn snap(tick: u64, states: &[(u32, u32, u64, u64)]) -> PSnapshot {
        let mut s = PSnapshot::at(tick);
        for (id, cpu, mem, avail) in states {
            s.entries.push(PViewState {
                id: *id,
                e_cpu: *cpu,
                e_mem: *mem,
                e_avail: *avail,
                last_tick: tick,
            });
        }
        s
    }

    /// Pump every queued periphery frame into the controller, feeding
    /// ACKs back.
    fn pump(p: &mut Periphery, ctl: &FleetController) {
        for frame in p.take_frames() {
            if let Some(resp) = ctl.handle_frame(&frame) {
                if let Some(Frame::Ack(ack)) = decode_frame(&resp) {
                    p.handle_ack(&ack);
                }
            }
        }
    }

    #[test]
    fn rollup_equals_ground_truth() {
        let ctl = FleetController::new(4, FleetPolicy::default());
        let mut p1 = Periphery::new(1);
        let mut p2 = Periphery::new(2);
        p1.set_tenant(10, 7);
        p1.observe(&snap(1, &[(10, 4, 1000, 500), (11, 2, 600, 300)]), false, 0);
        p2.observe(&snap(1, &[(10, 8, 2000, 100)]), false, 0);
        pump(&mut p1, &ctl);
        pump(&mut p2, &ctl);

        let r = ctl.cluster_capacity();
        assert_eq!(r.cpu, 14);
        assert_eq!(r.mem, 3600);
        assert_eq!(r.avail, 900);
        assert_eq!(r.hosts, 2);
        assert_eq!(r.containers, 3);
        assert!(!r.degraded());

        let (t, _) = ctl.tenant_rollup(7);
        assert_eq!((t.cpu, t.mem, t.containers), (4, 1000, 1));
        let (t0, _) = ctl.tenant_rollup(0);
        assert_eq!(t0.containers, 2);

        // Host 2's lone container has the least available share.
        let top = ctl.top_pressured(2);
        assert_eq!(top[0].host, 2);
        assert_eq!(top[0].pressure_milli, 950);
    }

    #[test]
    fn incremental_updates_keep_totals_consistent() {
        let ctl = FleetController::new(2, FleetPolicy::default());
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50), (2, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        p.observe(&snap(2, &[(1, 6, 300, 150)]), false, 0);
        pump(&mut p, &ctl);
        let r = ctl.cluster_capacity();
        assert_eq!((r.cpu, r.mem, r.avail, r.containers), (6, 300, 150, 1));
    }

    #[test]
    fn gap_triggers_resync_and_recovery() {
        let ctl = FleetController::new(2, FleetPolicy::default());
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);

        // Lose a frame: the next delta arrives with a gapped sequence.
        p.observe(&snap(2, &[(1, 3, 100, 50)]), false, 0);
        let lost = p.take_frames();
        assert_eq!(lost.len(), 1);

        p.observe(&snap(3, &[(1, 4, 100, 50)]), false, 0);
        pump(&mut p, &ctl); // rejected, resync requested
        assert_eq!(ctl.metrics().snapshot().deltas_gap_resyncs, 1);
        // Stale value still served (last-good).
        assert_eq!(ctl.cluster_capacity().cpu, 2);

        p.observe(&snap(4, &[(1, 5, 100, 50)]), false, 0);
        pump(&mut p, &ctl); // FULL snapshot realigns
        assert_eq!(ctl.cluster_capacity().cpu, 5);
        assert_eq!(ctl.metrics().snapshot().full_syncs, 2);
        assert_eq!(p.stats().resyncs, 1);
    }

    #[test]
    fn silent_host_flagged_partitioned_then_heals() {
        let ctl = FleetController::new(2, FleetPolicy::default());
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        for _ in 0..5 {
            ctl.advance_tick();
        }
        let r = ctl.cluster_capacity();
        assert_eq!(r.partitioned, 1);
        assert!(r.degraded());
        assert_eq!(r.cpu, 2, "last-good contribution still served");
        assert_eq!(ctl.metrics().snapshot().hosts_partitioned, 1);

        p.observe(&snap(2, &[(1, 3, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        let r = ctl.cluster_capacity();
        assert_eq!(r.partitioned, 0);
        assert!(!r.degraded());
        assert_eq!(r.cpu, 3);
    }

    #[test]
    fn policy_push_reaches_periphery() {
        let mut ctl = FleetController::new(2, FleetPolicy::default());
        ctl.set_policy(7, 32, 64);
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        assert_eq!(p.policy().staleness_budget, 7);
        assert_eq!(p.policy().max_batch, 32);
        assert_eq!(p.stats().policy_updates, 1);
        assert!(ctl.metrics().snapshot().policy_pushes >= 1);
    }

    #[test]
    fn journal_restore_is_prefix_consistent_and_resyncs() {
        let mut ctl = FleetController::new(2, FleetPolicy::default());
        ctl.enable_journal(2);
        let mut p = Periphery::new(3);
        p.set_tenant(1, 9);
        p.observe(&snap(1, &[(1, 4, 400, 200), (2, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        ctl.advance_tick();
        p.observe(&snap(2, &[(1, 6, 400, 200)]), false, 0);
        pump(&mut p, &ctl);

        let bytes = ctl.journal_bytes().expect("journal on");
        let before = ctl.cluster_capacity();

        // Failover: a replacement controller restores the journal.
        let ctl2 = FleetController::restore_from(&bytes, 2, FleetPolicy::default());
        let r = ctl2.cluster_capacity();
        assert_eq!(
            (r.cpu, r.mem, r.containers),
            (before.cpu, before.mem, before.containers)
        );
        assert_eq!(r.partitioned, 1, "restored hosts start last-good");
        let (t, degraded) = ctl2.tenant_rollup(9);
        assert_eq!(t.cpu, 6, "tenant survives failover");
        assert!(degraded);

        // The periphery's next delta is rejected (unknown seq) and the
        // demanded FULL snapshot heals the host to Fresh.
        p.observe(&snap(3, &[(1, 8, 400, 200)]), false, 0);
        pump(&mut p, &ctl2);
        p.observe(&snap(4, &[(1, 8, 400, 200), (2, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl2);
        let r = ctl2.cluster_capacity();
        assert_eq!(r.partitioned, 0, "resync heals the restored host");
        assert_eq!(r.cpu, 10);
    }

    #[test]
    fn truncated_journal_restores_a_prefix() {
        let mut ctl = FleetController::new(2, FleetPolicy::default());
        ctl.enable_journal(1);
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        let bytes = ctl.journal_bytes().expect("journal on");
        // Tear the tail mid-record; restore must still see the earlier prefix.
        let torn = &bytes[..bytes.len() - 3];
        let ctl2 = FleetController::restore_from(torn, 2, FleetPolicy::default());
        assert!(ctl2.host_count() <= 1);
    }

    #[test]
    fn exposition_names_the_headline_counters() {
        let ctl = FleetController::new(2, FleetPolicy::default());
        ctl.handle_frame(&crate::protocol::encode_query(&Query {
            kind: QUERY_CLUSTER,
            arg: 0,
        }));
        let text = ctl.prometheus_exposition();
        for name in [
            "arv_fleet_deltas_ingested_total",
            "arv_fleet_deltas_gap_resyncs_total",
            "arv_fleet_hosts_partitioned_total",
            "arv_fleet_rollup_queries_total",
        ] {
            assert!(text.contains(name), "missing {name} in exposition");
        }
    }

    #[test]
    fn malformed_frames_never_panic_and_are_counted() {
        let ctl = FleetController::new(2, FleetPolicy::default());
        assert!(ctl.handle_frame(&[]).is_none());
        assert!(ctl.handle_frame(&[0xFF, 1, 2, 3]).is_none());
        let ack = encode_ack(&Ack {
            host: 1,
            expected_seq: 0,
            ctl_epoch: 0,
            resync: false,
            not_leader: false,
            policy: None,
        });
        assert!(ctl.handle_frame(&ack).is_none(), "ACK is not a request");
        assert_eq!(ctl.metrics().snapshot().malformed_frames, 3);
    }

    /// Ship every queued REPL frame from `primary` into `standby`,
    /// feeding replication ACKs back.
    fn pump_repl(primary: &FleetController, standby: &FleetController) {
        for frame in primary.take_repl_frames() {
            if let Some(resp) = standby.handle_frame(&frame) {
                if let Some(Frame::Ack(ack)) = decode_frame(&resp) {
                    primary.handle_repl_ack(&ack);
                }
            }
        }
    }

    #[test]
    fn standby_mirrors_primary_through_repl() {
        let primary = FleetController::new(2, FleetPolicy::default());
        primary.enable_replication();
        let standby = FleetController::new(4, FleetPolicy::default());

        let mut p = Periphery::new(1);
        p.set_tenant(1, 9);
        p.observe(&snap(1, &[(1, 4, 400, 200), (2, 2, 100, 50)]), false, 0);
        pump(&mut p, &primary);
        pump_repl(&primary, &standby);
        assert_eq!(
            standby.cluster_capacity(),
            primary.cluster_capacity(),
            "shadow index matches after initial checkpoint + deltas"
        );

        // Incremental update and a removal (container 2 vanishes).
        p.observe(&snap(2, &[(1, 6, 400, 200)]), false, 0);
        pump(&mut p, &primary);
        pump_repl(&primary, &standby);
        assert_eq!(standby.cluster_capacity(), primary.cluster_capacity());
        let (t, _) = standby.tenant_rollup(9);
        assert_eq!(t.cpu, 6, "tenant totals replicate too");
        assert!(standby.metrics().snapshot().repl_records_applied > 0);
    }

    #[test]
    fn repl_gap_heals_with_checkpoint() {
        let primary = FleetController::new(2, FleetPolicy::default());
        primary.enable_replication();
        let standby = FleetController::new(2, FleetPolicy::default());
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50)]), false, 0);
        pump(&mut p, &primary);
        pump_repl(&primary, &standby);

        // Lose a whole replication batch on the floor.
        p.observe(&snap(2, &[(1, 5, 100, 50)]), false, 0);
        pump(&mut p, &primary);
        let lost = primary.take_repl_frames();
        assert!(!lost.is_empty(), "the drop must lose real frames");

        // The next batch arrives gapped: rejected, checkpoint demanded,
        // and the following pump realigns the mirror exactly.
        p.observe(&snap(3, &[(1, 7, 100, 50)]), false, 0);
        pump(&mut p, &primary);
        pump_repl(&primary, &standby);
        assert_eq!(standby.metrics().snapshot().repl_gap_snapshots, 0);
        assert_eq!(primary.metrics().snapshot().repl_gap_snapshots, 1);
        pump_repl(&primary, &standby);
        assert_eq!(standby.cluster_capacity(), primary.cluster_capacity());
    }

    #[test]
    fn lease_failover_promotes_standby_and_fences_stale_primary() {
        let lease = SharedLease::new();
        let primary = FleetController::new(2, FleetPolicy::default());
        primary.enable_replication();
        primary.attach_lease(lease.clone(), 1, 2);
        assert!(primary.is_leader());
        assert_eq!(primary.ctl_epoch(), 1);

        let standby = FleetController::new(2, FleetPolicy::default());
        standby.attach_lease(lease.clone(), 2, 2);
        assert!(!standby.is_leader(), "unexpired lease is not reassigned");

        let mut p = Periphery::new(3);
        p.observe(&snap(1, &[(1, 2, 100, 50)]), false, 0);
        pump(&mut p, &primary);
        pump_repl(&primary, &standby);

        // A standby refuses periphery traffic.
        p.observe(&snap(2, &[(1, 3, 100, 50)]), false, 0);
        for frame in p.take_frames() {
            let resp = standby.handle_frame(&frame).expect("standby answers");
            let Some(Frame::Ack(ack)) = decode_frame(&resp) else {
                panic!("expected ACK");
            };
            assert!(ack.not_leader);
        }
        assert!(standby.metrics().snapshot().not_leader_rejects >= 1);

        // The primary stalls (cannot renew); the standby's clock runs
        // past the lease and it takes over at a bumped epoch.
        primary.set_lease_stalled(true);
        for _ in 0..5 {
            standby.advance_tick();
        }
        assert!(standby.is_leader(), "standby promotes after expiry");
        assert_eq!(standby.ctl_epoch(), 2, "takeover bumps the epoch");
        assert_eq!(standby.metrics().snapshot().promotions, 1);
        let r = standby.cluster_capacity();
        assert_eq!(r.partitioned, r.hosts, "promoted hosts start last-good");
        assert_eq!(r.cpu, 2, "last-good contribution still served");

        // The deposed primary's replication stream is fenced, and the
        // fencing ACK demotes it.
        let mut stale = Periphery::new(4);
        stale.observe(&snap(3, &[(9, 1, 10, 5)]), false, 0);
        pump(&mut stale, &primary);
        assert!(primary.is_leader(), "stale primary still thinks it leads");
        pump_repl(&primary, &standby);
        assert!(standby.metrics().snapshot().repl_fenced >= 1);
        assert_eq!(
            standby.cluster_capacity().containers,
            1,
            "fenced records were never applied"
        );
        assert!(!primary.is_leader(), "fencing ACK demotes the old primary");
        assert_eq!(primary.metrics().snapshot().demotions, 1);

        // A FULL resync converges the promoted controller to Fresh.
        p.on_reconnect();
        p.observe(&snap(4, &[(1, 3, 100, 50)]), false, 0);
        pump(&mut p, &standby);
        let r = standby.cluster_capacity();
        assert_eq!(r.partitioned, 0, "resync heals the promoted index");
        assert_eq!(r.cpu, 3);
    }

    #[test]
    fn torn_repl_frames_apply_prefix_and_demand_checkpoint() {
        let primary = FleetController::new(2, FleetPolicy::default());
        primary.enable_replication();
        let standby = FleetController::new(2, FleetPolicy::default());
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50), (2, 4, 200, 100)]), false, 0);
        pump(&mut p, &primary);

        for frame in primary.take_repl_frames() {
            // Tear the tail off every REPL frame.
            let torn = &frame[..frame.len().saturating_sub(3)];
            if let Some(resp) = standby.handle_frame(torn) {
                if let Some(Frame::Ack(ack)) = decode_frame(&resp) {
                    assert!(ack.resync, "torn stream demands a checkpoint");
                    primary.handle_repl_ack(&ack);
                }
            }
        }
        assert!(standby.metrics().snapshot().repl_truncated >= 1);
        // The demanded checkpoint realigns the mirror exactly.
        pump_repl(&primary, &standby);
        assert_eq!(standby.cluster_capacity(), primary.cluster_capacity());
    }

    #[test]
    fn repl_garbage_never_panics_standby() {
        let standby = FleetController::new(2, FleetPolicy::default());
        use crate::protocol::{encode_repl, Repl};
        for len in [0usize, 1, 7, 64, 300] {
            let frame = encode_repl(&Repl {
                ctl_epoch: 0,
                repl_seq: 0,
                as_of_tick: 0,
                records: vec![0xA5; len],
            });
            let _ = standby.handle_frame(&frame);
        }
    }

    #[test]
    fn explain_host_traces_span_and_events() {
        let ctl = FleetController::new(2, FleetPolicy::default());
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        ctl.advance_tick();
        p.observe(&snap(2, &[(1, 3, 100, 50)]), false, 0);
        pump(&mut p, &ctl);

        let ex = ctl.explain_host(1).expect("host tracked");
        assert_eq!(ex.host, 1);
        assert!(!ex.partitioned);
        assert_eq!(ex.origin_tick, 2, "origin follows the newest delta");
        assert_eq!(ex.flush_tick, 2);
        assert_eq!(ex.trace_seq, 2);
        assert_eq!(ex.containers, 1);
        assert_eq!(ex.summary.frames, 2, "piggybacked summary is live");
        assert_eq!(ex.waterfall.total(), 2, "both ingests observed");
        let kinds: Vec<HostEventKind> = ex.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                HostEventKind::Hello,
                HostEventKind::FullApplied,
                HostEventKind::DeltaApplied
            ]
        );
        assert!(ex.render().contains("delta-applied"));
        assert_eq!(ctl.explain_host(99), None);

        // Freshness lags: controller tick 1, origin tick 2 → saturates
        // to 0; advance the clock and the lag grows by exactly one per
        // tick (ground-truth arithmetic).
        for _ in 0..3 {
            ctl.advance_tick();
        }
        let lags = ctl.host_freshness_lags();
        assert_eq!(lags, vec![(1, ctl.now_tick() - 2)]);

        // Silent long enough to partition: the causal ring says why.
        for _ in 0..3 {
            ctl.advance_tick();
        }
        let ex = ctl.explain_host(1).expect("host tracked");
        assert!(ex.partitioned);
        assert_eq!(
            ex.events.last().map(|e| e.kind),
            Some(HostEventKind::Partitioned)
        );
    }

    #[test]
    fn rollups_carry_span_stamps() {
        let ctl = FleetController::new(2, FleetPolicy::default());
        let mut p = Periphery::new(1);
        p.observe(&snap(3, &[(1, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        for _ in 0..5 {
            ctl.advance_tick();
        }
        let resp = ctl
            .handle_frame(&crate::protocol::encode_query(&Query {
                kind: QUERY_CLUSTER,
                arg: 0,
            }))
            .expect("rollup");
        let Some(Frame::Rollup(frame)) = decode_frame(&resp) else {
            panic!("expected ROLLUP");
        };
        assert_eq!(frame.span.as_of_tick, 5);
        assert_eq!(frame.span.origin_min, 3, "traces back to the host tick");
        assert_eq!(frame.span.trace_max, 1);
        assert_eq!(frame.span.max_lag(), 2);
    }

    #[test]
    fn anomalies_freeze_retrievable_flight_dumps() {
        let mut ctl = FleetController::new(2, FleetPolicy::default());
        ctl.set_tracer(Tracer::bounded(64));
        ctl.set_flight_recorder(FlightRecorder::bounded(4));
        let mut p = Periphery::new(1);
        p.observe(&snap(1, &[(1, 2, 100, 50)]), false, 0);
        pump(&mut p, &ctl);

        // Lose a frame, then deliver the next: a gap-resync dump.
        p.observe(&snap(2, &[(1, 3, 100, 50)]), false, 0);
        p.take_frames();
        p.observe(&snap(3, &[(1, 4, 100, 50)]), false, 0);
        pump(&mut p, &ctl);
        assert_eq!(ctl.flight_recorder().dumps_frozen(), 1);
        let dump = ctl.flight_recorder().latest().expect("dump frozen");
        assert_eq!(dump.trigger, FlightTrigger::GapResync);
        assert!(dump
            .counters
            .iter()
            .any(|(n, v)| n == "deltas_gap_resyncs" && *v == 1));

        // Retrieve it over the query path and check it decodes to the
        // exact same dump.
        let resp = ctl
            .handle_frame(&crate::protocol::encode_query(&Query {
                kind: QUERY_FLIGHT,
                arg: 0,
            }))
            .expect("answered");
        let Some(Frame::Rollup(frame)) = decode_frame(&resp) else {
            panic!("expected ROLLUP");
        };
        let Rollup::Flight(bytes) = frame.body else {
            panic!("expected Flight body");
        };
        let wire_dump = arv_telemetry::FlightDump::decode(&bytes).expect("dump decodes");
        assert_eq!(wire_dump, dump);

        // Asking past the end answers with empty bytes, not an error.
        let resp = ctl
            .handle_frame(&crate::protocol::encode_query(&Query {
                kind: QUERY_FLIGHT,
                arg: 9,
            }))
            .expect("answered");
        let Some(Frame::Rollup(frame)) = decode_frame(&resp) else {
            panic!("expected ROLLUP");
        };
        assert_eq!(frame.body, Rollup::Flight(Vec::new()));
    }
}
