//! `arv-fleet`: a core↔periphery control plane aggregating adaptive
//! resource views across a fleet of simulated hosts.
//!
//! The single-host stack keeps one machine's effective CPU/memory views
//! current and serves them; the paper's views only pay off at
//! datacenter scale when a controller can see *cluster-wide* effective
//! capacity rather than per-host guesses. This crate is that control
//! plane, split the way real fleet managers are:
//!
//! * [`periphery::Periphery`] — a thin agent riding each `SimHost`'s
//!   update timer. It diffs the monitor's persisted snapshot against
//!   what it last shipped and streams batched DELTA frames upward,
//!   FULL snapshots on first attach and after any resync demand.
//! * [`controller::FleetController`] — the core: a sharded
//!   host×container index with per-shard running totals, answering
//!   cluster capacity, per-tenant rollups, and top-k pressure queries;
//!   journaling every accepted delta through `arv-persist` so a crashed
//!   controller warm-restarts prefix-consistently; and pushing policy
//!   (staleness budgets, batch/burst limits) back down in ACKs.
//! * [`protocol`] — the HELLO/DELTA/POLICY/QUERY frame layouts, riding
//!   the same length-prefixed framing as the viewd wire (the shared
//!   [`arv_viewd::codec`]); every decode path is fuzz-hardened.
//! * [`wire`] — the Unix-socket transport: [`wire::FleetWireServer`]
//!   serving a controller, [`wire::FleetClient`] for peripheries and
//!   rollup readers.
//!
//! Failure semantics mirror the single-host watchdog: sequence gaps
//! demand FULL resyncs; silent hosts are flagged partitioned and served
//! last-good (rollups carry a degraded flag); a controller failover
//! restores the journal and is healed host-by-host as resyncs land.
//!
//! The controller itself is replicated: a primary streams every
//! accepted journal record to hot standbys over REPL frames, a
//! file-backed lease ([`arv_persist::lease`]) with monotone controller
//! epochs governs leadership, and every ACK/ROLLUP carries the issuing
//! controller's epoch so peripheries and readers fence frames from a
//! deposed primary. Peripheries ride [`wire::FleetFailoverClient`] to
//! walk a configured controller list on send/ACK failure and enforce
//! pushed `rate_burst` as a local token bucket, coalescing (never
//! dropping) diffs while the bucket is dry.

// Production code must not panic on a recoverable fault: unwraps are
// confined to tests.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod controller;
pub mod periphery;
pub mod protocol;
pub mod wire;

pub use controller::{
    FleetController, FleetExplain, FleetMetrics, FleetMetricsSnapshot, HostCausalEvent,
    HostEventKind, SharedLease,
};
pub use periphery::{AckDisposition, Periphery, PeripheryStats};
pub use protocol::{
    decode_frame, encode_ack, encode_delta, encode_hello, encode_policy, encode_query, encode_repl,
    encode_rollup, Ack, ClusterRollup, Delta, DeltaEntry, FleetPolicy, Frame, Hello, HostSummary,
    PressurePoint, Query, Repl, Rollup, RollupFrame, SpanStamp, TenantRollup, MAX_FLEET_FRAME,
    OP_ACK, OP_DELTA, OP_HELLO, OP_POLICY, OP_QUERY, OP_REPL, OP_ROLLUP, QUERY_CLUSTER,
    QUERY_FLIGHT, QUERY_STATS, QUERY_TENANT, QUERY_TOPK, REPL_PEER,
};
pub use wire::{
    FailoverClientStats, FailoverPolicy, FleetClient, FleetFailoverClient, FleetWireServer,
};
