//! Minimal direct FFI over the handful of Linux syscalls the readiness
//! reactor needs: `epoll`, `eventfd`, and vectored writes.
//!
//! The workspace is offline and carries no `libc` crate, so the reactor
//! declares the few `extern "C"` signatures it needs against the C
//! library directly. Everything unsafe is confined to this module; the
//! rest of the crate sees only the safe [`Epoll`], [`EventFd`] and
//! [`writev_fd`] wrappers, which translate failures into `io::Error`
//! via `errno` exactly as std does.
//!
//! Only the constants and operations the reactor actually uses are
//! bound — this is deliberately not a general-purpose binding layer.

use std::io;
use std::os::unix::io::RawFd;

/// Readiness: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// Condition: an error is pending on the fd.
pub const EPOLLERR: u32 = 0x008;
/// Condition: hangup — the peer closed its end entirely.
pub const EPOLLHUP: u32 = 0x010;
/// Condition: the peer shut down its write half (half-close). Reported
/// without this flag being requested on some kernels, so the reactor
/// always treats it as "drain then close".
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// One epoll readiness record: an event mask plus the caller's opaque
/// 64-bit tag (the reactor stores connection-slab slot indices there).
///
/// The kernel ABI packs this struct on x86_64 (and only there), which
/// glibc mirrors with `__attribute__((packed))`; the `cfg_attr` keeps
/// the layout byte-identical on both shapes of the ABI.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Debug)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness/condition flags.
    pub events: u32,
    /// Caller-owned tag returned verbatim with each readiness record.
    pub data: u64,
}

impl EpollEvent {
    /// An empty (zeroed) record, used to size `epoll_wait` buffers.
    pub const fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

#[repr(C)]
struct IoVec {
    iov_base: *const u8,
    iov_len: usize,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance: one readiness queue, closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // translated to errno by cvt.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    /// Register `fd` for `events`, tagging readiness records with `tag`.
    pub fn add(&self, fd: RawFd, events: u32, tag: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, tag)
    }

    /// Change the interest mask (and tag) of an already-registered fd.
    pub fn modify(&self, fd: RawFd, events: u32, tag: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, tag)
    }

    /// Deregister `fd`. Harmless if the fd was never registered.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, tag: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: tag };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning (and ignores it entirely for EPOLL_CTL_DEL).
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Block up to `timeout_ms` for readiness; fills `events` from the
    /// front and returns how many records landed. A timeout returns
    /// `Ok(0)`; `EINTR` is retried internally so callers never see it.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the events pointer and capacity describe a live,
            // exclusively borrowed slice for the duration of the call.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this struct and closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

/// An owned eventfd used to wake a blocked `epoll_wait` from another
/// thread (connection handoff, shutdown). Nonblocking on both ends.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Create a nonblocking, close-on-exec eventfd with counter zero.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: eventfd takes no pointers; errors map through errno.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw fd, for registration with an [`Epoll`].
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Bump the counter, making the fd readable. A full counter
    /// (`EAGAIN`) already means "wake pending", so it is not an error.
    pub fn signal(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: the 8-byte buffer lives across the call; eventfd
        // writes require exactly 8 bytes.
        let n = unsafe { write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
        if n == 8 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::WouldBlock {
            return Ok(());
        }
        Err(err)
    }

    /// Reset the counter so the fd stops reading ready. Pending wakes
    /// collapse into one drain — exactly the semantics a wakeup needs.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: the 8-byte buffer lives across the call.
        let _ = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this struct and closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

/// Write up to [`MAX_IOVECS`] buffers to `fd` in one syscall, returning
/// the number of bytes accepted. `Ok(0)` is only possible for empty
/// input; partial writes are normal and the caller resumes mid-buffer.
pub fn writev_fd(fd: RawFd, bufs: &[&[u8]]) -> io::Result<usize> {
    if bufs.is_empty() {
        return Ok(0);
    }
    let iov: Vec<IoVec> = bufs
        .iter()
        .take(MAX_IOVECS)
        .map(|b| IoVec {
            iov_base: b.as_ptr(),
            iov_len: b.len(),
        })
        .collect();
    // SAFETY: every iovec points into a slice borrowed for the duration
    // of the call, and iovcnt matches the vector length.
    let n = unsafe { writev(fd, iov.as_ptr(), iov.len() as i32) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Most buffers a single [`writev_fd`] call will batch. Far below the
/// kernel's IOV_MAX (1024); big enough to drain several queued
/// responses per syscall.
pub const MAX_IOVECS: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn writev_partial_batches() {
        let (a, mut b) = UnixStream::pair().unwrap();
        let n = writev_fd(a.as_raw_fd(), &[b"abc", b"", b"defg"]).unwrap();
        assert_eq!(n, 7);
        let mut got = [0u8; 7];
        b.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"abcdefg");
        assert_eq!(writev_fd(a.as_raw_fd(), &[]).unwrap(), 0);
    }

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), EPOLLIN, 42).unwrap();
        let mut buf = [EpollEvent::zeroed(); 4];
        // Nothing signalled yet: wait times out empty.
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0);
        ev.signal().unwrap();
        ev.signal().unwrap(); // coalesces with the first
        let n = ep.wait(&mut buf, 1000).unwrap();
        assert_eq!(n, 1);
        let tag = buf[0].data;
        assert_eq!(tag, 42);
        ev.drain();
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0, "drained fd is quiet");
    }

    #[test]
    fn epoll_reports_socket_readability() {
        let (a, b) = UnixStream::pair().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(a.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 7).unwrap();
        let mut buf = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0);
        writev_fd(b.as_raw_fd(), &[b"he", b"llo"]).unwrap();
        let n = ep.wait(&mut buf, 1000).unwrap();
        assert_eq!(n, 1);
        let mask = buf[0].events;
        assert_ne!(mask & EPOLLIN, 0);
        let mut got = [0u8; 5];
        let mut ar = &a;
        ar.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello");
        // Peer half-close surfaces as RDHUP/HUP readiness.
        drop(b);
        let n = ep.wait(&mut buf, 1000).unwrap();
        assert_eq!(n, 1);
        let mask = buf[0].events;
        assert_ne!(mask & (EPOLLRDHUP | EPOLLHUP | EPOLLIN), 0);
        ep.delete(a.as_raw_fd()).unwrap();
    }
}
