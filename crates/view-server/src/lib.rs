//! `arv-viewd`: a concurrent view-serving daemon over adaptive resource
//! views.
//!
//! The paper's kernel keeps per-container *effective* CPU/memory views
//! current (Algorithms 1–2) and answers `sysconf`/procfs queries from
//! them (§2.2); its evaluation prices a query at ~5 µs (§5.4). This crate
//! is the user-space serving layer for those views:
//!
//! * [`server::ViewServer`] — registry of live [`arv_resview::NsCell`]s,
//!   **sharded** by cgroup-id hash so concurrent lookups don't contend on
//!   one lock, each entry carrying a **generation-stamped render cache**
//!   ([`cache::RenderCache`]): a rendered `/proc/cpuinfo` or
//!   `/proc/meminfo` image is reused until the cell's seqlock generation
//!   moves, and every render draws all its numbers from one untorn
//!   [`arv_resview::ViewSnapshot`] — a served image can never mix the CPU
//!   count of one update with the memory size of another;
//! * [`server::ViewClient`] — the in-process query handle (file reads
//!   and `sysconf`);
//! * [`wire`] — a length-prefixed request/response protocol over a
//!   Unix-domain socket for out-of-process consumers, with
//!   [`wire::WireServer`] and [`wire::WireClient`];
//! * [`metrics`] — lock-free counters (queries, cache hits/misses, wire
//!   traffic) and nanosecond latency histograms built on
//!   [`arv_sim_core::stats::Histogram`].

#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod server;
pub mod shard;
pub mod wire;

pub use cache::{CachedImage, PathId, RenderCache};
pub use metrics::{Metrics, MetricsSnapshot};
pub use server::{HostSpec, ViewClient, ViewImage, ViewServer, CONTAINER_PATHS};
pub use shard::{ContainerEntry, ShardedRegistry};
pub use wire::{WireClient, WireResponse, WireServer};
