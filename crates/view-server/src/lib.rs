//! `arv-viewd`: a concurrent view-serving daemon over adaptive resource
//! views.
//!
//! The paper's kernel keeps per-container *effective* CPU/memory views
//! current (Algorithms 1–2) and answers `sysconf`/procfs queries from
//! them (§2.2); its evaluation prices a query at ~5 µs (§5.4). This crate
//! is the user-space serving layer for those views:
//!
//! * [`server::ViewServer`] — registry of live [`arv_resview::NsCell`]s,
//!   **sharded** by cgroup-id hash so concurrent lookups don't contend on
//!   one lock, each entry carrying a **generation-stamped render cache**
//!   ([`cache::RenderCache`]): a rendered `/proc/cpuinfo` or
//!   `/proc/meminfo` image is reused until the cell's seqlock generation
//!   moves, and every render draws all its numbers from one untorn
//!   [`arv_resview::ViewSnapshot`] — a served image can never mix the CPU
//!   count of one update with the memory size of another;
//! * [`server::ViewClient`] — the in-process query handle (file reads
//!   and `sysconf`);
//! * [`wire`] — a length-prefixed request/response protocol over a
//!   Unix-domain socket for out-of-process consumers, with
//!   [`wire::WireServer`], the thin [`wire::WireClient`] and the
//!   fault-tolerant [`wire::RobustWireClient`] (deadlines, seeded
//!   backoff, reconnect, circuit breaker, last-good fallback);
//! * [`reactor`] — the readiness-driven serving engine under the wire
//!   tier (and the fleet controller's): N sharded epoll event loops
//!   over the direct-FFI [`sys`] module, nonblocking connection slabs,
//!   incremental frame reassembly, vectored batched writes, and
//!   queue-depth + write-stall slow-client eviction, configured by the
//!   validated [`config::ServerConfig`] builder;
//! * [`metrics`] — lock-free counters (queries, cache hits/misses, wire
//!   traffic, stale/degraded serves) and latency/staleness histograms
//!   built on [`arv_sim_core::stats::Histogram`].
//!
//! # Fault tolerance
//!
//! The server stamps every published view with an update-timer tick
//! ([`server::ViewServer::advance_tick`]) and judges each query against
//! a [`arv_resview::StalenessPolicy`]: views past the staleness budget
//! are answered from the conservative fallback (Algorithm 1's lower
//! bound, the memory soft limit) and flagged degraded in both the
//! in-process [`server::ViewImage`] and the wire status byte.

// Production code must not panic on a recoverable fault: unwraps are
// confined to tests.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod config;
pub mod metrics;
pub mod reactor;
pub mod server;
pub mod shard;
pub mod sys;
pub mod wire;

pub use cache::{CachedImage, PathId, RenderCache};
pub use codec::{
    read_frame, server_read_frame, write_frame, FrameDecoder, RetryPolicy, ServerRead, Transport,
    TransportStats, Verdict, WireError,
};
pub use config::{ServerConfig, ServerConfigBuilder};
pub use metrics::{Metrics, MetricsSnapshot};
pub use reactor::{EvictReason, FrameService, Reactor, Response, ResponseBody, ServiceAction};
pub use server::{HostSpec, ViewClient, ViewImage, ViewServer, CONTAINER_PATHS};
pub use shard::{ContainerEntry, ShardedRegistry};
pub use wire::{
    parse_response, RobustWireClient, WireClient, WireClientStats, WireLimits, WireResponse,
    WireServer, DEFAULT_RETRY_AFTER_MS, HOST_CALLER, KIND_READ, KIND_STATS, KIND_SYSCONF,
    KIND_TRACE, MAX_REQUEST, MAX_RESPONSE, STATUS_NOT_FOUND, STATUS_OK, STATUS_OK_DEGRADED,
    STATUS_OK_SHED,
};
