//! Shared length-prefixed frame codec and the one client transport.
//!
//! Every wire conversation in the project — viewd's request/response
//! protocol and the fleet's delta/policy stream — moves frames shaped
//! `u32le len | payload` over a byte stream. This module is the single
//! implementation of that framing, used by both [`crate::wire`] and the
//! `arv-fleet` crate, so the two protocols cannot drift apart in how
//! they bound, read, or write frames.
//!
//! Three layers live here:
//!
//! * the blocking frame functions ([`read_frame`], [`write_frame`],
//!   [`server_read_frame`]) used by thread-per-connection paths and
//!   thin clients;
//! * [`FrameDecoder`], the incremental reassembler the readiness
//!   reactor ([`crate::reactor`]) feeds from nonblocking reads — it
//!   accepts bytes at arbitrary boundaries and yields exactly the
//!   frames the one-shot reader would;
//! * [`Transport`] + [`RetryPolicy`], the single client-side
//!   failure-handling engine (deadlines, seeded-jitter backoff,
//!   reconnect, target failover, circuit breaker, shed-hint pacing,
//!   epoch-fence reaction) that `RobustWireClient` and the fleet's
//!   `FleetFailoverClient` wrap with protocol-typed surfaces.
//!
//! The codec deliberately knows nothing about payload contents: opcode
//! and body layouts belong to the protocol layers above. Failures
//! surface as [`WireError`], which converts to and from `io::Error` so
//! call sites written against the old stringly errors keep compiling.

use arv_sim_core::SimRng;
use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Typed failure surface of the wire client/server APIs.
///
/// Replaces the former stringly `io::Error::other(...)` returns; the
/// `From` conversions in both directions let call sites that still
/// speak `io::Result` migrate mechanically (`?` keeps working).
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket operation failed (connect, read, write,
    /// deadline expiry).
    Io(io::Error),
    /// A frame violated the protocol — oversized length prefix, short
    /// header, unknown status byte. Framing can no longer be trusted
    /// and the connection must be dropped.
    Malformed(String),
    /// Every attempt was refused under overload (`OK_SHED`); the server
    /// is alive and asked us back in `retry_after_ms` milliseconds.
    Shed {
        /// The server's retry-after hint, milliseconds.
        retry_after_ms: u64,
    },
    /// The peer answered from a deposed controller epoch; the caller
    /// must re-handshake with the new leader before resending.
    Fenced {
        /// The stale epoch the peer answered with.
        epoch: u64,
    },
    /// The peer closed the conversation mid-request.
    Disconnected,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o failure: {e}"),
            WireError::Malformed(why) => write!(f, "malformed frame: {why}"),
            WireError::Shed { retry_after_ms } => {
                write!(f, "request shed; retry after {retry_after_ms}ms")
            }
            WireError::Fenced { epoch } => {
                write!(f, "peer fenced at stale controller epoch {epoch}")
            }
            WireError::Disconnected => write!(f, "peer closed the conversation"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        match e {
            WireError::Io(inner) => inner,
            WireError::Malformed(why) => io::Error::new(io::ErrorKind::InvalidData, why),
            WireError::Disconnected => {
                io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed the conversation")
            }
            other => io::Error::other(other.to_string()),
        }
    }
}

/// Write one frame: a `u32le` length prefix followed by the payload.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)
}

/// Read one frame from a blocking stream.
///
/// `Ok(None)` is a clean EOF *between* frames (the peer ended the
/// conversation). A length prefix above `max` is `InvalidData` — the
/// cap bounds the allocation a corrupt or malicious prefix can force.
pub fn read_frame(stream: &mut impl Read, max: u32) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        // Clean EOF between frames ends the conversation.
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit {max}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One poll of the server-side frame reader.
pub enum ServerRead {
    /// A whole request frame.
    Frame(Vec<u8>),
    /// Peer closed between frames.
    Eof,
    /// No frame started within the poll window; check the stop flag.
    Idle,
}

/// Read a request frame on a stream with a read timeout. A timeout
/// *before any byte of the length prefix* is an idle poll; once a frame
/// has started, keep reading through timeouts so a slow writer can't
/// corrupt framing.
pub fn server_read_frame(stream: &mut UnixStream, max: u32) -> io::Result<ServerRead> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(ServerRead::Eof)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => got += n,
            Err(e)
                if got == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(ServerRead::Idle);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit {max}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ServerRead::Frame(payload))
}

/// Incremental frame reassembler for nonblocking reads.
///
/// The reactor feeds whatever bytes `read(2)` returned — length
/// prefixes and payloads torn at arbitrary boundaries — and pops whole
/// frames as they complete. For any byte stream, the sequence of frames
/// (and the point of first error) is identical to what the one-shot
/// [`read_frame`] would produce over the same bytes; the proptests at
/// the bottom of this module pin that equivalence.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
    max: u32,
}

impl FrameDecoder {
    /// A decoder refusing frames larger than `max` payload bytes.
    pub fn new(max: u32) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max,
        }
    }

    /// Append freshly read bytes (any split, including empty).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, if one has fully arrived.
    ///
    /// `Ok(None)` means "need more bytes". An oversized length prefix
    /// is [`WireError::Malformed`]: the stream can no longer be framed
    /// and the connection must be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(&self.buf[self.start..self.start + 4]);
        let len = u32::from_le_bytes(len_buf);
        if len > self.max {
            return Err(WireError::Malformed(format!(
                "frame of {len} bytes exceeds limit {}",
                self.max
            )));
        }
        let need = 4 + len as usize;
        if avail < need {
            self.compact();
            return Ok(None);
        }
        let frame = self.buf[self.start + 4..self.start + need].to_vec();
        self.start += need;
        self.compact();
        Ok(Some(frame))
    }

    /// Whether bytes of an unfinished frame (or prefix) are buffered —
    /// EOF now would tear a frame rather than end the conversation.
    pub fn has_partial(&self) -> bool {
        self.buf.len() > self.start
    }

    /// Reclaim consumed prefix space once it dominates the buffer, so a
    /// long-lived connection doesn't grow its buffer without bound.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Retry, backoff, deadline and circuit-breaker policy for the shared
/// [`Transport`] (and thus for `RobustWireClient` and the fleet's
/// failover client, which are thin wrappers over it).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries per request (first attempt + retries). At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff pause.
    pub max_backoff: Duration,
    /// Read/write deadline applied to the socket for each attempt.
    pub request_timeout: Duration,
    /// Consecutive failed *requests* (attempts exhausted) that open the
    /// circuit breaker. Zero disables the breaker entirely — the right
    /// setting for failover transports that walk a target list instead
    /// of failing fast.
    pub breaker_threshold: u32,
    /// Number of subsequent requests that fail fast (serving the cached
    /// fallback) while the breaker is open. Counted in requests, not
    /// wall-clock, so behaviour is deterministic under test.
    pub breaker_cooldown: u32,
    /// Seed for the jitter applied to backoff pauses; same seed, same
    /// pause sequence.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            request_timeout: Duration::from_millis(500),
            breaker_threshold: 3,
            breaker_cooldown: 8,
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy with microsecond-scale backoffs for tests, so failure
    /// paths run in milliseconds instead of seconds.
    pub fn fast_test() -> RetryPolicy {
        RetryPolicy {
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(5),
            request_timeout: Duration::from_millis(200),
            ..RetryPolicy::default()
        }
    }

    /// Pause before retry number `retry` (0-based), with ±30% seeded
    /// jitter to decorrelate clients hammering a recovering server.
    pub fn backoff(&self, retry: u32, rng: &mut SimRng) -> Duration {
        let doubled = self.base_backoff.saturating_mul(1u32 << retry.min(10));
        doubled.min(self.max_backoff).mul_f64(rng.jitter(0.3))
    }
}

/// How a response classifier judges one raw frame. The [`Transport`]
/// turns each verdict into the matching recovery policy, so shed
/// pacing, malformed-frame reconnects and epoch fencing are implemented
/// exactly once.
#[derive(Debug)]
pub enum Verdict {
    /// The frame answers the request: return it to the caller.
    Accept,
    /// The server shed the request under overload. Back off per its
    /// hint (not the exponential schedule), never count it toward the
    /// circuit breaker, and retry.
    ShedBackoff {
        /// The server's retry-after hint, milliseconds.
        retry_after_ms: u64,
    },
    /// The frame is structurally untrustable: drop the connection so
    /// the next attempt starts on a fresh one.
    Malformed(String),
    /// The peer answered from a deposed epoch: advance to the next
    /// target and fail the request immediately — the caller must
    /// re-handshake before anything else makes sense.
    Fenced {
        /// The stale epoch the peer answered with.
        epoch: u64,
    },
}

/// Counters describing one [`Transport`]'s life so far. Client wrappers
/// project these into their legacy stats shapes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Requests that got an accepted response.
    pub successes: u64,
    /// Requests that exhausted every attempt.
    pub failures: u64,
    /// Individual retry attempts (beyond each request's first try).
    pub retries: u64,
    /// Connections established, the first one included.
    pub connects: u64,
    /// Times the transport moved to the next target in its list.
    pub target_switches: u64,
    /// Times the circuit breaker opened.
    pub breaker_opens: u64,
    /// Requests failed fast because the breaker was open.
    pub fast_fails: u64,
    /// Shed responses received; each backs off per the server's hint.
    pub shed_backoffs: u64,
}

/// The one client-side failure-handling engine: lazy connect with
/// per-attempt deadlines, bounded exponential backoff under
/// deterministic seeded jitter, automatic reconnect, ordered target
/// failover, a request-counted circuit breaker, shed-hint pacing and
/// epoch-fence reaction.
///
/// Protocol-typed clients (`RobustWireClient`, `FleetFailoverClient`)
/// wrap this with their own encode/decode and caching; the retry
/// machinery itself is written once, here.
#[derive(Debug)]
pub struct Transport {
    targets: Vec<PathBuf>,
    policy: RetryPolicy,
    max_frame: u32,
    active: usize,
    stream: Option<UnixStream>,
    rng: SimRng,
    ever_connected: bool,
    reconnected: bool,
    consecutive_failures: u32,
    breaker_remaining: u32,
    stats: TransportStats,
}

impl Transport {
    /// A transport walking `targets` (primary first) under `policy`,
    /// bounding response frames at `max_frame` bytes. Does not connect
    /// yet — a client can start before any server does.
    pub fn new(
        targets: impl IntoIterator<Item = impl AsRef<Path>>,
        policy: RetryPolicy,
        max_frame: u32,
    ) -> Transport {
        Transport {
            targets: targets
                .into_iter()
                .map(|p| p.as_ref().to_path_buf())
                .collect(),
            rng: SimRng::seed_from_u64(policy.jitter_seed),
            policy,
            max_frame,
            active: 0,
            stream: None,
            ever_connected: false,
            reconnected: false,
            consecutive_failures: 0,
            breaker_remaining: 0,
            stats: TransportStats::default(),
        }
    }

    /// A transport with a single target (no failover list).
    pub fn single(target: impl AsRef<Path>, policy: RetryPolicy, max_frame: u32) -> Transport {
        Transport::new([target.as_ref()], policy, max_frame)
    }

    /// Counters so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// The configured retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Whether a connection is currently established.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Whether the transport has connected at least once in its life.
    pub fn ever_connected(&self) -> bool {
        self.ever_connected
    }

    /// Whether the circuit breaker is currently failing requests fast.
    pub fn breaker_open(&self) -> bool {
        self.breaker_remaining > 0
    }

    /// The target currently aimed at (index into the configured list).
    pub fn active_target(&self) -> usize {
        self.active
    }

    /// True exactly once after the conversation moved to a fresh
    /// connection; callers with session state must re-handshake.
    pub fn take_reconnected(&mut self) -> bool {
        std::mem::take(&mut self.reconnected)
    }

    /// Drop the current connection and aim at the next target in the
    /// list. Called internally on I/O failure; callers invoke it on
    /// protocol-level rejections (a fenced or not-leader answer) where
    /// the bytes flowed fine but the peer is the wrong one.
    pub fn advance_target(&mut self) {
        self.stream = None;
        if !self.targets.is_empty() {
            self.active = (self.active + 1) % self.targets.len();
        }
        self.stats.target_switches += 1;
    }

    fn connect_active(&mut self) -> Result<(), WireError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let path = self
            .targets
            .get(self.active)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "empty target list"))?;
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(self.policy.request_timeout))?;
        stream.set_write_timeout(Some(self.policy.request_timeout))?;
        self.stream = Some(stream);
        self.stats.connects += 1;
        self.ever_connected = true;
        self.reconnected = true;
        Ok(())
    }

    /// One write/read exchange on the live connection (connecting if
    /// needed), with no retries.
    fn exchange_once(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
        self.connect_active()?;
        let stream = self.stream.as_mut().ok_or(WireError::Disconnected)?;
        write_frame(stream, frame)?;
        match read_frame(stream, self.max_frame)? {
            Some(resp) => Ok(resp),
            // EOF mid-conversation: the peer died or dropped us —
            // indistinguishable from a crash, so treated like one.
            None => Err(WireError::Disconnected),
        }
    }

    /// Send one frame, accepting whatever answers (no classification).
    pub fn request(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
        self.request_classified(frame, |_| Verdict::Accept)
    }

    /// Send one frame under the full failure-handling pipeline, letting
    /// `classify` judge each raw response frame.
    ///
    /// On success the accepted frame's bytes are returned. Errors tell
    /// the caller what category of trouble exhausted the attempts:
    /// [`WireError::Shed`] when every answer was an overload refusal,
    /// [`WireError::Fenced`] on a stale-epoch answer (not retried — the
    /// caller must re-handshake), and `Io`/`Malformed`/`Disconnected`
    /// for transport-level failure.
    pub fn request_classified(
        &mut self,
        frame: &[u8],
        mut classify: impl FnMut(&[u8]) -> Verdict,
    ) -> Result<Vec<u8>, WireError> {
        if self.breaker_remaining > 0 {
            self.breaker_remaining -= 1;
            self.stats.fast_fails += 1;
            return Err(WireError::Io(io::Error::other("circuit breaker open")));
        }
        let mut last_err: Option<WireError> = None;
        let mut last_shed: Option<u64> = None;
        let mut skip_backoff = false;
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                self.stats.retries += 1;
                if !skip_backoff {
                    let pause = self.policy.backoff(attempt - 1, &mut self.rng);
                    std::thread::sleep(pause);
                }
            }
            skip_backoff = false;
            match self.exchange_once(frame) {
                Ok(bytes) => match classify(&bytes) {
                    Verdict::Accept => {
                        self.consecutive_failures = 0;
                        self.stats.successes += 1;
                        return Ok(bytes);
                    }
                    Verdict::ShedBackoff { retry_after_ms } => {
                        // Overload, not failure: the server is alive and
                        // saying when to come back. Back off per its
                        // hint (instead of the exponential schedule)
                        // and never count it toward the breaker.
                        self.stats.shed_backoffs += 1;
                        self.consecutive_failures = 0;
                        let hint = Duration::from_millis(retry_after_ms.max(1));
                        std::thread::sleep(hint.min(self.policy.max_backoff));
                        last_shed = Some(retry_after_ms);
                        skip_backoff = true;
                    }
                    Verdict::Malformed(why) => {
                        // The stream can't be trusted any more: drop it
                        // so the next attempt reconnects from scratch.
                        self.advance_target();
                        last_err = Some(WireError::Malformed(why));
                    }
                    Verdict::Fenced { epoch } => {
                        // A deposed peer keeps answering with its stale
                        // epoch; retrying against it is useless. Move
                        // to the next target and surface immediately so
                        // the caller can re-handshake.
                        self.advance_target();
                        self.stats.failures += 1;
                        return Err(WireError::Fenced { epoch });
                    }
                },
                Err(e) => {
                    self.advance_target();
                    last_err = Some(e);
                }
            }
        }
        if last_err.is_none() {
            if let Some(retry_after_ms) = last_shed {
                // Every attempt was shed: still not a failure (and
                // never a breaker count) — the caller decides whether
                // to degrade to a cache or surface the hint.
                return Err(WireError::Shed { retry_after_ms });
            }
        }
        self.stats.failures += 1;
        self.consecutive_failures += 1;
        if self.policy.breaker_threshold > 0
            && self.consecutive_failures >= self.policy.breaker_threshold
        {
            self.consecutive_failures = 0;
            self.breaker_remaining = self.policy.breaker_cooldown;
            self.stats.breaker_opens += 1;
        }
        Err(last_err.unwrap_or(WireError::Disconnected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut rd = Cursor::new(buf);
        assert_eq!(read_frame(&mut rd, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut rd, 64).unwrap().unwrap(), b"");
        assert!(read_frame(&mut rd, 64).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_is_invalid_data() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        let err = read_frame(&mut Cursor::new(buf), 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_payload_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(buf.len() - 4);
        let err = read_frame(&mut Cursor::new(buf), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn decoder_reassembles_byte_by_byte() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"first").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, b"second frame").unwrap();
        let mut dec = FrameDecoder::new(64);
        let mut frames = Vec::new();
        for byte in stream {
            dec.feed(&[byte]);
            while let Some(frame) = dec.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(
            frames,
            vec![b"first".to_vec(), Vec::new(), b"second frame".to_vec()]
        );
        assert!(!dec.has_partial());
    }

    #[test]
    fn decoder_rejects_oversized_prefix() {
        let mut dec = FrameDecoder::new(8);
        dec.feed(&1000u32.to_le_bytes());
        assert!(matches!(dec.next_frame(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn decoder_reports_partial_frames() {
        let mut dec = FrameDecoder::new(64);
        assert!(!dec.has_partial());
        dec.feed(&[5, 0]);
        assert!(dec.next_frame().unwrap().is_none());
        assert!(dec.has_partial(), "half a length prefix is a torn frame");
        dec.feed(&[0, 0, b'a', b'b', b'c', b'd', b'e']);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"abcde");
        assert!(!dec.has_partial());
    }

    #[test]
    fn decoder_compacts_long_streams() {
        let mut payload = vec![0xABu8; 1024];
        let mut dec = FrameDecoder::new(2048);
        for round in 0..64 {
            payload[0] = round as u8;
            let mut frame = Vec::new();
            write_frame(&mut frame, &payload).unwrap();
            dec.feed(&frame);
            let got = dec.next_frame().unwrap().unwrap();
            assert_eq!(got[0], round as u8);
            assert_eq!(got.len(), 1024);
        }
        // The consumed prefix must not accumulate forever.
        assert!(dec.buf.len() < 8 * 1024, "buffer grew to {}", dec.buf.len());
    }

    #[test]
    fn wire_error_converts_both_ways() {
        let io_err: io::Error = WireError::Malformed("bad header".into()).into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        let io_err: io::Error = WireError::Disconnected.into();
        assert_eq!(io_err.kind(), io::ErrorKind::UnexpectedEof);
        let wire: WireError = io::Error::from(io::ErrorKind::TimedOut).into();
        assert!(matches!(wire, WireError::Io(_)));
        let shed: io::Error = WireError::Shed { retry_after_ms: 7 }.into();
        assert!(shed.to_string().contains("7ms"));
    }

    mod decoder_props {
        use super::*;
        use proptest::prelude::*;

        /// What a frame stream decodes to, frame list plus whether the
        /// stream ended in an error (oversized prefix) or a torn frame.
        #[derive(Debug, PartialEq)]
        struct Decoded {
            frames: Vec<Vec<u8>>,
            error: bool,
            torn: bool,
        }

        /// Ground truth: the one-shot blocking reader over a cursor.
        ///
        /// One wrinkle: `read_frame`'s `read_exact` on the length prefix
        /// collapses a torn 1–3 byte prefix into "clean EOF" (both are
        /// `UnexpectedEof` to it). Torn-ness is therefore classified by
        /// bytes actually consumed, which is byte-precise — and is what
        /// the incremental decoder reports via `has_partial`.
        fn one_shot(bytes: &[u8], max: u32) -> Decoded {
            let mut rd = Cursor::new(bytes);
            let mut frames: Vec<Vec<u8>> = Vec::new();
            loop {
                match read_frame(&mut rd, max) {
                    Ok(Some(f)) => frames.push(f),
                    Ok(None) => {
                        let consumed: usize = frames.iter().map(|f| 4 + f.len()).sum();
                        return Decoded {
                            frames,
                            error: false,
                            torn: consumed < bytes.len(),
                        };
                    }
                    Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                        return Decoded {
                            frames,
                            error: false,
                            torn: true,
                        }
                    }
                    Err(_) => {
                        return Decoded {
                            frames,
                            error: true,
                            torn: false,
                        }
                    }
                }
            }
        }

        /// The incremental decoder fed the same bytes at the given
        /// split points.
        fn incremental(bytes: &[u8], splits: &[usize], max: u32) -> Decoded {
            let mut dec = FrameDecoder::new(max);
            let mut frames = Vec::new();
            let mut cursor = 0usize;
            let mut boundaries: Vec<usize> = splits.iter().map(|s| s % (bytes.len() + 1)).collect();
            boundaries.push(bytes.len());
            boundaries.sort_unstable();
            for b in boundaries {
                if b > cursor {
                    dec.feed(&bytes[cursor..b]);
                    cursor = b;
                }
                loop {
                    match dec.next_frame() {
                        Ok(Some(f)) => frames.push(f),
                        Ok(None) => break,
                        Err(_) => {
                            return Decoded {
                                frames,
                                error: true,
                                torn: false,
                            }
                        }
                    }
                }
            }
            Decoded {
                frames,
                error: false,
                torn: dec.has_partial(),
            }
        }

        /// A stream of valid frames, optionally followed by corruption:
        /// an oversized prefix or a truncated tail.
        fn frame_stream() -> impl Strategy<Value = Vec<u8>> {
            let frames = prop::collection::vec(prop::collection::vec(0u8..255, 0..40), 0..6);
            (frames, 0u8..4, prop::collection::vec(0u8..255, 0..8)).prop_map(
                |(frames, tail_kind, garbage)| {
                    let mut stream = Vec::new();
                    for f in &frames {
                        write_frame(&mut stream, f).unwrap();
                    }
                    match tail_kind {
                        // 0: clean stream as-is.
                        1 => {
                            // Oversized prefix then garbage.
                            stream.extend_from_slice(&(1_000_000u32).to_le_bytes());
                            stream.extend_from_slice(&garbage);
                        }
                        2 => {
                            // Truncated valid frame (torn mid-payload).
                            let mut frame = Vec::new();
                            write_frame(&mut frame, &[0x5A; 24]).unwrap();
                            let keep = frame.len().saturating_sub(1 + garbage.len() % 20);
                            stream.extend_from_slice(&frame[..keep]);
                        }
                        3 => {
                            // Raw garbage tail (may or may not frame).
                            stream.extend_from_slice(&garbage);
                        }
                        _ => {}
                    }
                    stream
                },
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            /// For any stream (valid or corrupt) and any byte-boundary
            /// splits, the incremental decoder yields exactly the
            /// frames and the error classification of the one-shot
            /// codec — and never panics.
            #[test]
            fn incremental_matches_one_shot(
                stream in frame_stream(),
                splits in prop::collection::vec(0usize..4096, 0..12),
            ) {
                let expected = one_shot(&stream, 256);
                let got = incremental(&stream, &splits, 256);
                prop_assert_eq!(expected, got);
            }

            /// Pure fuzz: arbitrary bytes at arbitrary splits never
            /// panic the decoder, and still match the one-shot reader.
            #[test]
            fn garbage_never_panics(
                bytes in prop::collection::vec(0u8..255, 0..200),
                splits in prop::collection::vec(0usize..256, 0..8),
            ) {
                let expected = one_shot(&bytes, 64);
                let got = incremental(&bytes, &splits, 64);
                prop_assert_eq!(expected, got);
            }
        }
    }
}
