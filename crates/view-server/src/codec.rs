//! Shared length-prefixed frame codec.
//!
//! Every wire conversation in the project — viewd's request/response
//! protocol and the fleet's delta/policy stream — moves frames shaped
//! `u32le len | payload` over a byte stream. This module is the single
//! implementation of that framing, used by both [`crate::wire`] and the
//! `arv-fleet` crate, so the two protocols cannot drift apart in how
//! they bound, read, or write frames.
//!
//! The codec deliberately knows nothing about payload contents: opcode
//! and body layouts belong to the protocol layers above.

use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;

/// Write one frame: a `u32le` length prefix followed by the payload.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)
}

/// Read one frame from a blocking stream.
///
/// `Ok(None)` is a clean EOF *between* frames (the peer ended the
/// conversation). A length prefix above `max` is `InvalidData` — the
/// cap bounds the allocation a corrupt or malicious prefix can force.
pub fn read_frame(stream: &mut impl Read, max: u32) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        // Clean EOF between frames ends the conversation.
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit {max}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One poll of the server-side frame reader.
pub enum ServerRead {
    /// A whole request frame.
    Frame(Vec<u8>),
    /// Peer closed between frames.
    Eof,
    /// No frame started within the poll window; check the stop flag.
    Idle,
}

/// Read a request frame on a stream with a read timeout. A timeout
/// *before any byte of the length prefix* is an idle poll; once a frame
/// has started, keep reading through timeouts so a slow writer can't
/// corrupt framing.
pub fn server_read_frame(stream: &mut UnixStream, max: u32) -> io::Result<ServerRead> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(ServerRead::Eof)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => got += n,
            Err(e)
                if got == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(ServerRead::Idle);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit {max}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ServerRead::Frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut rd = Cursor::new(buf);
        assert_eq!(read_frame(&mut rd, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut rd, 64).unwrap().unwrap(), b"");
        assert!(read_frame(&mut rd, 64).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_is_invalid_data() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        let err = read_frame(&mut Cursor::new(buf), 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_payload_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(buf.len() - 4);
        let err = read_frame(&mut Cursor::new(buf), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
