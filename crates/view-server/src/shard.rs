//! The sharded container registry.
//!
//! A single `RwLock<HashMap>` serializes registration against every
//! concurrent query's lookup; with hundreds of containers and many query
//! threads that lock becomes the daemon's hot spot. The registry is
//! therefore split into `N` independent shards keyed by a multiplicative
//! hash of the [`CgroupId`], so lookups for different containers contend
//! only when they land on the same shard. Each entry pairs the
//! container's live [`NsCell`] with its [`RenderCache`].

use arv_cgroups::CgroupId;
use arv_resview::NsCell;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, RwLock};

use crate::cache::RenderCache;

/// One registered container: its view cell plus its render cache.
#[derive(Debug)]
pub struct ContainerEntry {
    /// The live namespace cell (shared with the updater).
    pub cell: Arc<NsCell>,
    /// Rendered-image cache for this container.
    pub cache: RenderCache,
    /// Last staleness-clock tick at which a degraded-fallback decision
    /// was traced for this container, deduplicating the provenance
    /// record to one event pair per container per tick no matter how
    /// many queries hit the degraded path. `u64::MAX` = never.
    pub degraded_tick: AtomicU64,
}

type Shard = RwLock<HashMap<CgroupId, Arc<ContainerEntry>>>;

/// Registry of containers, sharded by `CgroupId` hash.
#[derive(Debug)]
pub struct ShardedRegistry {
    shards: Box<[Shard]>,
    mask: u64,
}

impl ShardedRegistry {
    /// A registry with `shards` shards, rounded up to a power of two (so
    /// shard selection is a mask, not a division).
    pub fn new(shards: usize) -> ShardedRegistry {
        let n = shards.max(1).next_power_of_two();
        ShardedRegistry {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: n as u64 - 1,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, id: CgroupId) -> &Shard {
        // Fibonacci (multiplicative) hashing spreads sequential ids —
        // the common case, since the cgroup manager hands them out in
        // order — across shards instead of clustering them.
        let h = (u64::from(id.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h & self.mask) as usize]
    }

    /// Insert a container. Panics if it is already present (registration
    /// is owned by one control path, as in the kernel).
    pub fn insert(&self, id: CgroupId, cell: Arc<NsCell>) {
        let entry = Arc::new(ContainerEntry {
            cell,
            cache: RenderCache::new(),
            degraded_tick: AtomicU64::new(u64::MAX),
        });
        let prev = self
            .shard_for(id)
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, entry);
        assert!(prev.is_none(), "container {id:?} already in registry");
    }

    /// Remove a container's entry, returning it if present.
    pub fn remove(&self, id: CgroupId) -> Option<Arc<ContainerEntry>> {
        self.shard_for(id)
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id)
    }

    /// Look up a container (read-locks only that container's shard).
    pub fn get(&self, id: CgroupId) -> Option<Arc<ContainerEntry>> {
        self.shard_for(id)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }

    /// Total containers across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether no container is registered.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.read().unwrap_or_else(|e| e.into_inner()).is_empty())
    }

    /// All registered ids (unordered; for iteration by updaters/tools).
    pub fn ids(&self) -> Vec<CgroupId> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap_or_else(|e| e.into_inner())
                    .keys()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_cgroups::Bytes;
    use arv_resview::LiveRegistry;
    use arv_resview::{CpuBounds, EffectiveCpuConfig, EffectiveMemory, EffectiveMemoryConfig};

    fn mk_cell(live: &LiveRegistry, id: CgroupId) -> Arc<NsCell> {
        live.register(
            id,
            CpuBounds { lower: 2, upper: 8 },
            EffectiveCpuConfig::default(),
            EffectiveMemory::new(
                Bytes::from_mib(500),
                Bytes::from_gib(1),
                Bytes::from_mib(64),
                Bytes::from_mib(128),
                EffectiveMemoryConfig::default(),
            ),
        )
    }

    #[test]
    fn insert_get_remove() {
        let live = LiveRegistry::new();
        let reg = ShardedRegistry::new(8);
        for i in 0..50 {
            reg.insert(CgroupId(i), mk_cell(&live, CgroupId(i)));
        }
        assert_eq!(reg.len(), 50);
        assert_eq!(reg.ids().len(), 50);
        assert!(reg.get(CgroupId(17)).is_some());
        assert!(reg.get(CgroupId(99)).is_none());
        assert!(reg.remove(CgroupId(17)).is_some());
        assert!(reg.get(CgroupId(17)).is_none());
        assert_eq!(reg.len(), 49);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedRegistry::new(0).shard_count(), 1);
        assert_eq!(ShardedRegistry::new(5).shard_count(), 8);
        assert_eq!(ShardedRegistry::new(16).shard_count(), 16);
    }

    #[test]
    fn sequential_ids_spread_over_shards() {
        let live = LiveRegistry::new();
        let reg = ShardedRegistry::new(8);
        for i in 0..64 {
            reg.insert(CgroupId(i), mk_cell(&live, CgroupId(i)));
        }
        let occupied = reg
            .shards
            .iter()
            .filter(|s| !s.read().unwrap().is_empty())
            .count();
        assert!(occupied >= 6, "ids clustered on {occupied} of 8 shards");
    }

    #[test]
    #[should_panic]
    fn double_insert_panics() {
        let live = LiveRegistry::new();
        let reg = ShardedRegistry::new(4);
        reg.insert(CgroupId(1), mk_cell(&live, CgroupId(1)));
        let second = LiveRegistry::new();
        reg.insert(CgroupId(1), mk_cell(&second, CgroupId(1)));
    }
}
