//! Generation-stamped render cache.
//!
//! `arv-viewd` renders whole virtual-file images (a `/proc/cpuinfo` with
//! one stanza per effective CPU, a `/proc/meminfo` sized to the effective
//! view, …). Rendering is tens of times more expensive than answering, so
//! images are cached per `(container, path)` — and invalidated not by
//! clocks or explicit flushes but by the namespace cell's seqlock
//! generation: a cached image is served only while its stamp equals the
//! cell's current even generation. Any published update moves the
//! generation, and the next query re-renders from a fresh untorn
//! [`arv_resview::ViewSnapshot`]. A torn image can never be cached
//! because renders take all inputs from one snapshot.
//!
//! The set of renderable paths is closed, so paths are interned into a
//! [`PathId`] once at the query boundary and the cache is a fixed array
//! indexed by it — the hit path does a handful of byte compares and an
//! array index instead of hashing a heap string under the lock.

use std::sync::{Arc, Mutex};

/// A renderable container path, interned (see
/// [`crate::server::CONTAINER_PATHS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathId {
    /// `/proc/cpuinfo`
    Cpuinfo,
    /// `/proc/meminfo`
    Meminfo,
    /// `/proc/stat`
    Stat,
    /// `/sys/devices/system/cpu/online`
    OnlineCpus,
    /// cgroup v2 `cpu.max`
    CpuMax,
    /// cgroup v2 `memory.max`
    MemoryMax,
}

impl PathId {
    /// Number of distinct renderable paths.
    pub const COUNT: usize = 6;

    /// Intern a path string (`None` for paths the daemon cannot render).
    pub fn resolve(path: &str) -> Option<PathId> {
        match path {
            "/proc/cpuinfo" => Some(PathId::Cpuinfo),
            "/proc/meminfo" => Some(PathId::Meminfo),
            "/proc/stat" => Some(PathId::Stat),
            "/sys/devices/system/cpu/online" => Some(PathId::OnlineCpus),
            "cpu.max" => Some(PathId::CpuMax),
            "memory.max" => Some(PathId::MemoryMax),
            _ => None,
        }
    }

    /// The canonical path string.
    pub fn as_str(self) -> &'static str {
        match self {
            PathId::Cpuinfo => "/proc/cpuinfo",
            PathId::Meminfo => "/proc/meminfo",
            PathId::Stat => "/proc/stat",
            PathId::OnlineCpus => "/sys/devices/system/cpu/online",
            PathId::CpuMax => "cpu.max",
            PathId::MemoryMax => "memory.max",
        }
    }
}

/// A rendered file image plus the generation it was rendered from.
#[derive(Debug, Clone)]
pub struct CachedImage {
    /// The cell generation whose snapshot produced this image.
    pub generation: u64,
    /// The rendered bytes (shared, so serving is one `Arc` clone).
    pub image: Arc<String>,
}

/// Per-container cache of rendered images, indexed by interned path.
#[derive(Debug)]
pub struct RenderCache {
    entries: Mutex<[Option<CachedImage>; PathId::COUNT]>,
}

impl Default for RenderCache {
    fn default() -> RenderCache {
        RenderCache {
            entries: Mutex::new(std::array::from_fn(|_| None)),
        }
    }
}

impl RenderCache {
    /// An empty cache.
    pub fn new() -> RenderCache {
        RenderCache::default()
    }

    /// The cached image for `path`, but only if it was rendered at
    /// exactly `generation` — anything else is stale (or from a future
    /// writer this reader hasn't observed) and must be re-rendered.
    pub fn get(&self, path: PathId, generation: u64) -> Option<Arc<String>> {
        // Poison recovery: a panicking renderer can't leave the whole
        // container unservable. Every cached value is internally
        // consistent (written in one assignment), so reading past a
        // poison marker is safe.
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries[path as usize]
            .as_ref()
            .filter(|c| c.generation == generation)
            .map(|c| Arc::clone(&c.image))
    }

    /// Store an image rendered at `generation`. A racing older render
    /// never overwrites a newer one: stamps only move forward, so cached
    /// generations are monotone per path.
    pub fn put(&self, path: PathId, generation: u64, image: Arc<String>) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        match &mut entries[path as usize] {
            Some(existing) if existing.generation > generation => {}
            slot => *slot = Some(CachedImage { generation, image }),
        }
    }

    /// Number of cached paths.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|e| e.is_some())
            .count()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_round_trips_every_path() {
        for path in crate::server::CONTAINER_PATHS {
            let id = PathId::resolve(path).expect("known path");
            assert_eq!(id.as_str(), path);
        }
        assert!(PathId::resolve("/proc/uptime").is_none());
    }

    #[test]
    fn serves_only_matching_generation() {
        let cache = RenderCache::new();
        cache.put(PathId::Cpuinfo, 4, Arc::new("gen4".into()));
        assert_eq!(cache.get(PathId::Cpuinfo, 4).unwrap().as_str(), "gen4");
        assert!(cache.get(PathId::Cpuinfo, 6).is_none());
        assert!(cache.get(PathId::Meminfo, 4).is_none());
    }

    #[test]
    fn stale_put_never_overwrites_newer() {
        let cache = RenderCache::new();
        cache.put(PathId::Stat, 6, Arc::new("new".into()));
        cache.put(PathId::Stat, 4, Arc::new("old".into())); // racing old render
        assert!(cache.get(PathId::Stat, 4).is_none());
        assert_eq!(cache.get(PathId::Stat, 6).unwrap().as_str(), "new");
    }

    #[test]
    fn newer_put_replaces() {
        let cache = RenderCache::new();
        cache.put(PathId::Stat, 4, Arc::new("old".into()));
        cache.put(PathId::Stat, 6, Arc::new("new".into()));
        assert_eq!(cache.get(PathId::Stat, 6).unwrap().as_str(), "new");
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }
}
