//! Daemon-wide counters and latency histograms.
//!
//! Everything here is updated from hot query paths, so all state is
//! atomic — recording never takes a lock. Latencies are recorded in
//! nanoseconds into the power-of-two [`Histogram`] from
//! `arv_sim_core::stats`, matching the resolution the paper's §5.4
//! overhead table needs (microsecond-scale means, order-of-magnitude
//! tails).

use arv_sim_core::stats::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared metrics for one [`crate::server::ViewServer`].
#[derive(Debug, Default)]
pub struct Metrics {
    /// Queries answered (file reads and sysconf calls, in-process or wire).
    pub queries: AtomicU64,
    /// Queries answered from a cached render.
    pub cache_hits: AtomicU64,
    /// Queries that had to render (cold path or stale generation).
    pub cache_misses: AtomicU64,
    /// Queries that failed (unknown container, unknown path/key).
    pub failures: AtomicU64,
    /// Requests decoded off the wire.
    pub wire_requests: AtomicU64,
    /// Malformed or failed wire requests.
    pub wire_errors: AtomicU64,
    /// Wire frames rejected before decoding (oversized, bad framing).
    pub wire_rejected: AtomicU64,
    /// Connections the wire listener accepted.
    pub connections_accepted: AtomicU64,
    /// Connections dropped without service (e.g. thread-spawn failure).
    pub connections_dropped: AtomicU64,
    /// Container queries answered from a view older than one tick but
    /// within the staleness budget (served as-is).
    pub stale_serves: AtomicU64,
    /// Container queries answered with the conservative fallback view
    /// because the live view aged past the staleness budget.
    pub degraded_serves: AtomicU64,
    /// Connections evicted because they stalled past the write deadline.
    /// Under the reactor engine this also counts queue-depth evictions
    /// (see `conns_evicted_backlog`) — both are "client too slow".
    pub conns_evicted_slow: AtomicU64,
    /// Connections evicted specifically because their outbound response
    /// queue exceeded the configured byte cap (reactor engine only; a
    /// subset of `conns_evicted_slow`).
    pub conns_evicted_backlog: AtomicU64,
    /// Requests refused with `OK_SHED` under overload (render-miss /
    /// STATS / TRACE work deferred to protect cached reads).
    pub requests_shed: AtomicU64,
    /// Containers whose restored views were clamped against the fresh
    /// cgroup hierarchy during the last warm restart.
    pub restore_reconciled_containers: AtomicU64,
    /// Journal records discarded as torn or corrupt during restore.
    pub journal_truncated_records: AtomicU64,
    /// Store errors the host's journal has absorbed (absolute value,
    /// mirrored from the monitor daemon's durability ladder).
    pub journal_io_errors: AtomicU64,
    /// Bytes held in the flagged in-memory fallback journal (gauge;
    /// zero while the on-disk journal is durable).
    pub journal_fallback_bytes: AtomicU64,
    /// Whether the host's journal durability is currently lost (0/1
    /// gauge).
    pub durability_lost: AtomicU64,
    /// Age (in update-timer ticks) of every served container view.
    pub staleness_age: Histogram,
    /// Ticks from warm restart until the first Fresh-health serve.
    pub recovery_latency: Histogram,
    /// Nanoseconds per query, cached-hit path.
    pub hit_latency: Histogram,
    /// Nanoseconds per query, render (miss) path.
    pub miss_latency: Histogram,
    /// Nanoseconds per wire request, measured from frame decode to
    /// response encode (excludes socket transfer time). Separates
    /// protocol overhead from the in-process query cost recorded in
    /// `hit_latency`/`miss_latency`.
    pub wire_latency: Histogram,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Point-in-time copy of every counter (values may be mutually
    /// slightly out of sync under concurrent load; each is individually
    /// exact at its read instant).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            wire_requests: self.wire_requests.load(Ordering::Relaxed),
            wire_errors: self.wire_errors.load(Ordering::Relaxed),
            wire_rejected: self.wire_rejected.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_dropped: self.connections_dropped.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
            degraded_serves: self.degraded_serves.load(Ordering::Relaxed),
            conns_evicted_slow: self.conns_evicted_slow.load(Ordering::Relaxed),
            conns_evicted_backlog: self.conns_evicted_backlog.load(Ordering::Relaxed),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            restore_reconciled_containers: self
                .restore_reconciled_containers
                .load(Ordering::Relaxed),
            journal_truncated_records: self.journal_truncated_records.load(Ordering::Relaxed),
            journal_io_errors: self.journal_io_errors.load(Ordering::Relaxed),
            journal_fallback_bytes: self.journal_fallback_bytes.load(Ordering::Relaxed),
            durability_lost: self.durability_lost.load(Ordering::Relaxed) != 0,
            staleness_age_mean: self.staleness_age.mean(),
            staleness_age_p99: self.staleness_age.quantile(0.99),
            recovery_latency_mean: self.recovery_latency.mean(),
            recovery_latency_p99: self.recovery_latency.quantile(0.99),
            hit_latency_ns: self.hit_latency.mean(),
            miss_latency_ns: self.miss_latency.mean(),
            hit_p99_ns: self.hit_latency.quantile(0.99),
            miss_p99_ns: self.miss_latency.quantile(0.99),
            wire_latency_ns: self.wire_latency.mean(),
            wire_p99_ns: self.wire_latency.quantile(0.99),
        }
    }
}

/// Plain-value copy of [`Metrics`] for reports and assertions.
///
/// Equality compares the integer counters only — the derived `f64`
/// means are excluded because float equality is `NaN`-hostile (a
/// snapshot holding any `NaN` mean would compare unequal to itself,
/// breaking `assert_eq!(snap, snap)` and reflexivity-assuming
/// collections) and because exact float comparison of means is
/// meaningless across independently-timed runs. Use
/// [`MetricsSnapshot::counters_eq`] explicitly where intent matters.
#[derive(Debug, Clone, Copy)]
pub struct MetricsSnapshot {
    /// Queries answered.
    pub queries: u64,
    /// Cached-render answers.
    pub cache_hits: u64,
    /// Fresh-render answers.
    pub cache_misses: u64,
    /// Failed queries.
    pub failures: u64,
    /// Wire requests decoded.
    pub wire_requests: u64,
    /// Wire requests rejected.
    pub wire_errors: u64,
    /// Wire frames rejected before decoding.
    pub wire_rejected: u64,
    /// Wire connections accepted.
    pub connections_accepted: u64,
    /// Wire connections dropped without service.
    pub connections_dropped: u64,
    /// Queries served from a stale (within-budget) view.
    pub stale_serves: u64,
    /// Queries served with the conservative fallback view.
    pub degraded_serves: u64,
    /// Connections evicted for stalling past the write deadline (the
    /// reactor folds queue-depth evictions in here too).
    pub conns_evicted_slow: u64,
    /// Connections evicted for exceeding the outbound-queue byte cap
    /// (subset of `conns_evicted_slow`; reactor engine only).
    pub conns_evicted_backlog: u64,
    /// Requests refused with `OK_SHED` under overload.
    pub requests_shed: u64,
    /// Containers reconciled (clamped) during the last warm restart.
    pub restore_reconciled_containers: u64,
    /// Journal records discarded as torn or corrupt during restore.
    pub journal_truncated_records: u64,
    /// Store errors the host's journal has absorbed.
    pub journal_io_errors: u64,
    /// Bytes in the flagged in-memory fallback journal.
    pub journal_fallback_bytes: u64,
    /// Whether the host's journal durability is currently lost.
    pub durability_lost: bool,
    /// Mean age, in ticks, of served container views.
    pub staleness_age_mean: f64,
    /// 99th-percentile bucket edge of served view age.
    pub staleness_age_p99: u64,
    /// Mean ticks from warm restart to the first Fresh serve.
    pub recovery_latency_mean: f64,
    /// 99th-percentile bucket edge of recovery latency, in ticks.
    pub recovery_latency_p99: u64,
    /// Mean nanoseconds on the hit path.
    pub hit_latency_ns: f64,
    /// Mean nanoseconds on the miss path.
    pub miss_latency_ns: f64,
    /// 99th-percentile bucket edge on the hit path.
    pub hit_p99_ns: u64,
    /// 99th-percentile bucket edge on the miss path.
    pub miss_p99_ns: u64,
    /// Mean nanoseconds per wire request (decode to encode).
    pub wire_latency_ns: f64,
    /// 99th-percentile bucket edge of wire request latency.
    pub wire_p99_ns: u64,
}

impl MetricsSnapshot {
    /// Exact equality over the integer counters and histogram quantile
    /// edges, ignoring the float means.
    pub fn counters_eq(&self, other: &MetricsSnapshot) -> bool {
        self.queries == other.queries
            && self.cache_hits == other.cache_hits
            && self.cache_misses == other.cache_misses
            && self.failures == other.failures
            && self.wire_requests == other.wire_requests
            && self.wire_errors == other.wire_errors
            && self.wire_rejected == other.wire_rejected
            && self.connections_accepted == other.connections_accepted
            && self.connections_dropped == other.connections_dropped
            && self.stale_serves == other.stale_serves
            && self.degraded_serves == other.degraded_serves
            && self.conns_evicted_slow == other.conns_evicted_slow
            && self.conns_evicted_backlog == other.conns_evicted_backlog
            && self.requests_shed == other.requests_shed
            && self.restore_reconciled_containers == other.restore_reconciled_containers
            && self.journal_truncated_records == other.journal_truncated_records
            && self.journal_io_errors == other.journal_io_errors
            && self.journal_fallback_bytes == other.journal_fallback_bytes
            && self.durability_lost == other.durability_lost
            && self.recovery_latency_p99 == other.recovery_latency_p99
            && self.staleness_age_p99 == other.staleness_age_p99
            && self.hit_p99_ns == other.hit_p99_ns
            && self.miss_p99_ns == other.miss_p99_ns
            && self.wire_p99_ns == other.wire_p99_ns
    }
}

impl PartialEq for MetricsSnapshot {
    fn eq(&self, other: &MetricsSnapshot) -> bool {
        self.counters_eq(other)
    }
}

impl Eq for MetricsSnapshot {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = Metrics::new();
        m.queries.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(2, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        m.hit_latency.record(500);
        let s = m.snapshot();
        assert_eq!(s.queries, 3);
        assert_eq!(s.cache_hits + s.cache_misses, 3);
        assert!(s.hit_latency_ns > 0.0);
        assert_eq!(s.failures, 0);
    }

    #[test]
    fn robustness_counters_round_trip() {
        let m = Metrics::new();
        m.stale_serves.fetch_add(2, Ordering::Relaxed);
        m.degraded_serves.fetch_add(1, Ordering::Relaxed);
        m.connections_accepted.fetch_add(5, Ordering::Relaxed);
        m.connections_dropped.fetch_add(1, Ordering::Relaxed);
        m.wire_rejected.fetch_add(3, Ordering::Relaxed);
        m.staleness_age.record(0);
        m.staleness_age.record(6);
        let s = m.snapshot();
        assert_eq!(s.stale_serves, 2);
        assert_eq!(s.degraded_serves, 1);
        assert_eq!(s.connections_accepted, 5);
        assert_eq!(s.connections_dropped, 1);
        assert_eq!(s.wire_rejected, 3);
        assert!(s.staleness_age_mean > 0.0);
        assert!(s.staleness_age_p99 >= 6);
    }

    #[test]
    fn recovery_and_shed_counters_round_trip() {
        let m = Metrics::new();
        m.conns_evicted_slow.fetch_add(2, Ordering::Relaxed);
        m.requests_shed.fetch_add(7, Ordering::Relaxed);
        m.restore_reconciled_containers
            .fetch_add(3, Ordering::Relaxed);
        m.journal_truncated_records.fetch_add(1, Ordering::Relaxed);
        m.recovery_latency.record(2);
        let s = m.snapshot();
        assert_eq!(s.conns_evicted_slow, 2);
        assert_eq!(s.requests_shed, 7);
        assert_eq!(s.restore_reconciled_containers, 3);
        assert_eq!(s.journal_truncated_records, 1);
        assert!(s.recovery_latency_p99 >= 2);
        let fresh = Metrics::new().snapshot();
        assert!(!s.counters_eq(&fresh), "shed counters must affect equality");
    }

    #[test]
    fn durability_counters_round_trip() {
        let m = Metrics::new();
        m.journal_io_errors.fetch_add(4, Ordering::Relaxed);
        m.journal_fallback_bytes.store(2_048, Ordering::Relaxed);
        m.durability_lost.store(1, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.journal_io_errors, 4);
        assert_eq!(s.journal_fallback_bytes, 2_048);
        assert!(s.durability_lost);
        let fresh = Metrics::new().snapshot();
        assert!(
            !s.counters_eq(&fresh),
            "durability counters must affect equality"
        );
        // Healing clears the gauges but keeps the error count.
        m.journal_fallback_bytes.store(0, Ordering::Relaxed);
        m.durability_lost.store(0, Ordering::Relaxed);
        let healed = m.snapshot();
        assert!(!healed.durability_lost);
        assert_eq!(healed.journal_io_errors, 4);
    }

    #[test]
    fn wire_latency_is_its_own_histogram() {
        let m = Metrics::new();
        m.wire_latency.record(1_500);
        m.wire_latency.record(3_000);
        let s = m.snapshot();
        assert!(s.wire_latency_ns > 0.0);
        assert!(s.wire_p99_ns >= 3_000);
        // Recording wire latency must not pollute the query-path
        // histograms that feed the §5.4 overhead table.
        assert_eq!(s.hit_p99_ns, 0);
        assert_eq!(s.miss_p99_ns, 0);
    }

    #[test]
    fn snapshot_equality_ignores_float_means() {
        // Equality is over counters only: a snapshot whose float means
        // were forced to NaN still equals its pre-poisoning self.
        let a = Metrics::new().snapshot();
        let b = Metrics::new().snapshot();
        assert_eq!(a, b);
        assert!(a.counters_eq(&b));
        let mut poisoned = a;
        poisoned.hit_latency_ns = f64::NAN;
        poisoned.staleness_age_mean = f64::NAN;
        assert_eq!(poisoned, a, "NaN means must not break equality");
        assert_eq!(poisoned, poisoned, "snapshot must equal itself");
        let m = Metrics::new();
        m.queries.fetch_add(1, Ordering::Relaxed);
        assert_ne!(m.snapshot(), a);
    }
}
