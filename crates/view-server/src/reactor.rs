//! Readiness-driven reactor: the shared serving engine both daemons
//! ride (viewd's wire tier here, the fleet controller's in `arv-fleet`).
//!
//! The original wire tier dedicated one blocking thread to every
//! connection; past a few hundred clients the scheduler, not the
//! serving work, dominates tail latency — the same quota-amplified
//! context-switch pathology the related "CPU-Limits kill Performance"
//! measurements show. The reactor replaces it with N sharded event
//! loops (one epoll fd each, via the direct-FFI [`crate::sys`] module),
//! each owning a slab of nonblocking connections:
//!
//! * **Incremental reassembly** — reads land in a per-connection
//!   [`FrameDecoder`]; frames torn at any byte boundary decode exactly
//!   as the blocking codec would.
//! * **Vectored, batched writes** — responses queue per connection and
//!   drain through `writev`, several frames per syscall; a cached file
//!   image rides as a shared [`Arc<String>`] slice, so a hot read is
//!   served with **zero per-request body copies**.
//! * **Admission control** — the [`ServerConfig`] connection cap and
//!   per-connection token buckets are enforced here; the protocol
//!   service only learns *whether* a request arrived pressured and
//!   answers with its own shed policy.
//! * **Slow-client eviction** — the threaded tier's write-deadline kill
//!   becomes two triggers: an outbound queue-depth cap (a peer letting
//!   bytes pile up) and a write-stall clock (a peer accepting nothing
//!   at all past the deadline).
//! * **Prompt shutdown** — a stop flag checked per frame and per wake,
//!   with an eventfd to kick loops blocked in `epoll_wait`, so even a
//!   fully busy reactor stops within one poll interval.
//!
//! Protocols plug in through [`FrameService`]: one `handle` call per
//! whole request frame, returning a [`Response`] or closing the
//! connection. The service never sees sockets, readiness or queues.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::codec::FrameDecoder;
use crate::config::{ServerConfig, TokenBucket};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLIN, EPOLLOUT, EPOLLRDHUP, MAX_IOVECS};

/// Epoll tag reserved for each loop's wake eventfd.
const WAKE_TAG: u64 = u64::MAX;
/// How long one `epoll_wait` may block; bounds shutdown latency and the
/// eviction-scan period on an otherwise idle loop.
const POLL_MS: i32 = 10;
/// Minimum spacing of the slow-client eviction scan on a busy loop.
const SCAN_EVERY: Duration = Duration::from_millis(5);
/// Read chunk per `read(2)` call.
const READ_CHUNK: usize = 16 * 1024;

/// Why the reactor evicted a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// The peer accepted no bytes at all for longer than the write
    /// deadline (the classic slow-client kill).
    WriteStall,
    /// The peer's outbound queue outgrew the configured cap — it reads
    /// too slowly for the traffic it requests.
    QueueDepth,
}

/// Body of a [`Response`]: how the bytes after the protocol header are
/// owned.
#[derive(Debug, Clone)]
pub enum ResponseBody {
    /// No body bytes beyond the head.
    Empty,
    /// Bytes built for this response.
    Owned(Vec<u8>),
    /// A shared cached image ([`crate::server::ViewImage`]'s backing
    /// string); queued and written in place — never copied per request.
    Shared(Arc<String>),
}

impl ResponseBody {
    fn len(&self) -> usize {
        match self {
            ResponseBody::Empty => 0,
            ResponseBody::Owned(v) => v.len(),
            ResponseBody::Shared(s) => s.len(),
        }
    }
}

/// One framed response: the `u32le` length prefix plus protocol head,
/// followed by an optionally shared body. Written with `writev`, so a
/// shared body is never copied into a contiguous frame.
#[derive(Debug, Clone)]
pub struct Response {
    head: Vec<u8>,
    body: ResponseBody,
}

impl Response {
    /// Frame `head_payload` (the protocol header bytes) plus `body`;
    /// the length prefix covers both.
    pub fn new(head_payload: &[u8], body: ResponseBody) -> Response {
        let total = head_payload.len() + body.len();
        let mut head = Vec::with_capacity(4 + head_payload.len());
        head.extend_from_slice(&(total as u32).to_le_bytes());
        head.extend_from_slice(head_payload);
        Response { head, body }
    }

    /// Frame a fully built payload (no shared body).
    pub fn from_payload(payload: Vec<u8>) -> Response {
        let mut head = Vec::with_capacity(4);
        head.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        Response {
            head,
            body: ResponseBody::Owned(payload),
        }
    }

    /// Total bytes this response puts on the wire (prefix included).
    pub fn wire_len(&self) -> usize {
        self.head.len() + self.body.len()
    }
}

/// What the protocol service wants done with one request frame.
#[derive(Debug)]
pub enum ServiceAction {
    /// Queue this response on the connection.
    Reply(Response),
    /// Stop serving the connection (after flushing what's queued):
    /// framing can no longer be trusted, or the protocol is done.
    Close,
}

/// A protocol plugged into the reactor: called once per complete
/// request frame, plus lifecycle notifications for metrics.
///
/// `handle` runs on an event-loop thread and must not block on I/O;
/// everything the current services do (render-cache lookups, metric
/// expositions) is memory-bound, matching the paper's ~µs query cost.
pub trait FrameService: Send + Sync + 'static {
    /// Largest accepted request frame (the decoder drops the
    /// connection past it).
    fn max_request(&self) -> u32;

    /// Serve one whole request frame. `pressured` is true when the
    /// connection's token bucket ran dry — the service decides what
    /// that means (viewd sheds tier-2 work; the fleet ignores it).
    fn handle(&self, request: &[u8], pressured: bool) -> ServiceAction;

    /// A connection was accepted (before the cap check).
    fn on_accepted(&self) {}

    /// A connection was refused: over the cap, or its loop's slab full.
    fn on_conn_rejected(&self) {}

    /// A connection died with untrustable framing (oversized prefix or
    /// EOF mid-frame).
    fn on_frame_rejected(&self) {}

    /// A connection was evicted as a slow client.
    fn on_evicted(&self, reason: EvictReason) {
        let _ = reason;
    }
}

/// What one queued outbound chunk borrows its bytes from.
#[derive(Debug)]
enum OutChunk {
    Owned(Vec<u8>),
    Shared(Arc<String>),
}

impl OutChunk {
    fn as_bytes(&self) -> &[u8] {
        match self {
            OutChunk::Owned(v) => v,
            OutChunk::Shared(s) => s.as_bytes(),
        }
    }
}

/// Per-connection state inside a loop's slab.
struct Conn {
    stream: UnixStream,
    decoder: FrameDecoder,
    bucket: TokenBucket,
    out: VecDeque<OutChunk>,
    /// Bytes of the front chunk already written.
    front_written: usize,
    /// Total unwritten bytes across the queue.
    queued_bytes: usize,
    /// When the most recent write returned `WouldBlock` with the queue
    /// nonempty; cleared on any progress.
    stalled_since: Option<Instant>,
    /// Interest mask currently registered with epoll.
    interest: u32,
    /// Stop reading; close once the queue drains.
    closing: bool,
}

impl Conn {
    fn new(stream: UnixStream, cfg: &ServerConfig, max_request: u32) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(max_request),
            bucket: TokenBucket::new(cfg.rate_burst, cfg.rate_refill_per_sec),
            out: VecDeque::new(),
            front_written: 0,
            queued_bytes: 0,
            stalled_since: None,
            interest: EPOLLIN | EPOLLRDHUP,
            closing: false,
        }
    }

    fn push_response(&mut self, resp: Response) {
        self.queued_bytes += resp.wire_len();
        self.out.push_back(OutChunk::Owned(resp.head));
        match resp.body {
            ResponseBody::Empty => {}
            ResponseBody::Owned(v) => {
                if !v.is_empty() {
                    self.out.push_back(OutChunk::Owned(v));
                }
            }
            ResponseBody::Shared(s) => {
                if !s.is_empty() {
                    self.out.push_back(OutChunk::Shared(s));
                }
            }
        }
    }

    /// Drop `n` written bytes off the front of the queue.
    fn consume(&mut self, mut n: usize) {
        self.queued_bytes = self.queued_bytes.saturating_sub(n);
        while n > 0 {
            let Some(front) = self.out.front() else { break };
            let remaining = front.as_bytes().len() - self.front_written;
            if n >= remaining {
                n -= remaining;
                self.front_written = 0;
                self.out.pop_front();
            } else {
                self.front_written += n;
                n = 0;
            }
        }
    }

    /// The interest mask this connection should have registered now.
    fn desired_interest(&self) -> u32 {
        let mut mask = 0;
        if !self.closing {
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if !self.out.is_empty() {
            mask |= EPOLLOUT;
        }
        mask
    }
}

/// Outcome of one readiness pass over a connection.
enum Fate {
    Keep,
    Close,
    /// Close and count as untrustable framing.
    Reject,
    Evict(EvictReason),
}

/// State shared between the accept thread and one event loop.
struct LoopShared {
    epoll: Epoll,
    wake: EventFd,
    inbox: Mutex<Vec<UnixStream>>,
}

/// A running sharded reactor bound to one Unix socket.
#[derive(Debug)]
pub struct Reactor {
    stop: Arc<AtomicBool>,
    socket_path: PathBuf,
    accept_handle: Option<JoinHandle<()>>,
    loop_handles: Vec<JoinHandle<()>>,
    loops: Vec<Arc<LoopShared>>,
}

impl std::fmt::Debug for LoopShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopShared").finish_non_exhaustive()
    }
}

impl Reactor {
    /// Bind `socket_path` (removing any stale socket file first) and
    /// serve `service` on `config.loops` event loops until shut down.
    pub fn spawn(
        service: Arc<dyn FrameService>,
        socket_path: impl AsRef<Path>,
        config: ServerConfig,
    ) -> io::Result<Reactor> {
        config.validate()?;
        let socket_path = socket_path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&socket_path);
        let listener = UnixListener::bind(&socket_path)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));

        let mut loops = Vec::with_capacity(config.loops);
        let mut loop_handles = Vec::with_capacity(config.loops);
        for worker in 0..config.loops {
            let shared = Arc::new(LoopShared {
                epoll: Epoll::new()?,
                wake: EventFd::new()?,
                inbox: Mutex::new(Vec::new()),
            });
            shared.epoll.add(shared.wake.raw_fd(), EPOLLIN, WAKE_TAG)?;
            let handle = std::thread::Builder::new()
                .name(format!("arv-reactor-{worker}"))
                .spawn({
                    let shared = Arc::clone(&shared);
                    let service = Arc::clone(&service);
                    let stop = Arc::clone(&stop);
                    let active = Arc::clone(&active);
                    move || run_loop(&shared, service.as_ref(), &config, &stop, &active)
                })?;
            loops.push(shared);
            loop_handles.push(handle);
        }

        let accept_handle = std::thread::Builder::new()
            .name("arv-reactor-accept".into())
            .spawn({
                let loops = loops.clone();
                let stop = Arc::clone(&stop);
                move || run_accept(&listener, &loops, service.as_ref(), &config, &stop, &active)
            })?;

        Ok(Reactor {
            stop,
            socket_path,
            accept_handle: Some(accept_handle),
            loop_handles,
            loops,
        })
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// Stop accepting, kick every loop awake, join all threads, unlink
    /// the socket. Idempotent; prompt even when every loop is busy.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for l in &self.loops {
            let _ = l.wake.signal();
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.loop_handles.drain(..) {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The accept loop: admit or refuse, then hand the stream to the next
/// event loop round-robin.
fn run_accept(
    listener: &UnixListener,
    loops: &[Arc<LoopShared>],
    service: &dyn FrameService,
    config: &ServerConfig,
    stop: &AtomicBool,
    active: &AtomicUsize,
) {
    let mut rr = 0usize;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                service.on_accepted();
                // Connection cap: the app-level bound on the accept
                // backlog. Closing the stream is the refusal — the
                // peer sees EOF.
                if active.load(Ordering::Acquire) >= config.max_connections {
                    service.on_conn_rejected();
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    service.on_conn_rejected();
                    continue;
                }
                active.fetch_add(1, Ordering::AcqRel);
                let target = &loops[rr % loops.len()];
                rr = rr.wrapping_add(1);
                if let Ok(mut inbox) = target.inbox.lock() {
                    inbox.push(stream);
                } else {
                    active.fetch_sub(1, Ordering::AcqRel);
                    service.on_conn_rejected();
                    continue;
                }
                let _ = target.wake.signal();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

/// One event loop: wait for readiness, move bytes, serve frames.
fn run_loop(
    shared: &LoopShared,
    service: &dyn FrameService,
    config: &ServerConfig,
    stop: &AtomicBool,
    active: &AtomicUsize,
) {
    let mut slots: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events = vec![EpollEvent::zeroed(); 256];
    let mut read_buf = vec![0u8; READ_CHUNK];
    let mut last_scan = Instant::now();

    while let Ok(n) = shared.epoll.wait(&mut events, POLL_MS) {
        if stop.load(Ordering::Acquire) {
            break;
        }
        for ev in events.iter().take(n) {
            let mask = ev.events;
            let tag = ev.data;
            if tag == WAKE_TAG {
                shared.wake.drain();
                adopt_new_conns(shared, service, config, active, &mut slots, &mut free);
                continue;
            }
            let slot = tag as usize;
            let Some(conn) = slots.get_mut(slot).and_then(Option::as_mut) else {
                continue; // already closed this pass
            };
            let fate = handle_ready(conn, mask, service, config, stop, &mut read_buf);
            settle(shared, service, active, &mut slots, &mut free, slot, fate);
        }
        // Slow-client scan: cheap, so it runs on a short period, but
        // throttled so a hot loop doesn't pay it per wake.
        if last_scan.elapsed() >= SCAN_EVERY {
            last_scan = Instant::now();
            for slot in 0..slots.len() {
                let Some(conn) = slots.get_mut(slot).and_then(Option::as_mut) else {
                    continue;
                };
                let stalled = conn
                    .stalled_since
                    .is_some_and(|t| t.elapsed() >= config.write_deadline);
                if stalled {
                    settle(
                        shared,
                        service,
                        active,
                        &mut slots,
                        &mut free,
                        slot,
                        Fate::Evict(EvictReason::WriteStall),
                    );
                }
            }
        }
    }
    // Shutdown: every connection closes; peers see EOF, like the
    // threaded tier's join-and-drop.
    for slot in slots.iter_mut() {
        if slot.take().is_some() {
            active.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Register connections the accept thread handed over.
fn adopt_new_conns(
    shared: &LoopShared,
    service: &dyn FrameService,
    config: &ServerConfig,
    active: &AtomicUsize,
    slots: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
) {
    let streams = match shared.inbox.lock() {
        Ok(mut inbox) => std::mem::take(&mut *inbox),
        Err(_) => return,
    };
    for stream in streams {
        let slot = match free.pop() {
            Some(s) => s,
            None if slots.len() < config.slab_capacity => {
                slots.push(None);
                slots.len() - 1
            }
            None => {
                // Slab full: refuse the handoff, peer sees EOF.
                service.on_conn_rejected();
                active.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
        };
        let conn = Conn::new(stream, config, service.max_request());
        if shared
            .epoll
            .add(conn.stream.as_raw_fd(), conn.interest, slot as u64)
            .is_err()
        {
            service.on_conn_rejected();
            active.fetch_sub(1, Ordering::AcqRel);
            free.push(slot);
            continue;
        }
        slots[slot] = Some(conn);
    }
}

/// Apply a connection's fate: keep (with refreshed epoll interest) or
/// tear down with the right accounting.
fn settle(
    shared: &LoopShared,
    service: &dyn FrameService,
    active: &AtomicUsize,
    slots: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    slot: usize,
    fate: Fate,
) {
    match fate {
        Fate::Keep => {
            let Some(conn) = slots.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let desired = conn.desired_interest();
            if desired != conn.interest {
                conn.interest = desired;
                let _ = shared
                    .epoll
                    .modify(conn.stream.as_raw_fd(), desired, slot as u64);
            }
        }
        Fate::Close | Fate::Reject | Fate::Evict(_) => {
            let Some(conn) = slots.get_mut(slot).and_then(Option::take) else {
                return;
            };
            let _ = shared.epoll.delete(conn.stream.as_raw_fd());
            drop(conn);
            free.push(slot);
            active.fetch_sub(1, Ordering::AcqRel);
            match fate {
                Fate::Reject => service.on_frame_rejected(),
                Fate::Evict(reason) => service.on_evicted(reason),
                _ => {}
            }
        }
    }
}

/// One readiness pass: drain readable bytes into the decoder, serve
/// every complete frame, flush the outbound queue.
fn handle_ready(
    conn: &mut Conn,
    mask: u32,
    service: &dyn FrameService,
    config: &ServerConfig,
    stop: &AtomicBool,
    read_buf: &mut [u8],
) -> Fate {
    // Errors and hard hangups first; RDHUP alone still allows reading
    // the bytes the peer sent before half-closing, so it is left to the
    // read path's EOF handling.
    if mask & (crate::sys::EPOLLERR | crate::sys::EPOLLHUP) != 0 {
        return Fate::Close;
    }
    if mask & (EPOLLIN | EPOLLRDHUP) != 0 && !conn.closing {
        loop {
            match conn.stream.read(read_buf) {
                Ok(0) => {
                    // EOF mid-frame is torn framing, same accounting as
                    // an oversized prefix; EOF between frames is a
                    // clean end of conversation.
                    if conn.decoder.has_partial() {
                        return Fate::Reject;
                    }
                    conn.closing = true;
                    break;
                }
                Ok(n) => {
                    conn.decoder.feed(&read_buf[..n]);
                    match serve_frames(conn, service, stop) {
                        Some(fate) => return fate,
                        None => {
                            if conn.closing {
                                break;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Fate::Close,
            }
        }
    }
    match flush(conn) {
        Ok(()) => {}
        Err(_) => return Fate::Close,
    }
    if conn.queued_bytes > config.outbound_queue_cap {
        return Fate::Evict(EvictReason::QueueDepth);
    }
    if conn.closing && conn.out.is_empty() {
        return Fate::Close;
    }
    Fate::Keep
}

/// Serve every complete frame currently buffered. `Some(fate)` ends the
/// connection immediately; `None` keeps it (possibly marked closing).
fn serve_frames(conn: &mut Conn, service: &dyn FrameService, stop: &AtomicBool) -> Option<Fate> {
    loop {
        match conn.decoder.next_frame() {
            Ok(Some(frame)) => {
                // Checked per frame, not only per wake: a connection
                // with steady pipelined traffic must not hold shutdown
                // hostage. Dropping the request closes the connection;
                // the peer sees EOF like any other server failure.
                if stop.load(Ordering::Acquire) {
                    return Some(Fate::Close);
                }
                let pressured = !conn.bucket.take();
                match service.handle(&frame, pressured) {
                    ServiceAction::Reply(resp) => conn.push_response(resp),
                    ServiceAction::Close => {
                        conn.closing = true;
                        return None;
                    }
                }
            }
            Ok(None) => return None,
            Err(_) => return Some(Fate::Reject),
        }
    }
}

/// Drain the outbound queue with vectored writes until empty or the
/// socket stops accepting bytes. Tracks the write-stall clock.
fn flush(conn: &mut Conn) -> io::Result<()> {
    let fd = conn.stream.as_raw_fd();
    while !conn.out.is_empty() {
        let mut bufs: Vec<&[u8]> = Vec::with_capacity(MAX_IOVECS.min(conn.out.len()));
        for (i, chunk) in conn.out.iter().take(MAX_IOVECS).enumerate() {
            let bytes = chunk.as_bytes();
            if i == 0 {
                bufs.push(&bytes[conn.front_written..]);
            } else {
                bufs.push(bytes);
            }
        }
        match crate::sys::writev_fd(fd, &bufs) {
            Ok(0) => break,
            Ok(n) => {
                conn.consume(n);
                conn.stalled_since = None;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if conn.stalled_since.is_none() {
                    conn.stalled_since = Some(Instant::now());
                }
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.out.is_empty() {
        conn.stalled_since = None;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_frame, write_frame};
    use std::io::Write;
    use std::sync::atomic::AtomicU64;

    /// Echoes each frame back, uppercased; closes on the frame "quit";
    /// sheds (empty reply) when pressured. Counts lifecycle events.
    struct EchoService {
        accepted: AtomicU64,
        rejected_conns: AtomicU64,
        rejected_frames: AtomicU64,
        evicted: AtomicU64,
        evicted_backlog: AtomicU64,
    }

    impl EchoService {
        fn new() -> Arc<EchoService> {
            Arc::new(EchoService {
                accepted: AtomicU64::new(0),
                rejected_conns: AtomicU64::new(0),
                rejected_frames: AtomicU64::new(0),
                evicted: AtomicU64::new(0),
                evicted_backlog: AtomicU64::new(0),
            })
        }
    }

    impl FrameService for EchoService {
        fn max_request(&self) -> u32 {
            1024
        }

        fn handle(&self, request: &[u8], pressured: bool) -> ServiceAction {
            if request == b"quit" {
                return ServiceAction::Close;
            }
            if pressured {
                return ServiceAction::Reply(Response::from_payload(b"SHED".to_vec()));
            }
            let upper: Vec<u8> = request.iter().map(|b| b.to_ascii_uppercase()).collect();
            ServiceAction::Reply(Response::new(&upper, ResponseBody::Empty))
        }

        fn on_accepted(&self) {
            self.accepted.fetch_add(1, Ordering::Relaxed);
        }

        fn on_conn_rejected(&self) {
            self.rejected_conns.fetch_add(1, Ordering::Relaxed);
        }

        fn on_frame_rejected(&self) {
            self.rejected_frames.fetch_add(1, Ordering::Relaxed);
        }

        fn on_evicted(&self, reason: EvictReason) {
            self.evicted.fetch_add(1, Ordering::Relaxed);
            if reason == EvictReason::QueueDepth {
                self.evicted_backlog.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn sock(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("arv-reactor-{}-{tag}.sock", std::process::id()))
    }

    #[test]
    fn echo_round_trips_across_loops() {
        let svc = EchoService::new();
        let cfg = ServerConfig::builder().loops(2).build().unwrap();
        let mut reactor = Reactor::spawn(svc.clone(), sock("echo"), cfg).unwrap();
        for conn_i in 0..3 {
            let mut s = UnixStream::connect(reactor.socket_path()).unwrap();
            for round in 0..10 {
                let msg = format!("hello-{conn_i}-{round}");
                write_frame(&mut s, msg.as_bytes()).unwrap();
                let resp = read_frame(&mut s, 1024).unwrap().unwrap();
                assert_eq!(resp, msg.to_ascii_uppercase().as_bytes());
            }
        }
        assert!(svc.accepted.load(Ordering::Relaxed) >= 3);
        reactor.shutdown();
        reactor.shutdown(); // idempotent
    }

    #[test]
    fn pipelined_frames_and_partial_writes_reassemble() {
        let svc = EchoService::new();
        let cfg = ServerConfig::builder().loops(1).build().unwrap();
        let reactor = Reactor::spawn(svc, sock("pipeline"), cfg).unwrap();
        let mut s = UnixStream::connect(reactor.socket_path()).unwrap();
        // Three pipelined frames, delivered in two torn chunks.
        let mut bytes = Vec::new();
        for msg in [b"aaa".as_slice(), b"bb", b"cccc"] {
            write_frame(&mut bytes, msg).unwrap();
        }
        let split = 5; // mid-prefix of nothing in particular
        s.write_all(&bytes[..split]).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        s.write_all(&bytes[split..]).unwrap();
        for expect in [b"AAA".as_slice(), b"BB", b"CCCC"] {
            let resp = read_frame(&mut s, 1024).unwrap().unwrap();
            assert_eq!(resp, expect);
        }
    }

    #[test]
    fn close_action_flushes_then_closes() {
        let svc = EchoService::new();
        let cfg = ServerConfig::builder().loops(1).build().unwrap();
        let reactor = Reactor::spawn(svc, sock("close"), cfg).unwrap();
        let mut s = UnixStream::connect(reactor.socket_path()).unwrap();
        write_frame(&mut s, b"last").unwrap();
        write_frame(&mut s, b"quit").unwrap();
        // The response queued before "quit" still arrives...
        let resp = read_frame(&mut s, 1024).unwrap().unwrap();
        assert_eq!(resp, b"LAST");
        // ...then the server closes cleanly.
        assert!(read_frame(&mut s, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_counts_as_rejected_frame() {
        let svc = EchoService::new();
        let cfg = ServerConfig::builder().loops(1).build().unwrap();
        let reactor = Reactor::spawn(svc.clone(), sock("oversize"), cfg).unwrap();
        let mut s = UnixStream::connect(reactor.socket_path()).unwrap();
        s.write_all(&(1_000_000u32).to_le_bytes()).unwrap();
        s.write_all(&[0u8; 16]).unwrap();
        let mut buf = [0u8; 1];
        let n = s.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "untrustable framing must close the connection");
        assert!(svc.rejected_frames.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn connection_cap_refuses_excess() {
        let svc = EchoService::new();
        let cfg = ServerConfig::builder()
            .loops(1)
            .max_connections(1)
            .build()
            .unwrap();
        let reactor = Reactor::spawn(svc.clone(), sock("cap"), cfg).unwrap();
        let mut first = UnixStream::connect(reactor.socket_path()).unwrap();
        write_frame(&mut first, b"hi").unwrap();
        assert_eq!(read_frame(&mut first, 1024).unwrap().unwrap(), b"HI");
        let mut second = UnixStream::connect(reactor.socket_path()).unwrap();
        let _ = write_frame(&mut second, b"hi");
        let mut buf = [0u8; 1];
        let n = second.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "capped connection sees EOF");
        assert!(svc.rejected_conns.load(Ordering::Relaxed) >= 1);
        // The first connection keeps working.
        write_frame(&mut first, b"again").unwrap();
        assert_eq!(read_frame(&mut first, 1024).unwrap().unwrap(), b"AGAIN");
    }

    #[test]
    fn queue_depth_evicts_nonreading_client() {
        let svc = EchoService::new();
        let cfg = ServerConfig::builder()
            .loops(1)
            .outbound_queue_cap(4096)
            .write_deadline(Duration::from_secs(30))
            .build()
            .unwrap();
        let reactor = Reactor::spawn(svc.clone(), sock("depth"), cfg).unwrap();
        let mut s = UnixStream::connect(reactor.socket_path()).unwrap();
        let req = vec![b'x'; 512];
        // Never read a byte back; responses pile up past the cap.
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.evicted_backlog.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "reactor never evicted the peer");
            if write_frame(&mut s, &req).is_err() {
                break; // server closed us: eviction already landed
            }
        }
        let wait_deadline = Instant::now() + Duration::from_secs(10);
        while svc.evicted.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < wait_deadline, "eviction never counted");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(svc.evicted_backlog.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn shutdown_is_prompt_under_busy_traffic() {
        let svc = EchoService::new();
        let cfg = ServerConfig::builder().loops(2).build().unwrap();
        let mut reactor = Reactor::spawn(svc, sock("busy-stop"), cfg).unwrap();
        let path = reactor.socket_path().to_path_buf();
        let stop_flood = Arc::new(AtomicBool::new(false));
        let flooders: Vec<_> = (0..4)
            .map(|_| {
                let path = path.clone();
                let stop_flood = Arc::clone(&stop_flood);
                std::thread::spawn(move || {
                    let Ok(mut s) = UnixStream::connect(&path) else {
                        return;
                    };
                    while !stop_flood.load(Ordering::Relaxed) {
                        if write_frame(&mut s, b"busy").is_err() {
                            break;
                        }
                        if read_frame(&mut s, 1024).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        let started = Instant::now();
        reactor.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shutdown took {:?} under busy traffic",
            started.elapsed()
        );
        stop_flood.store(true, Ordering::Relaxed);
        for f in flooders {
            let _ = f.join();
        }
    }
}
