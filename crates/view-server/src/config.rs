//! Validated serving-tier configuration: one [`ServerConfig`] builder
//! folding the admission-control knobs ([`crate::wire::WireLimits`])
//! together with the reactor's sizing (event-loop count, connection
//! slabs, outbound queues).
//!
//! Both wire servers — viewd's and the fleet controller's — are spawned
//! from a `ServerConfig`, replacing the old positional constructors.
//! The builder validates at `build()` so a nonsense configuration (zero
//! loops, a queue cap smaller than a frame) fails loudly at startup
//! instead of wedging the daemon under load.

use std::io;
use std::time::Duration;

use crate::wire::{WireLimits, MAX_RESPONSE};

/// Full serving-tier configuration: admission control plus reactor
/// sizing. Construct via [`ServerConfig::builder`] (validated) or from
/// a plain [`WireLimits`] (reactor knobs defaulted).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrently served connections; accepts beyond this are closed
    /// immediately and counted dropped.
    pub max_connections: usize,
    /// Token-bucket burst per connection: requests served at full
    /// service before shedding starts.
    pub rate_burst: u32,
    /// Token refill rate per connection, tokens per second. Zero means
    /// the burst is all a connection ever gets (deterministic in tests).
    pub rate_refill_per_sec: f64,
    /// How long a response write may stall before the connection is
    /// evicted as a slow client.
    pub write_deadline: Duration,
    /// Retry-after hint carried in `OK_SHED` responses, milliseconds.
    pub retry_after_ms: u64,
    /// Sharded event loops the reactor runs (one epoll fd each).
    pub loops: usize,
    /// Connection slots per event loop; a loop at capacity refuses the
    /// handoff and the connection is dropped (counted).
    pub slab_capacity: usize,
    /// Outbound queue bytes per connection before the peer is evicted
    /// as too slow to drain its responses (queue-depth eviction — the
    /// reactor's analogue of the threaded tier's write-deadline kill).
    pub outbound_queue_cap: usize,
    /// Serve with the legacy thread-per-connection engine instead of
    /// the reactor. Kept for apples-to-apples benchmarking
    /// (`BENCH_wire.json` compares both) and as a fallback.
    pub threaded: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig::from(WireLimits::default())
    }
}

impl From<WireLimits> for ServerConfig {
    fn from(limits: WireLimits) -> ServerConfig {
        ServerConfig {
            max_connections: limits.max_connections,
            rate_burst: limits.rate_burst,
            rate_refill_per_sec: limits.rate_refill_per_sec,
            write_deadline: limits.write_deadline,
            retry_after_ms: limits.retry_after_ms,
            loops: default_loops(),
            slab_capacity: limits.max_connections.max(1),
            outbound_queue_cap: 4 * MAX_RESPONSE as usize,
            threaded: false,
        }
    }
}

/// Default event-loop count: one per available core, capped — the
/// serving tier should never out-thread the host it virtualizes.
fn default_loops() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

impl ServerConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            cfg: ServerConfig::default(),
        }
    }

    /// The admission-control subset, for code that still speaks
    /// [`WireLimits`].
    pub fn limits(&self) -> WireLimits {
        WireLimits {
            max_connections: self.max_connections,
            rate_burst: self.rate_burst,
            rate_refill_per_sec: self.rate_refill_per_sec,
            write_deadline: self.write_deadline,
            retry_after_ms: self.retry_after_ms,
        }
    }

    /// Check every invariant the serving tier relies on.
    pub fn validate(&self) -> io::Result<()> {
        fn bad(msg: String) -> io::Result<()> {
            Err(io::Error::new(io::ErrorKind::InvalidInput, msg))
        }
        if self.max_connections == 0 {
            return bad("max_connections must be at least 1".into());
        }
        if self.rate_burst == 0 {
            return bad("rate_burst must be at least 1".into());
        }
        if !self.rate_refill_per_sec.is_finite() || self.rate_refill_per_sec < 0.0 {
            return bad(format!(
                "rate_refill_per_sec must be finite and non-negative, got {}",
                self.rate_refill_per_sec
            ));
        }
        if self.write_deadline.is_zero() {
            return bad("write_deadline must be nonzero".into());
        }
        if self.retry_after_ms == 0 {
            return bad("retry_after_ms must be at least 1".into());
        }
        if self.loops == 0 || self.loops > 64 {
            return bad(format!("loops must be in 1..=64, got {}", self.loops));
        }
        if self.slab_capacity == 0 {
            return bad("slab_capacity must be at least 1".into());
        }
        if self.outbound_queue_cap < 4096 {
            return bad(format!(
                "outbound_queue_cap of {} cannot hold even one small response; want >= 4096",
                self.outbound_queue_cap
            ));
        }
        Ok(())
    }
}

/// Builder for [`ServerConfig`]; `build()` validates the whole shape.
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

impl ServerConfigBuilder {
    /// Cap on concurrently served connections.
    pub fn max_connections(mut self, n: usize) -> Self {
        self.cfg.max_connections = n;
        // Keep the slab able to hold the whole cap unless the caller
        // sizes it explicitly afterwards.
        self.cfg.slab_capacity = self.cfg.slab_capacity.max(n);
        self
    }

    /// Token-bucket burst per connection.
    pub fn rate_burst(mut self, n: u32) -> Self {
        self.cfg.rate_burst = n;
        self
    }

    /// Token refill rate per connection, tokens per second.
    pub fn rate_refill_per_sec(mut self, rate: f64) -> Self {
        self.cfg.rate_refill_per_sec = rate;
        self
    }

    /// Write-stall deadline before a slow client is evicted.
    pub fn write_deadline(mut self, d: Duration) -> Self {
        self.cfg.write_deadline = d;
        self
    }

    /// Retry-after hint carried in `OK_SHED` responses, milliseconds.
    pub fn retry_after_ms(mut self, ms: u64) -> Self {
        self.cfg.retry_after_ms = ms;
        self
    }

    /// Number of sharded event loops.
    pub fn loops(mut self, n: usize) -> Self {
        self.cfg.loops = n;
        self
    }

    /// Connection slots per event loop.
    pub fn slab_capacity(mut self, n: usize) -> Self {
        self.cfg.slab_capacity = n;
        self
    }

    /// Outbound queue bytes per connection before eviction.
    pub fn outbound_queue_cap(mut self, bytes: usize) -> Self {
        self.cfg.outbound_queue_cap = bytes;
        self
    }

    /// Use the legacy thread-per-connection engine instead of the
    /// reactor.
    pub fn threaded(mut self, threaded: bool) -> Self {
        self.cfg.threaded = threaded;
        self
    }

    /// Seed the admission-control knobs from a [`WireLimits`].
    pub fn limits(mut self, limits: WireLimits) -> Self {
        self.cfg.max_connections = limits.max_connections;
        self.cfg.rate_burst = limits.rate_burst;
        self.cfg.rate_refill_per_sec = limits.rate_refill_per_sec;
        self.cfg.write_deadline = limits.write_deadline;
        self.cfg.retry_after_ms = limits.retry_after_ms;
        self.cfg.slab_capacity = self.cfg.slab_capacity.max(limits.max_connections);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> io::Result<ServerConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Classic token bucket; `refill_per_sec == 0` never refills, which
/// makes shed behaviour deterministic under test.
#[derive(Debug)]
pub(crate) struct TokenBucket {
    tokens: f64,
    capacity: f64,
    refill_per_sec: f64,
    last: std::time::Instant,
}

impl TokenBucket {
    pub(crate) fn new(capacity: u32, refill_per_sec: f64) -> TokenBucket {
        TokenBucket {
            tokens: f64::from(capacity),
            capacity: f64::from(capacity),
            refill_per_sec,
            last: std::time::Instant::now(),
        }
    }

    pub(crate) fn take(&mut self) -> bool {
        let now = std::time::Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ServerConfig::default().validate().unwrap();
        let cfg = ServerConfig::builder().build().unwrap();
        assert!(!cfg.threaded);
        assert!(cfg.loops >= 1);
        assert_eq!(cfg.max_connections, WireLimits::default().max_connections);
    }

    #[test]
    fn builder_rejects_nonsense() {
        assert!(ServerConfig::builder().loops(0).build().is_err());
        assert!(ServerConfig::builder().loops(65).build().is_err());
        assert!(ServerConfig::builder().max_connections(0).build().is_err());
        assert!(ServerConfig::builder().rate_burst(0).build().is_err());
        assert!(ServerConfig::builder()
            .rate_refill_per_sec(f64::NAN)
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .outbound_queue_cap(128)
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .write_deadline(Duration::ZERO)
            .build()
            .is_err());
        assert!(ServerConfig::builder().retry_after_ms(0).build().is_err());
        assert!(ServerConfig::builder().slab_capacity(0).build().is_err());
    }

    #[test]
    fn max_connections_grows_the_slab() {
        let cfg = ServerConfig::builder()
            .max_connections(5000)
            .build()
            .unwrap();
        assert!(cfg.slab_capacity >= 5000, "slab holds the whole cap");
    }

    #[test]
    fn limits_round_trip() {
        let limits = WireLimits {
            max_connections: 3,
            rate_burst: 9,
            rate_refill_per_sec: 0.0,
            write_deadline: Duration::from_millis(40),
            retry_after_ms: 11,
        };
        let cfg = ServerConfig::from(limits);
        let back = cfg.limits();
        assert_eq!(back.max_connections, 3);
        assert_eq!(back.rate_burst, 9);
        assert_eq!(back.retry_after_ms, 11);
        assert_eq!(back.write_deadline, Duration::from_millis(40));
    }

    #[test]
    fn zero_refill_bucket_is_deterministic() {
        let mut bucket = TokenBucket::new(2, 0.0);
        assert!(bucket.take());
        assert!(bucket.take());
        assert!(!bucket.take());
        assert!(!bucket.take());
    }
}
