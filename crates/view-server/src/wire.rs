//! Length-prefixed request/response protocol over a Unix-domain socket.
//!
//! The in-process [`crate::server::ViewClient`] works only for threads
//! sharing the daemon's address space; real consumers (an LD_PRELOAD
//! shim, an LXCFS-style FUSE bridge) sit in other processes. The wire
//! format is deliberately minimal:
//!
//! ```text
//! request  := u32le len | u8 kind | u32le container | key-bytes
//!   kind 0 = read file (key = path), 1 = sysconf (key = name),
//!   kind 2 = stats (Prometheus text exposition; container and key ignored),
//!   kind 3 = trace (rendered decision-provenance: the container's
//!            timeline, or the whole ring for a host caller; key ignored)
//!   container u32::MAX = host caller (no container identity)
//! response := u32le len | u8 status | u64le generation | body-bytes
//!   status 0 = ok, 1 = not found (unknown path / sysconf key),
//!   2 = ok but degraded (the body shows the conservative fallback view)
//!   3 = shed (overload: request refused; body = decimal retry-after
//!       hint in milliseconds — come back later)
//!   body: file image for reads, decimal value for sysconf, rendered
//!   text for stats/trace, retry-after hint for shed
//! ```
//!
//! One connection carries any number of request/response pairs in order;
//! concurrent clients each get their own connection. Two serving
//! engines exist behind the one [`WireServer`] API: the default
//! readiness-driven [`crate::reactor`] (sharded epoll event loops,
//! nonblocking connection slabs, cached images written as shared `Arc`
//! slices with zero per-request copies) and the legacy
//! thread-per-connection engine, kept behind
//! [`crate::config::ServerConfig::threaded`] for apples-to-apples
//! benchmarking.
//!
//! # Overload protection
//!
//! The listener enforces [`WireLimits`]: a cap on concurrently served
//! connections (excess accepts are closed immediately), a per-connection
//! token bucket, a write deadline that evicts clients too slow to drain
//! their responses, and two-tier load shedding. When a connection runs
//! out of tokens, requests answerable from a cached render (and cheap
//! sysconf scalars) are still served, while work that would render,
//! walk the trace ring, or build a stats exposition is refused with
//! `OK_SHED` and a retry-after hint — so the update timer and
//! well-behaved readers are never starved by a flood.
//!
//! Two client flavours exist. [`WireClient`] is the thin original: one
//! blocking connection, errors surface directly. [`RobustWireClient`]
//! wraps the same protocol in the failure handling a real consumer
//! needs: per-request deadlines, bounded exponential backoff with
//! deterministic seeded jitter, automatic reconnect, and a circuit
//! breaker that fails fast after repeated failures while serving the
//! last known-good response, flagged degraded — the wire-level analogue
//! of the serving layer's staleness fallback. All of that machinery
//! lives in the shared [`crate::codec::Transport`]; this module only
//! adds viewd's frame encoding and the last-good cache on top.

use arv_cgroups::CgroupId;
use arv_resview::Sysconf;
use std::collections::HashMap;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::codec::{read_frame, server_read_frame, write_frame, ServerRead, Transport, Verdict};
use crate::config::{ServerConfig, TokenBucket};
use crate::reactor::{EvictReason, FrameService, Reactor, Response, ResponseBody, ServiceAction};
use crate::server::{ViewClient, ViewImage, ViewServer};

pub use crate::codec::{RetryPolicy, WireError};

/// Request kind: read a virtual file.
pub const KIND_READ: u8 = 0;
/// Request kind: sysconf scalar query.
pub const KIND_SYSCONF: u8 = 1;
/// Request kind: Prometheus text exposition of the daemon's metrics.
pub const KIND_STATS: u8 = 2;
/// Request kind: rendered decision-provenance trace (the calling
/// container's timeline, or the full ring for a host caller).
pub const KIND_TRACE: u8 = 3;
/// Container id meaning "host caller".
pub const HOST_CALLER: u32 = u32::MAX;
/// Response status: success.
pub const STATUS_OK: u8 = 0;
/// Response status: unknown path or sysconf key.
pub const STATUS_NOT_FOUND: u8 = 1;
/// Response status: success, but the body was rendered from the
/// conservative fallback view because the live view aged past the
/// staleness budget (or, client-side, replayed from the last known-good
/// response while the connection is down).
pub const STATUS_OK_DEGRADED: u8 = 2;
/// Response status: the daemon is shedding load and refused this
/// request. The body is a decimal retry-after hint in milliseconds.
/// Cached-generation reads are still served under pressure; only work
/// that would render, trace, or build a stats exposition is shed.
pub const STATUS_OK_SHED: u8 = 3;
/// Retry-after hint used when a shed response carries no parseable one.
pub const DEFAULT_RETRY_AFTER_MS: u64 = 20;

/// Largest accepted request frame (paths and key names are short).
pub const MAX_REQUEST: u32 = 4096;
/// Largest accepted response frame. File images are a few KiB even for
/// many CPUs; the cap bounds the allocation a corrupt or malicious
/// length prefix can force on a client.
pub const MAX_RESPONSE: u32 = 256 * 1024;

/// Parse a wire sysconf key name.
pub fn sysconf_key(name: &str) -> Option<Sysconf> {
    match name {
        "nprocessors_onln" => Some(Sysconf::NprocessorsOnln),
        "nprocessors_conf" => Some(Sysconf::NprocessorsConf),
        "phys_pages" => Some(Sysconf::PhysPages),
        "avphys_pages" => Some(Sysconf::AvphysPages),
        "pagesize" => Some(Sysconf::PageSize),
        _ => None,
    }
}

fn encode_request(kind: u8, raw_caller: u32, key: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(5 + key.len());
    payload.push(kind);
    payload.extend_from_slice(&raw_caller.to_le_bytes());
    payload.extend_from_slice(key.as_bytes());
    payload
}

fn encode_response(status: u8, generation: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + body.len());
    out.push(status);
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Decode a response frame (the payload after the length prefix).
///
/// `Ok(None)` is a NOT_FOUND answer. A frame too short to carry the
/// header, or one with an unknown status byte, is `InvalidData` —
/// framing can no longer be trusted and the caller should drop the
/// connection. Never panics, for any input bytes.
pub fn parse_response(resp: &[u8]) -> io::Result<Option<WireResponse>> {
    if resp.len() < 9 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "short response frame",
        ));
    }
    let status = resp[0];
    let mut gen_bytes = [0u8; 8];
    gen_bytes.copy_from_slice(&resp[1..9]);
    let generation = u64::from_le_bytes(gen_bytes);
    match status {
        STATUS_OK | STATUS_OK_DEGRADED => Ok(Some(WireResponse {
            body: resp[9..].to_vec(),
            generation,
            degraded: status == STATUS_OK_DEGRADED,
            shed: false,
            retry_after_ms: 0,
        })),
        STATUS_OK_SHED => {
            let retry_after_ms = std::str::from_utf8(&resp[9..])
                .ok()
                .and_then(|t| t.parse::<u64>().ok())
                .unwrap_or(DEFAULT_RETRY_AFTER_MS);
            Ok(Some(WireResponse {
                body: resp[9..].to_vec(),
                generation,
                degraded: false,
                shed: true,
                retry_after_ms,
            }))
        }
        STATUS_NOT_FOUND => Ok(None),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown response status {other}"),
        )),
    }
}

/// Admission-control knobs for a [`WireServer`].
///
/// The defaults are deliberately generous — a daemon that never sees a
/// flood behaves exactly as one with no limits at all. Tighten them to
/// model (or survive) overload.
#[derive(Debug, Clone, Copy)]
pub struct WireLimits {
    /// Concurrently served connections; accepts beyond this are closed
    /// immediately (the app-level bound on the accept backlog) and
    /// counted in `connections_dropped`.
    pub max_connections: usize,
    /// Token-bucket burst per connection: requests served at full
    /// service before shedding starts.
    pub rate_burst: u32,
    /// Token refill rate per connection, tokens per second. Zero means
    /// the burst is all a connection ever gets (deterministic in tests).
    pub rate_refill_per_sec: f64,
    /// How long a response write may stall before the connection is
    /// evicted as a slow client (counted in `conns_evicted_slow`).
    pub write_deadline: Duration,
    /// Retry-after hint carried in `OK_SHED` responses, milliseconds.
    pub retry_after_ms: u64,
}

impl Default for WireLimits {
    fn default() -> WireLimits {
        WireLimits {
            max_connections: 64,
            rate_burst: 1 << 16,
            rate_refill_per_sec: 1_000_000.0,
            write_deadline: Duration::from_secs(2),
            retry_after_ms: DEFAULT_RETRY_AFTER_MS,
        }
    }
}

/// An `OK_SHED` response carrying the retry-after hint.
fn shed_response(retry_after_ms: u64) -> Vec<u8> {
    encode_response(STATUS_OK_SHED, 0, retry_after_ms.to_string().as_bytes())
}

/// Handle one connection until EOF, error, eviction, or server shutdown.
fn serve_connection(
    server: &ViewServer,
    mut stream: UnixStream,
    stop: &AtomicBool,
    limits: WireLimits,
) -> io::Result<()> {
    let client = server.client();
    let mut bucket = TokenBucket::new(limits.rate_burst, limits.rate_refill_per_sec);
    loop {
        let req = match server_read_frame(&mut stream, MAX_REQUEST) {
            Ok(ServerRead::Frame(req)) => req,
            Ok(ServerRead::Eof) => return Ok(()),
            Ok(ServerRead::Idle) => {
                if stop.load(Ordering::Acquire) {
                    return Ok(());
                }
                continue;
            }
            // Oversized or torn frame: count it, drop only this
            // connection — other clients are unaffected.
            Err(e) => {
                server
                    .metrics_ref()
                    .wire_rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        // Check the stop flag per frame, not just on idle polls: a
        // client in a steady request loop would otherwise keep this
        // thread alive (and served) forever, and shutdown() joins it.
        // Dropping the request closes the connection; the peer sees EOF
        // and treats it like any other server failure.
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        server
            .metrics_ref()
            .wire_requests
            .fetch_add(1, Ordering::Relaxed);
        let started = std::time::Instant::now();
        // Out of tokens: two-tier shedding. Tier 1 (cached-generation
        // reads, sysconf scalars) is still served — those are the reads
        // resource probing depends on and they cost no render. Tier 2
        // (render misses, stats expositions, trace walks) is refused
        // with a retry-after hint.
        let pressured = !bucket.take();
        let response = match decode_request(&req) {
            Some((KIND_READ, caller, key)) if pressured => match client.read_cached(caller, key) {
                Some(view) => {
                    let status = if view.health.is_degraded() {
                        STATUS_OK_DEGRADED
                    } else {
                        STATUS_OK
                    };
                    encode_response(status, view.generation, view.image.as_bytes())
                }
                None => {
                    server
                        .metrics_ref()
                        .requests_shed
                        .fetch_add(1, Ordering::Relaxed);
                    shed_response(limits.retry_after_ms)
                }
            },
            Some((KIND_STATS | KIND_TRACE, _, _)) if pressured => {
                server
                    .metrics_ref()
                    .requests_shed
                    .fetch_add(1, Ordering::Relaxed);
                shed_response(limits.retry_after_ms)
            }
            Some((KIND_READ, caller, key)) => match client.read(caller, key) {
                Some(view) => {
                    let status = if view.health.is_degraded() {
                        STATUS_OK_DEGRADED
                    } else {
                        STATUS_OK
                    };
                    encode_response(status, view.generation, view.image.as_bytes())
                }
                None => encode_response(STATUS_NOT_FOUND, 0, &[]),
            },
            Some((KIND_SYSCONF, caller, key)) => match sysconf_key(key) {
                Some(q) => {
                    let value = client.sysconf(caller, q);
                    let generation = caller.and_then(|id| client.generation(id)).unwrap_or(0);
                    let status = if client.health(caller).is_degraded() {
                        STATUS_OK_DEGRADED
                    } else {
                        STATUS_OK
                    };
                    encode_response(status, generation, value.to_string().as_bytes())
                }
                None => encode_response(STATUS_NOT_FOUND, 0, &[]),
            },
            Some((KIND_STATS, _, _)) => {
                let body = clamp_text_body(server.prometheus_exposition());
                encode_response(STATUS_OK, 0, body.as_bytes())
            }
            Some((KIND_TRACE, caller, _)) => {
                let rendered = match caller {
                    Some(id) => server.tracer().render_timeline(id),
                    None => server.tracer().render_full(),
                };
                let body = clamp_text_body(rendered);
                encode_response(STATUS_OK, 0, body.as_bytes())
            }
            _ => {
                server
                    .metrics_ref()
                    .wire_errors
                    .fetch_add(1, Ordering::Relaxed);
                encode_response(STATUS_NOT_FOUND, 0, &[])
            }
        };
        server
            .metrics_ref()
            .wire_latency
            .record(started.elapsed().as_nanos() as u64);
        if let Err(e) = write_frame(&mut stream, &response) {
            // A write stalling past the deadline is a slow client
            // hogging a connection slot: evict it. Other write errors
            // (peer gone) just close the connection as before.
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) {
                server
                    .metrics_ref()
                    .conns_evicted_slow
                    .fetch_add(1, Ordering::Relaxed);
            }
            return Err(e);
        }
    }
}

/// Clamp a rendered text body under the response-frame cap, keeping the
/// tail — for traces the newest events are the interesting end.
fn clamp_text_body(text: String) -> String {
    const LIMIT: usize = (MAX_RESPONSE as usize) - 64;
    if text.len() <= LIMIT {
        return text;
    }
    let mut idx = text.len() - LIMIT;
    while !text.is_char_boundary(idx) {
        idx += 1;
    }
    format!("... (truncated)\n{}", &text[idx..])
}

/// Decode a request frame. Never panics, for any input bytes.
fn decode_request(payload: &[u8]) -> Option<(u8, Option<CgroupId>, &str)> {
    if payload.len() < 5 {
        return None;
    }
    let kind = payload[0];
    if !matches!(kind, KIND_READ | KIND_SYSCONF | KIND_STATS | KIND_TRACE) {
        return None;
    }
    let mut raw_bytes = [0u8; 4];
    raw_bytes.copy_from_slice(&payload[1..5]);
    let raw = u32::from_le_bytes(raw_bytes);
    let caller = (raw != HOST_CALLER).then_some(CgroupId(raw));
    let key = std::str::from_utf8(&payload[5..]).ok()?;
    Some((kind, caller, key))
}

/// Protocol head bytes (status + generation) for a reactor response;
/// the reactor's framing adds the length prefix.
fn response_head(status: u8, generation: u64) -> [u8; 9] {
    let mut head = [0u8; 9];
    head[0] = status;
    head[1..9].copy_from_slice(&generation.to_le_bytes());
    head
}

/// viewd's protocol plugged into the [`Reactor`]: the exact two-tier
/// shed semantics of the threaded path, with cached file images queued
/// as shared `Arc` slices — no per-request body copies.
struct ViewdService {
    server: ViewServer,
    client: ViewClient,
    retry_after_ms: u64,
}

impl ViewdService {
    fn new(server: ViewServer, retry_after_ms: u64) -> ViewdService {
        let client = server.client();
        ViewdService {
            server,
            client,
            retry_after_ms,
        }
    }

    fn shed(&self) -> Response {
        self.server
            .metrics_ref()
            .requests_shed
            .fetch_add(1, Ordering::Relaxed);
        Response::new(
            &response_head(STATUS_OK_SHED, 0),
            ResponseBody::Owned(self.retry_after_ms.to_string().into_bytes()),
        )
    }

    fn view_reply(view: ViewImage) -> Response {
        let status = if view.health.is_degraded() {
            STATUS_OK_DEGRADED
        } else {
            STATUS_OK
        };
        Response::new(
            &response_head(status, view.generation),
            ResponseBody::Shared(Arc::clone(&view.image)),
        )
    }

    fn not_found(&self) -> Response {
        Response::new(&response_head(STATUS_NOT_FOUND, 0), ResponseBody::Empty)
    }
}

impl FrameService for ViewdService {
    fn max_request(&self) -> u32 {
        MAX_REQUEST
    }

    fn handle(&self, request: &[u8], pressured: bool) -> ServiceAction {
        let metrics = self.server.metrics_ref();
        metrics.wire_requests.fetch_add(1, Ordering::Relaxed);
        let started = std::time::Instant::now();
        // Out of tokens: two-tier shedding, same as the threaded path.
        // Tier 1 (cached-generation reads, sysconf scalars) is still
        // served; tier 2 (render misses, stats expositions, trace
        // walks) is refused with a retry-after hint.
        let response = match decode_request(request) {
            Some((KIND_READ, caller, key)) if pressured => {
                match self.client.read_cached(caller, key) {
                    Some(view) => Self::view_reply(view),
                    None => self.shed(),
                }
            }
            Some((KIND_STATS | KIND_TRACE, _, _)) if pressured => self.shed(),
            Some((KIND_READ, caller, key)) => match self.client.read(caller, key) {
                Some(view) => Self::view_reply(view),
                None => self.not_found(),
            },
            Some((KIND_SYSCONF, caller, key)) => match sysconf_key(key) {
                Some(q) => {
                    let value = self.client.sysconf(caller, q);
                    let generation = caller
                        .and_then(|id| self.client.generation(id))
                        .unwrap_or(0);
                    let status = if self.client.health(caller).is_degraded() {
                        STATUS_OK_DEGRADED
                    } else {
                        STATUS_OK
                    };
                    Response::new(
                        &response_head(status, generation),
                        ResponseBody::Owned(value.to_string().into_bytes()),
                    )
                }
                None => self.not_found(),
            },
            Some((KIND_STATS, _, _)) => {
                let body = clamp_text_body(self.server.prometheus_exposition());
                Response::new(
                    &response_head(STATUS_OK, 0),
                    ResponseBody::Owned(body.into_bytes()),
                )
            }
            Some((KIND_TRACE, caller, _)) => {
                let rendered = match caller {
                    Some(id) => self.server.tracer().render_timeline(id),
                    None => self.server.tracer().render_full(),
                };
                let body = clamp_text_body(rendered);
                Response::new(
                    &response_head(STATUS_OK, 0),
                    ResponseBody::Owned(body.into_bytes()),
                )
            }
            _ => {
                metrics.wire_errors.fetch_add(1, Ordering::Relaxed);
                self.not_found()
            }
        };
        metrics
            .wire_latency
            .record(started.elapsed().as_nanos() as u64);
        ServiceAction::Reply(response)
    }

    fn on_accepted(&self) {
        self.server
            .metrics_ref()
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
    }

    fn on_conn_rejected(&self) {
        self.server
            .metrics_ref()
            .connections_dropped
            .fetch_add(1, Ordering::Relaxed);
    }

    fn on_frame_rejected(&self) {
        self.server
            .metrics_ref()
            .wire_rejected
            .fetch_add(1, Ordering::Relaxed);
    }

    fn on_evicted(&self, reason: EvictReason) {
        let metrics = self.server.metrics_ref();
        // Both flavours are "client too slow to drain its responses";
        // the legacy counter keeps covering the union so dashboards and
        // existing assertions survive the engine swap.
        metrics.conns_evicted_slow.fetch_add(1, Ordering::Relaxed);
        if reason == EvictReason::QueueDepth {
            metrics
                .conns_evicted_backlog
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The listening daemon front-end: accepts connections on a Unix socket
/// and serves them until shut down. Two engines exist behind this one
/// API — the default readiness-driven [`Reactor`] and the legacy
/// thread-per-connection engine ([`ServerConfig::threaded`]), kept for
/// apples-to-apples benchmarking.
#[derive(Debug)]
pub struct WireServer {
    engine: Engine,
}

#[derive(Debug)]
enum Engine {
    Reactor(Reactor),
    Threaded {
        stop: Arc<AtomicBool>,
        accept_handle: Option<JoinHandle<()>>,
        socket_path: PathBuf,
    },
}

impl WireServer {
    /// Bind `socket_path` with the default [`ServerConfig`] (generous
    /// limits, reactor engine).
    pub fn spawn(server: ViewServer, socket_path: impl AsRef<Path>) -> io::Result<WireServer> {
        WireServer::spawn_with_config(server, socket_path, ServerConfig::default())
    }

    /// Bind `socket_path` under `limits`, with every reactor knob
    /// defaulted ([`ServerConfig::from`]).
    pub fn spawn_with_limits(
        server: ViewServer,
        socket_path: impl AsRef<Path>,
        limits: WireLimits,
    ) -> io::Result<WireServer> {
        WireServer::spawn_with_config(server, socket_path, ServerConfig::from(limits))
    }

    /// Bind `socket_path` (removing any stale socket file first) and
    /// start serving under `config`, validated first. The engine is the
    /// readiness reactor unless [`ServerConfig::threaded`] asks for the
    /// legacy thread-per-connection path. Fails if the configuration is
    /// invalid, the socket can't be bound, or the serving threads can't
    /// be spawned; per-connection failures after that are absorbed and
    /// counted, never panicked on.
    pub fn spawn_with_config(
        server: ViewServer,
        socket_path: impl AsRef<Path>,
        config: ServerConfig,
    ) -> io::Result<WireServer> {
        config.validate()?;
        if config.threaded {
            return WireServer::spawn_threaded(server, socket_path, config.limits());
        }
        let service = Arc::new(ViewdService::new(server, config.retry_after_ms));
        let reactor = Reactor::spawn(service, socket_path, config)?;
        Ok(WireServer {
            engine: Engine::Reactor(reactor),
        })
    }

    fn spawn_threaded(
        server: ViewServer,
        socket_path: impl AsRef<Path>,
        limits: WireLimits,
    ) -> io::Result<WireServer> {
        let socket_path = socket_path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&socket_path);
        let listener = UnixListener::bind(&socket_path)?;
        // Nonblocking accept so the loop can observe the stop flag.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_handle = std::thread::Builder::new()
            .name("arv-viewd-accept".into())
            .spawn(move || {
                let active = Arc::new(std::sync::atomic::AtomicUsize::new(0));
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                while !stop2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            server
                                .metrics_ref()
                                .connections_accepted
                                .fetch_add(1, Ordering::Relaxed);
                            // Connection cap: the app-level bound on the
                            // accept backlog. Closing the stream is the
                            // refusal — the peer sees EOF.
                            if active.load(Ordering::Acquire) >= limits.max_connections {
                                server
                                    .metrics_ref()
                                    .connections_dropped
                                    .fetch_add(1, Ordering::Relaxed);
                            } else {
                                // Blocking reads with a short timeout:
                                // the connection thread polls the stop
                                // flag between frames, so shutdown can
                                // always join it. The write deadline is
                                // the slow-client eviction trigger.
                                let _ = stream.set_nonblocking(false);
                                let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
                                let _ = stream.set_write_timeout(Some(limits.write_deadline));
                                let conn_server = server.clone();
                                let stop3 = Arc::clone(&stop2);
                                active.fetch_add(1, Ordering::AcqRel);
                                let active2 = Arc::clone(&active);
                                let spawned = std::thread::Builder::new()
                                    .name("arv-viewd-conn".into())
                                    .spawn(move || {
                                        let _ =
                                            serve_connection(&conn_server, stream, &stop3, limits);
                                        active2.fetch_sub(1, Ordering::AcqRel);
                                    });
                                match spawned {
                                    Ok(handle) => workers.push(handle),
                                    // Out of threads: shed this
                                    // connection (closing the stream
                                    // tells the peer) and keep the
                                    // daemon alive.
                                    Err(_) => {
                                        active.fetch_sub(1, Ordering::AcqRel);
                                        server
                                            .metrics_ref()
                                            .connections_dropped
                                            .fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                    workers.retain(|w| !w.is_finished());
                }
                for w in workers {
                    let _ = w.join();
                }
            })?;
        Ok(WireServer {
            engine: Engine::Threaded {
                stop,
                accept_handle: Some(accept_handle),
                socket_path,
            },
        })
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        match &self.engine {
            Engine::Reactor(r) => r.socket_path(),
            Engine::Threaded { socket_path, .. } => socket_path,
        }
    }

    /// Stop accepting, wait for in-flight connections, unlink the socket.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        match &mut self.engine {
            Engine::Reactor(r) => r.shutdown(),
            Engine::Threaded {
                stop,
                accept_handle,
                socket_path,
            } => {
                stop.store(true, Ordering::Release);
                if let Some(h) = accept_handle.take() {
                    let _ = h.join();
                }
                let _ = std::fs::remove_file(socket_path);
            }
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Client side of the wire protocol (thin, single connection; see
/// [`RobustWireClient`] for the fault-tolerant flavour).
#[derive(Debug)]
pub struct WireClient {
    stream: UnixStream,
}

/// A successful wire read: body bytes plus the server-side generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// The response body (file image, or decimal sysconf value).
    pub body: Vec<u8>,
    /// Generation of the view that produced the answer.
    pub generation: u64,
    /// Whether the body reflects a degraded (fallback) view rather than
    /// the live one — either flagged by the server, or replayed from the
    /// client's last-good cache while the wire is down.
    pub degraded: bool,
    /// Whether the server refused the request under overload
    /// (`OK_SHED`). The body carries no data, only the retry-after hint.
    pub shed: bool,
    /// Retry-after hint in milliseconds (nonzero only when `shed`).
    pub retry_after_ms: u64,
}

impl WireClient {
    /// Connect to a daemon's socket.
    pub fn connect(socket_path: impl AsRef<Path>) -> io::Result<WireClient> {
        Ok(WireClient {
            stream: UnixStream::connect(socket_path)?,
        })
    }

    /// Issue one raw request and parse the response. The typed helpers
    /// ([`read`](WireClient::read), [`sysconf`](WireClient::sysconf),
    /// [`stats`](WireClient::stats), [`trace`](WireClient::trace)) wrap
    /// this; use it directly to observe raw statuses such as `OK_SHED`.
    pub fn request(
        &mut self,
        kind: u8,
        caller: Option<CgroupId>,
        key: &str,
    ) -> io::Result<Option<WireResponse>> {
        let payload = encode_request(kind, caller.map_or(HOST_CALLER, |c| c.0), key);
        write_frame(&mut self.stream, &payload)?;
        let Some(resp) = read_frame(&mut self.stream, MAX_RESPONSE)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-request",
            ));
        };
        parse_response(&resp)
    }

    /// Read a virtual file as `caller`; `Ok(None)` is ENOENT.
    pub fn read(
        &mut self,
        caller: Option<CgroupId>,
        path: &str,
    ) -> io::Result<Option<WireResponse>> {
        self.request(KIND_READ, caller, path)
    }

    /// Query a sysconf value by wire key name (e.g. `"nprocessors_onln"`).
    pub fn sysconf(&mut self, caller: Option<CgroupId>, key: &str) -> io::Result<Option<u64>> {
        let resp = self.request(KIND_SYSCONF, caller, key)?;
        match resp {
            Some(r) => {
                let text = std::str::from_utf8(&r.body)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                let value = text
                    .parse::<u64>()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                Ok(Some(value))
            }
            None => Ok(None),
        }
    }

    /// Fetch the daemon's Prometheus text exposition.
    pub fn stats(&mut self) -> io::Result<String> {
        self.text_request(KIND_STATS, None)
    }

    /// Fetch a rendered decision-provenance trace: one container's
    /// timeline, or the full ring for `None`.
    pub fn trace(&mut self, container: Option<CgroupId>) -> io::Result<String> {
        self.text_request(KIND_TRACE, container)
    }

    fn text_request(&mut self, kind: u8, caller: Option<CgroupId>) -> io::Result<String> {
        let resp = self.request(kind, caller, "")?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "text query answered NOT_FOUND")
        })?;
        String::from_utf8(resp.body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Counters describing one [`RobustWireClient`]'s life so far,
/// projected from the shared transport's
/// [`crate::codec::TransportStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireClientStats {
    /// Requests that got a response (including degraded ones).
    pub successes: u64,
    /// Requests that exhausted every attempt.
    pub failures: u64,
    /// Individual retry attempts (beyond each request's first try).
    pub retries: u64,
    /// Times the client re-established a connection after losing one.
    pub reconnects: u64,
    /// Times the circuit breaker opened.
    pub breaker_opens: u64,
    /// Requests failed fast because the breaker was open.
    pub fast_fails: u64,
    /// Requests answered from the last-good cache instead of the wire.
    pub fallback_serves: u64,
    /// `OK_SHED` responses received; each backs off per the server's
    /// retry-after hint and never counts toward the circuit breaker.
    pub shed_backoffs: u64,
}

/// Fault-tolerant wire client: deadlines, retry with seeded backoff,
/// automatic reconnect, circuit breaker, last-good fallback.
///
/// A thin typed wrapper over the shared [`Transport`] engine — this
/// struct only owns viewd's frame encoding and the last-good response
/// cache; every retry/backoff/breaker decision is the transport's.
///
/// Connection is lazy — constructing the client never touches the
/// socket, so a consumer can start before the daemon does.
#[derive(Debug)]
pub struct RobustWireClient {
    transport: Transport,
    last_good: HashMap<(u8, u32, String), WireResponse>,
    fallback_serves: u64,
}

impl RobustWireClient {
    /// A client for `socket_path` under `policy`. Does not connect yet.
    pub fn new(socket_path: impl AsRef<Path>, policy: RetryPolicy) -> RobustWireClient {
        RobustWireClient {
            transport: Transport::single(socket_path, policy, MAX_RESPONSE),
            last_good: HashMap::new(),
            fallback_serves: 0,
        }
    }

    /// A client with the default [`RetryPolicy`].
    pub fn with_defaults(socket_path: impl AsRef<Path>) -> RobustWireClient {
        RobustWireClient::new(socket_path, RetryPolicy::default())
    }

    /// Counters so far.
    pub fn stats(&self) -> WireClientStats {
        let t = self.transport.stats();
        WireClientStats {
            successes: t.successes,
            failures: t.failures,
            retries: t.retries,
            // The transport counts every connect; this client's legacy
            // stat counted only re-establishments after the first.
            reconnects: t.connects.saturating_sub(1),
            breaker_opens: t.breaker_opens,
            fast_fails: t.fast_fails,
            fallback_serves: self.fallback_serves,
            shed_backoffs: t.shed_backoffs,
        }
    }

    /// Whether a connection is currently established.
    pub fn is_connected(&self) -> bool {
        self.transport.is_connected()
    }

    /// Whether the circuit breaker is currently failing requests fast.
    pub fn breaker_open(&self) -> bool {
        self.transport.breaker_open()
    }

    /// Serve a request from the last-good cache (flagged degraded), or
    /// surface an error if nothing was ever cached for this key.
    fn fallback(
        &mut self,
        kind: u8,
        raw_caller: u32,
        key: &str,
        why: &str,
    ) -> Result<Option<WireResponse>, WireError> {
        match self.last_good.get(&(kind, raw_caller, key.to_string())) {
            Some(cached) => {
                self.fallback_serves += 1;
                let mut resp = cached.clone();
                resp.degraded = true;
                Ok(Some(resp))
            }
            None => Err(WireError::Io(io::Error::other(format!(
                "{why}; no cached response"
            )))),
        }
    }

    /// Issue one request with the full failure-handling pipeline.
    ///
    /// `Ok(None)` is a definitive NOT_FOUND from the server. `Err` means
    /// every attempt failed *and* no cached response exists to degrade
    /// to; any successful or fallback answer is `Ok(Some(_))` with its
    /// `degraded` flag telling the caller which it was. When every
    /// attempt was shed and nothing is cached, the shed response itself
    /// is surfaced (`shed: true`) so the caller sees the hint.
    pub fn request(
        &mut self,
        kind: u8,
        caller: Option<CgroupId>,
        key: &str,
    ) -> Result<Option<WireResponse>, WireError> {
        let raw_caller = caller.map_or(HOST_CALLER, |c| c.0);
        let payload = encode_request(kind, raw_caller, key);
        let outcome =
            self.transport
                .request_classified(&payload, |bytes| match parse_response(bytes) {
                    Ok(Some(r)) if r.shed => Verdict::ShedBackoff {
                        retry_after_ms: r.retry_after_ms,
                    },
                    Ok(_) => Verdict::Accept,
                    Err(e) => Verdict::Malformed(e.to_string()),
                });
        match outcome {
            Ok(bytes) => {
                let resp = parse_response(&bytes)?;
                if let Some(r) = &resp {
                    if !r.degraded {
                        self.last_good
                            .insert((kind, raw_caller, key.to_string()), r.clone());
                    }
                }
                Ok(resp)
            }
            Err(WireError::Shed { retry_after_ms }) => {
                // Every attempt was shed: still not a failure. Prefer
                // the last-good cache (flagged degraded); otherwise
                // synthesize the shed response so the caller sees the
                // retry-after hint.
                match self.fallback(kind, raw_caller, key, "server shedding") {
                    Ok(resp) => Ok(resp),
                    Err(_) => Ok(Some(WireResponse {
                        body: retry_after_ms.to_string().into_bytes(),
                        generation: 0,
                        degraded: false,
                        shed: true,
                        retry_after_ms,
                    })),
                }
            }
            Err(e) => match self.fallback(kind, raw_caller, key, "request failed") {
                Ok(resp) => Ok(resp),
                Err(_) => Err(e),
            },
        }
    }

    /// Read a virtual file as `caller`; `Ok(None)` is ENOENT.
    pub fn read(
        &mut self,
        caller: Option<CgroupId>,
        path: &str,
    ) -> Result<Option<WireResponse>, WireError> {
        self.request(KIND_READ, caller, path)
    }

    /// Query a sysconf value by wire key name (e.g. `"nprocessors_onln"`).
    pub fn sysconf(
        &mut self,
        caller: Option<CgroupId>,
        key: &str,
    ) -> Result<Option<u64>, WireError> {
        let resp = self.request(KIND_SYSCONF, caller, key)?;
        match resp {
            Some(r) => {
                let value = std::str::from_utf8(&r.body)
                    .ok()
                    .and_then(|text| text.parse::<u64>().ok())
                    .ok_or_else(|| {
                        WireError::Malformed("sysconf body is not a decimal value".into())
                    })?;
                Ok(Some(value))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::HostSpec;
    use arv_cgroups::Bytes;
    use arv_resview::{CpuBounds, EffectiveCpuConfig, EffectiveMemory, EffectiveMemoryConfig};
    use std::io::{Read, Write};

    /// Unwrap with context: chaos-style tests issue the same call dozens
    /// of times across opcodes and seeds, and a bare `unwrap()` failure
    /// doesn't say which iteration died. Route fallible test calls
    /// through this so the panic names the operation.
    #[track_caller]
    fn expect<T, E: std::fmt::Debug>(result: Result<T, E>, ctx: &str) -> T {
        match result {
            Ok(v) => v,
            Err(e) => panic!("{ctx}: {e:?}"),
        }
    }

    /// Like [`expect`], for `Option`s that must be `Some`.
    #[track_caller]
    fn expect_some<T>(option: Option<T>, ctx: &str) -> T {
        match option {
            Some(v) => v,
            None => panic!("{ctx}: unexpectedly None"),
        }
    }

    fn test_socket(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("arv-viewd-test-{}-{tag}.sock", std::process::id()))
    }

    fn spawn_server_with_config(
        tag: &str,
        config: ServerConfig,
    ) -> (ViewServer, WireServer, CgroupId) {
        let server = ViewServer::new(HostSpec::paper_testbed(), 8);
        let id = CgroupId(7);
        server.register(
            id,
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            EffectiveMemory::new(
                Bytes::from_mib(500),
                Bytes::from_gib(1),
                Bytes::from_mib(64),
                Bytes::from_mib(128),
                EffectiveMemoryConfig::default(),
            ),
        );
        let wire = expect(
            WireServer::spawn_with_config(server.clone(), test_socket(tag), config),
            &format!("spawn wire server '{tag}'"),
        );
        (server, wire, id)
    }

    fn spawn_server_with_limits(
        tag: &str,
        limits: WireLimits,
    ) -> (ViewServer, WireServer, CgroupId) {
        spawn_server_with_config(tag, ServerConfig::from(limits))
    }

    fn spawn_server(tag: &str) -> (ViewServer, WireServer, CgroupId) {
        spawn_server_with_limits(tag, WireLimits::default())
    }

    #[test]
    fn round_trip_read_and_sysconf() {
        let (server, wire, id) = spawn_server("rt");
        let mut client = WireClient::connect(wire.socket_path()).unwrap();
        let resp = client.read(Some(id), "/proc/cpuinfo").unwrap().unwrap();
        assert!(!resp.degraded);
        let text = String::from_utf8(resp.body).unwrap();
        assert_eq!(text.matches("processor").count(), 4);
        assert_eq!(
            client.sysconf(Some(id), "nprocessors_onln").unwrap(),
            Some(4)
        );
        assert_eq!(client.sysconf(None, "nprocessors_onln").unwrap(), Some(20));
        assert_eq!(client.sysconf(Some(id), "pagesize").unwrap(), Some(4096));
        assert!(server.metrics().wire_requests >= 4);
        wire.shutdown();
    }

    #[test]
    fn not_found_paths_and_keys() {
        let (_server, wire, id) = spawn_server("enoent");
        let mut client = WireClient::connect(wire.socket_path()).unwrap();
        assert!(client.read(Some(id), "/nope").unwrap().is_none());
        assert!(client.sysconf(Some(id), "bogus_key").unwrap().is_none());
        wire.shutdown();
    }

    #[test]
    fn generation_travels_with_responses() {
        let (server, wire, id) = spawn_server("gen");
        let mut client = WireClient::connect(wire.socket_path()).unwrap();
        let before = client.read(Some(id), "/proc/meminfo").unwrap().unwrap();
        server.mirror(id, 8, Bytes::from_mib(800), Bytes::from_mib(700));
        let after = client.read(Some(id), "/proc/meminfo").unwrap().unwrap();
        assert!(after.generation > before.generation);
        assert!(String::from_utf8(after.body)
            .unwrap()
            .contains(&format!("MemTotal: {} kB", 800 * 1024)));
        wire.shutdown();
    }

    #[test]
    fn multiple_concurrent_connections() {
        let (server, wire, id) = spawn_server("conc");
        let path = wire.socket_path().to_path_buf();
        let handles: Vec<_> = (0..4)
            .map(|worker| {
                let path = path.clone();
                std::thread::spawn(move || {
                    let mut client = expect(
                        WireClient::connect(&path),
                        &format!("worker {worker} connect"),
                    );
                    for round in 0..50 {
                        let v = expect(
                            client.sysconf(Some(id), "nprocessors_onln"),
                            &format!("worker {worker} round {round} sysconf"),
                        );
                        assert_eq!(v, Some(4));
                    }
                })
            })
            .collect();
        for (worker, h) in handles.into_iter().enumerate() {
            expect(
                h.join().map_err(|e| format!("{e:?}")),
                &format!("join worker {worker}"),
            );
        }
        assert!(server.metrics().connections_accepted >= 4);
        wire.shutdown();
    }

    #[test]
    fn malformed_frame_counts_as_wire_error() {
        let (server, wire, _) = spawn_server("bad");
        let mut stream = UnixStream::connect(wire.socket_path()).unwrap();
        // kind 9 is unknown; server must answer NOT_FOUND, not hang.
        write_frame(&mut stream, &[9u8, 0, 0, 0, 0]).unwrap();
        let resp = read_frame(&mut stream, MAX_RESPONSE).unwrap().unwrap();
        assert_eq!(resp[0], STATUS_NOT_FOUND);
        // Give the counter a moment (same thread wrote it before reply).
        assert!(server.metrics().wire_errors >= 1);
        wire.shutdown();
    }

    #[test]
    fn oversized_frame_closes_connection_and_counts() {
        let (server, wire, _) = spawn_server("big");
        let mut stream = UnixStream::connect(wire.socket_path()).unwrap();
        stream.write_all(&(10_000_000u32).to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 64]).unwrap();
        // Server drops the connection; the next read sees EOF.
        let mut buf = [0u8; 1];
        let n = stream.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0);
        assert!(server.metrics().wire_rejected >= 1);
        wire.shutdown();
    }

    #[test]
    fn degraded_status_travels_over_the_wire() {
        let (server, wire, id) = spawn_server("deg");
        let mut client = WireClient::connect(wire.socket_path()).unwrap();
        server.mirror(id, 8, Bytes::from_mib(800), Bytes::from_mib(700));
        assert!(
            !client
                .read(Some(id), "/proc/cpuinfo")
                .unwrap()
                .unwrap()
                .degraded
        );
        for _ in 0..(server.policy().budget + 1) {
            server.advance_tick();
        }
        let resp = client.read(Some(id), "/proc/cpuinfo").unwrap().unwrap();
        assert!(resp.degraded);
        // The degraded body is the conservative fallback: the lower bound.
        let text = String::from_utf8(resp.body).unwrap();
        assert_eq!(text.matches("processor").count(), 4);
        // Host callers never degrade.
        assert!(
            !client
                .read(None, "/proc/cpuinfo")
                .unwrap()
                .unwrap()
                .degraded
        );
        wire.shutdown();
    }

    #[test]
    fn stats_and_trace_travel_over_the_wire() {
        use arv_resview::StalenessPolicy;
        use arv_telemetry::Tracer;
        let server = ViewServer::with_telemetry(
            HostSpec::paper_testbed(),
            8,
            StalenessPolicy::default(),
            Tracer::bounded(64),
        );
        let id = CgroupId(7);
        server.register(
            id,
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            EffectiveMemory::new(
                Bytes::from_mib(500),
                Bytes::from_gib(1),
                Bytes::from_mib(64),
                Bytes::from_mib(128),
                EffectiveMemoryConfig::default(),
            ),
        );
        let wire = WireServer::spawn(server.clone(), test_socket("stats")).unwrap();
        let mut client = WireClient::connect(wire.socket_path()).unwrap();
        client.read(Some(id), "/proc/cpuinfo").unwrap().unwrap();
        let stats = client.stats().unwrap();
        assert!(stats.contains("arv_viewd_queries_total"));
        assert!(stats.contains("arv_container_effective_cpus{container=\"7\"} 4"));

        // Grow the view, let it age past the budget, and read: the
        // degraded serve must leave a provenance record.
        server.mirror(id, 8, Bytes::from_mib(800), Bytes::from_mib(700));
        for _ in 0..(server.policy().budget + 1) {
            server.advance_tick();
        }
        client.read(Some(id), "/proc/cpuinfo").unwrap().unwrap();
        let timeline = client.trace(Some(id)).unwrap();
        assert!(
            timeline.contains("degraded-fallback"),
            "timeline missing fallback decision:\n{timeline}"
        );
        assert!(timeline.contains("cpu 8 -> 4"));
        let full = client.trace(None).unwrap();
        assert!(full.contains("c7"));
        // Wire latency landed in its own histogram.
        assert!(server.metrics().wire_p99_ns > 0);
        wire.shutdown();
    }

    #[test]
    fn robust_client_reconnects_after_server_restart() {
        let (_server, wire, id) = spawn_server("restart");
        let socket = wire.socket_path().to_path_buf();
        let mut client = RobustWireClient::new(&socket, RetryPolicy::fast_test());
        assert_eq!(
            client.sysconf(Some(id), "nprocessors_onln").unwrap(),
            Some(4)
        );
        assert!(client.is_connected());

        // Kill the server: the in-flight connection dies, retries can't
        // reconnect (socket unlinked), but the cached answer degrades.
        wire.shutdown();
        let resp = client
            .request(KIND_SYSCONF, Some(id), "nprocessors_onln")
            .unwrap()
            .unwrap();
        assert!(resp.degraded);
        let s = client.stats();
        assert_eq!(s.failures, 1);
        assert_eq!(s.fallback_serves, 1);
        assert!(s.retries >= 1);

        // Restart on the same socket: the next request reconnects and
        // gets a live answer again.
        let (_server2, wire2, _) = {
            let server = ViewServer::new(HostSpec::paper_testbed(), 8);
            let id2 = CgroupId(7);
            server.register(
                id2,
                CpuBounds {
                    lower: 4,
                    upper: 10,
                },
                EffectiveCpuConfig::default(),
                EffectiveMemory::new(
                    Bytes::from_mib(500),
                    Bytes::from_gib(1),
                    Bytes::from_mib(64),
                    Bytes::from_mib(128),
                    EffectiveMemoryConfig::default(),
                ),
            );
            let wire2 = WireServer::spawn(server.clone(), &socket).unwrap();
            (server, wire2, id2)
        };
        let resp = client
            .request(KIND_SYSCONF, Some(id), "nprocessors_onln")
            .unwrap()
            .unwrap();
        assert!(!resp.degraded);
        assert!(client.stats().reconnects >= 1);
        wire2.shutdown();
    }

    #[test]
    fn breaker_opens_after_repeated_failures_then_recovers() {
        let socket = test_socket("breaker");
        let _ = std::fs::remove_file(&socket);
        let policy = RetryPolicy {
            breaker_threshold: 1,
            breaker_cooldown: 2,
            ..RetryPolicy::fast_test()
        };
        let mut client = RobustWireClient::new(&socket, policy);
        // Nothing listening and nothing cached: a hard error that opens
        // the breaker immediately (threshold 1).
        assert!(client.read(None, "/proc/cpuinfo").is_err());
        assert!(client.breaker_open());
        assert_eq!(client.stats().breaker_opens, 1);
        // Cooldown requests fail fast without touching the socket.
        assert!(client.read(None, "/proc/cpuinfo").is_err());
        assert!(client.read(None, "/proc/cpuinfo").is_err());
        assert_eq!(client.stats().fast_fails, 2);
        assert!(!client.breaker_open());
        // A server appears; the next request goes through live.
        let server = ViewServer::new(HostSpec::paper_testbed(), 8);
        let wire = WireServer::spawn(server, &socket).unwrap();
        let resp = client.read(None, "/proc/cpuinfo").unwrap().unwrap();
        assert!(!resp.degraded);
        assert_eq!(client.stats().successes, 1);
        wire.shutdown();
    }

    #[test]
    fn over_rate_requests_shed_but_cached_reads_survive() {
        let limits = WireLimits {
            rate_burst: 2,
            rate_refill_per_sec: 0.0,
            retry_after_ms: 7,
            ..WireLimits::default()
        };
        let (server, wire, id) = spawn_server_with_limits("shedtiers", limits);
        let mut client = expect(WireClient::connect(wire.socket_path()), "connect shedtiers");
        // Token 1: render + cache /proc/cpuinfo. Token 2: a stats call.
        let first = expect_some(
            expect(client.read(Some(id), "/proc/cpuinfo"), "prime cpuinfo"),
            "prime cpuinfo body",
        );
        assert!(!first.shed);
        expect(client.stats(), "stats within burst");
        // Bucket empty. Tier 1: the cached read is still served...
        let cached = expect_some(
            expect(client.read(Some(id), "/proc/cpuinfo"), "cached read"),
            "cached read body",
        );
        assert!(!cached.shed && !cached.degraded);
        assert_eq!(cached.generation, first.generation);
        // ...and sysconf scalars too.
        assert_eq!(
            expect(client.sysconf(Some(id), "nprocessors_onln"), "sysconf"),
            Some(4)
        );
        // Tier 2: a render miss and a stats exposition are shed with the
        // configured retry-after hint.
        let miss = expect_some(
            expect(client.read(Some(id), "/proc/meminfo"), "miss read"),
            "miss read response",
        );
        assert!(miss.shed);
        assert_eq!(miss.retry_after_ms, 7);
        let raw = expect_some(
            expect(
                client.request(KIND_STATS, None, ""),
                "raw stats under pressure",
            ),
            "raw stats response",
        );
        assert!(raw.shed);
        let m = server.metrics();
        assert!(m.requests_shed >= 2, "sheds counted: {}", m.requests_shed);
        wire.shutdown();
    }

    #[test]
    fn connection_cap_closes_excess_accepts() {
        let limits = WireLimits {
            max_connections: 1,
            ..WireLimits::default()
        };
        let (server, wire, id) = spawn_server_with_limits("conncap", limits);
        let mut first = expect(WireClient::connect(wire.socket_path()), "connect first");
        // Serve one request so the first connection is surely active.
        assert_eq!(
            expect(first.sysconf(Some(id), "nprocessors_onln"), "first conn"),
            Some(4)
        );
        // The second connection is accepted then immediately closed.
        let mut second = expect(
            UnixStream::connect(wire.socket_path()),
            "connect second raw",
        );
        let _ = write_frame(&mut second, &encode_request(KIND_SYSCONF, 7, "pagesize"));
        let mut buf = [0u8; 1];
        let n = second.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "capped connection must see EOF, not service");
        assert!(server.metrics().connections_dropped >= 1);
        // The first connection keeps working.
        assert_eq!(
            expect(first.sysconf(Some(id), "pagesize"), "first conn again"),
            Some(4096)
        );
        wire.shutdown();
    }

    #[test]
    fn slow_client_is_evicted_at_the_write_deadline() {
        let limits = WireLimits {
            write_deadline: Duration::from_millis(25),
            ..WireLimits::default()
        };
        let (server, wire, _id) = spawn_server_with_limits("slow", limits);
        let stream = expect(UnixStream::connect(wire.socket_path()), "connect slow");
        let mut writer = stream;
        expect(
            writer.set_write_timeout(Some(Duration::from_millis(100))),
            "set client write timeout",
        );
        // Flood stats requests and never read a byte back: responses
        // pile up until the server's write stalls past its deadline and
        // the connection is evicted.
        let req = encode_request(KIND_STATS, HOST_CALLER, "");
        for _ in 0..20_000 {
            if server.metrics().conns_evicted_slow >= 1 {
                break;
            }
            if write_frame(&mut writer, &req).is_err() {
                break; // server closed us: eviction already happened
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.metrics().conns_evicted_slow == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "server never evicted the stalled client"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(server.metrics().conns_evicted_slow >= 1);
        wire.shutdown();
    }

    #[test]
    fn shed_burst_does_not_open_the_breaker() {
        let limits = WireLimits {
            rate_burst: 1,
            rate_refill_per_sec: 0.0,
            retry_after_ms: 1,
            ..WireLimits::default()
        };
        let (server, wire, id) = spawn_server_with_limits("shedburst", limits);
        let policy = RetryPolicy {
            breaker_threshold: 1,
            ..RetryPolicy::fast_test()
        };
        let mut client = RobustWireClient::new(wire.socket_path(), policy);
        // The only token primes the render cache with a live read.
        let first = expect_some(
            expect(client.read(Some(id), "/proc/cpuinfo"), "prime read"),
            "prime read body",
        );
        assert!(!first.shed && !first.degraded);
        // Every further stats call is shed. The client backs off per the
        // hint and keeps the breaker closed — a shed burst is overload,
        // not an outage.
        for round in 0..3 {
            let resp = expect_some(
                expect(
                    client.request(KIND_STATS, None, ""),
                    &format!("shed stats round {round}"),
                ),
                "shed stats response",
            );
            assert!(resp.shed, "round {round} must surface the shed");
            assert_eq!(resp.retry_after_ms, 1);
            assert!(!client.breaker_open(), "round {round} opened the breaker");
        }
        let s = client.stats();
        assert_eq!(s.breaker_opens, 0);
        assert_eq!(s.failures, 0);
        assert_eq!(s.fast_fails, 0);
        assert!(s.shed_backoffs >= 3);
        // Tier-1 service still flows on the same connection.
        let cached = expect_some(
            expect(client.read(Some(id), "/proc/cpuinfo"), "cached read"),
            "cached read body",
        );
        assert!(!cached.shed && !cached.degraded);
        assert!(server.metrics().requests_shed >= 3);
        wire.shutdown();
    }

    #[test]
    fn threaded_engine_serves_behind_the_same_api() {
        let cfg = expect(
            ServerConfig::builder().threaded(true).build(),
            "build threaded config",
        );
        let (server, wire, id) = spawn_server_with_config("threaded", cfg);
        let mut client = expect(WireClient::connect(wire.socket_path()), "connect threaded");
        let resp = expect_some(
            expect(client.read(Some(id), "/proc/cpuinfo"), "threaded read"),
            "threaded read body",
        );
        let text = expect(String::from_utf8(resp.body), "utf8 body");
        assert_eq!(text.matches("processor").count(), 4);
        assert_eq!(
            expect(client.sysconf(Some(id), "pagesize"), "threaded sysconf"),
            Some(4096)
        );
        assert!(server.metrics().wire_requests >= 2);
        wire.shutdown();
    }

    #[test]
    fn invalid_config_is_refused_at_spawn() {
        let server = ViewServer::new(HostSpec::paper_testbed(), 8);
        let bad = ServerConfig {
            loops: 0,
            ..ServerConfig::default()
        };
        assert!(WireServer::spawn_with_config(server, test_socket("badcfg"), bad).is_err());
    }

    #[test]
    fn queue_depth_eviction_lands_in_both_counters() {
        let cfg = ServerConfig {
            outbound_queue_cap: 8 * 1024,
            // A wide deadline so only the queue-depth trigger can fire.
            write_deadline: Duration::from_secs(30),
            ..ServerConfig::default()
        };
        let (server, wire, _id) = spawn_server_with_config("qdepth", cfg);
        let mut writer = expect(UnixStream::connect(wire.socket_path()), "connect qdepth");
        expect(
            writer.set_write_timeout(Some(Duration::from_millis(100))),
            "set client write timeout",
        );
        // Flood stats requests and never read a byte back: responses
        // pile past the queue cap and the connection is evicted.
        let req = encode_request(KIND_STATS, HOST_CALLER, "");
        for _ in 0..20_000 {
            if server.metrics().conns_evicted_backlog >= 1 {
                break;
            }
            if write_frame(&mut writer, &req).is_err() {
                break;
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.metrics().conns_evicted_backlog == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "server never evicted the backlogged client"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let m = server.metrics();
        assert!(m.conns_evicted_backlog >= 1);
        assert!(
            m.conns_evicted_slow >= m.conns_evicted_backlog,
            "backlog evictions are a subset of slow evictions"
        );
        wire.shutdown();
    }

    mod frame_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Arbitrary bytes never panic the response parser.
            #[test]
            fn parse_response_never_panics(
                bytes in prop::collection::vec(0u8..255, 0..64)
            ) {
                let _ = parse_response(&bytes);
            }

            /// Arbitrary bytes never panic the request decoder.
            #[test]
            fn decode_request_never_panics(
                bytes in prop::collection::vec(0u8..255, 0..64)
            ) {
                let _ = decode_request(&bytes);
            }

            /// Well-formed responses round-trip, including the degraded
            /// and shed statuses; unknown statuses are rejected as
            /// errors.
            #[test]
            fn response_round_trip(
                status in 0u8..8,
                generation in 0u64..u64::MAX,
                body in prop::collection::vec(0u8..255, 0..48)
            ) {
                let frame = encode_response(status, generation, &body);
                match parse_response(&frame) {
                    Ok(Some(resp)) => {
                        prop_assert!(
                            status == STATUS_OK
                                || status == STATUS_OK_DEGRADED
                                || status == STATUS_OK_SHED
                        );
                        prop_assert_eq!(resp.body, body);
                        prop_assert_eq!(resp.generation, generation);
                        prop_assert_eq!(resp.degraded, status == STATUS_OK_DEGRADED);
                        prop_assert_eq!(resp.shed, status == STATUS_OK_SHED);
                        if !resp.shed {
                            prop_assert_eq!(resp.retry_after_ms, 0);
                        }
                    }
                    Ok(None) => prop_assert_eq!(status, STATUS_NOT_FOUND),
                    Err(_) => prop_assert!(status > STATUS_OK_SHED),
                }
            }

            /// A shed frame's retry-after hint round-trips when the body
            /// is a decimal number, and falls back to the default hint
            /// for any other body — never an error, never a panic.
            #[test]
            fn shed_hint_round_trips_or_defaults(
                hint in 0u64..100_000,
                garbage in prop::collection::vec(0u8..255, 0..16)
            ) {
                let frame = encode_response(
                    STATUS_OK_SHED, 0, hint.to_string().as_bytes(),
                );
                match parse_response(&frame) {
                    Ok(Some(resp)) => {
                        prop_assert!(resp.shed);
                        prop_assert_eq!(resp.retry_after_ms, hint);
                    }
                    other => prop_assert!(false, "shed frame failed to parse: {:?}", other),
                }
                let frame = encode_response(STATUS_OK_SHED, 0, &garbage);
                if let Ok(Some(resp)) = parse_response(&frame) {
                    prop_assert!(resp.shed);
                    let parsed = std::str::from_utf8(&garbage)
                        .ok()
                        .and_then(|t| t.parse::<u64>().ok());
                    prop_assert_eq!(
                        resp.retry_after_ms,
                        parsed.unwrap_or(DEFAULT_RETRY_AFTER_MS)
                    );
                } else {
                    prop_assert!(false, "shed frame must parse");
                }
            }

            /// Truncating a valid response frame never panics: either it
            /// still parses (shorter body) or it errors cleanly.
            #[test]
            fn truncated_response_never_panics(
                generation in 0u64..u64::MAX,
                body in prop::collection::vec(0u8..255, 0..48),
                cut in 0usize..64
            ) {
                let frame = encode_response(STATUS_OK, generation, &body);
                let keep = cut.min(frame.len());
                match parse_response(&frame[..keep]) {
                    Ok(Some(resp)) => {
                        prop_assert!(keep >= 9);
                        prop_assert_eq!(resp.generation, generation);
                    }
                    Ok(None) => prop_assert!(false, "OK status cannot decode to NOT_FOUND"),
                    Err(_) => prop_assert!(keep < 9),
                }
            }

            /// Flipping one bit of a valid response frame never panics
            /// the parser (it may still parse, with different contents).
            #[test]
            fn corrupted_response_never_panics(
                generation in 0u64..u64::MAX,
                body in prop::collection::vec(0u8..255, 1..48),
                idx in 0usize..1024,
                bit in 0u8..8
            ) {
                let mut frame = encode_response(STATUS_OK, generation, &body);
                let i = idx % frame.len();
                frame[i] ^= 1 << bit;
                let _ = parse_response(&frame);
            }
        }
    }
}
