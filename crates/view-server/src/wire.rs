//! Length-prefixed request/response protocol over a Unix-domain socket.
//!
//! The in-process [`crate::server::ViewClient`] works only for threads
//! sharing the daemon's address space; real consumers (an LD_PRELOAD
//! shim, an LXCFS-style FUSE bridge) sit in other processes. The wire
//! format is deliberately minimal:
//!
//! ```text
//! request  := u32le len | u8 kind | u32le container | key-bytes
//!   kind 0 = read file (key = path), 1 = sysconf (key = name)
//!   container u32::MAX = host caller (no container identity)
//! response := u32le len | u8 status | u64le generation | body-bytes
//!   status 0 = ok, 1 = not found (unknown path / sysconf key)
//!   body: file image for reads, decimal value for sysconf
//! ```
//!
//! One connection carries any number of request/response pairs in order;
//! concurrent clients each get their own connection (the listener spawns
//! a thread per accept).

use arv_cgroups::CgroupId;
use arv_resview::Sysconf;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::server::ViewServer;

/// Request kind: read a virtual file.
pub const KIND_READ: u8 = 0;
/// Request kind: sysconf scalar query.
pub const KIND_SYSCONF: u8 = 1;
/// Container id meaning "host caller".
pub const HOST_CALLER: u32 = u32::MAX;
/// Response status: success.
pub const STATUS_OK: u8 = 0;
/// Response status: unknown path or sysconf key.
pub const STATUS_NOT_FOUND: u8 = 1;

/// Largest accepted request frame (paths and key names are short).
const MAX_REQUEST: u32 = 4096;

/// Parse a wire sysconf key name.
pub fn sysconf_key(name: &str) -> Option<Sysconf> {
    match name {
        "nprocessors_onln" => Some(Sysconf::NprocessorsOnln),
        "nprocessors_conf" => Some(Sysconf::NprocessorsConf),
        "phys_pages" => Some(Sysconf::PhysPages),
        "avphys_pages" => Some(Sysconf::AvphysPages),
        "pagesize" => Some(Sysconf::PageSize),
        _ => None,
    }
}

fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)
}

fn read_frame(stream: &mut impl Read, max: u32) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        // Clean EOF between frames ends the conversation.
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit {max}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One poll of the server-side frame reader.
enum ServerRead {
    /// A whole request frame.
    Frame(Vec<u8>),
    /// Peer closed between frames.
    Eof,
    /// No frame started within the poll window; check the stop flag.
    Idle,
}

/// Read a request frame on a stream with a read timeout. A timeout
/// *before any byte of the length prefix* is an idle poll; once a frame
/// has started, keep reading through timeouts so a slow writer can't
/// corrupt framing.
fn server_read_frame(stream: &mut UnixStream, max: u32) -> io::Result<ServerRead> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(ServerRead::Eof)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => got += n,
            Err(e)
                if got == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(ServerRead::Idle);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit {max}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ServerRead::Frame(payload))
}

fn encode_response(status: u8, generation: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + body.len());
    out.push(status);
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Handle one connection until EOF, error, or server shutdown.
fn serve_connection(
    server: &ViewServer,
    mut stream: UnixStream,
    stop: &AtomicBool,
) -> io::Result<()> {
    let client = server.client();
    loop {
        let req = match server_read_frame(&mut stream, MAX_REQUEST)? {
            ServerRead::Frame(req) => req,
            ServerRead::Eof => return Ok(()),
            ServerRead::Idle => {
                if stop.load(Ordering::Acquire) {
                    return Ok(());
                }
                continue;
            }
        };
        server
            .metrics_ref()
            .wire_requests
            .fetch_add(1, Ordering::Relaxed);
        let response = match decode_request(&req) {
            Some((KIND_READ, caller, key)) => match client.read(caller, key) {
                Some(view) => encode_response(STATUS_OK, view.generation, view.image.as_bytes()),
                None => encode_response(STATUS_NOT_FOUND, 0, &[]),
            },
            Some((KIND_SYSCONF, caller, key)) => match sysconf_key(key) {
                Some(q) => {
                    let value = client.sysconf(caller, q);
                    let generation = caller.and_then(|id| client.generation(id)).unwrap_or(0);
                    encode_response(STATUS_OK, generation, value.to_string().as_bytes())
                }
                None => encode_response(STATUS_NOT_FOUND, 0, &[]),
            },
            _ => {
                server
                    .metrics_ref()
                    .wire_errors
                    .fetch_add(1, Ordering::Relaxed);
                encode_response(STATUS_NOT_FOUND, 0, &[])
            }
        };
        write_frame(&mut stream, &response)?;
    }
}

fn decode_request(payload: &[u8]) -> Option<(u8, Option<CgroupId>, &str)> {
    if payload.len() < 5 {
        return None;
    }
    let kind = payload[0];
    if kind != KIND_READ && kind != KIND_SYSCONF {
        return None;
    }
    let raw = u32::from_le_bytes(payload[1..5].try_into().unwrap());
    let caller = (raw != HOST_CALLER).then_some(CgroupId(raw));
    let key = std::str::from_utf8(&payload[5..]).ok()?;
    Some((kind, caller, key))
}

/// The listening daemon front-end: accepts connections on a Unix socket
/// and serves them, each on its own thread, until shut down.
#[derive(Debug)]
pub struct WireServer {
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    socket_path: PathBuf,
}

impl WireServer {
    /// Bind `socket_path` (removing any stale socket file first) and
    /// start accepting.
    pub fn spawn(server: ViewServer, socket_path: impl AsRef<Path>) -> io::Result<WireServer> {
        let socket_path = socket_path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&socket_path);
        let listener = UnixListener::bind(&socket_path)?;
        // Nonblocking accept so the loop can observe the stop flag.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_handle = std::thread::Builder::new()
            .name("arv-viewd-accept".into())
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                while !stop2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            // Blocking reads with a short timeout: the
                            // connection thread polls the stop flag
                            // between frames, so shutdown can always
                            // join it.
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
                            let server = server.clone();
                            let stop3 = Arc::clone(&stop2);
                            workers.push(
                                std::thread::Builder::new()
                                    .name("arv-viewd-conn".into())
                                    .spawn(move || {
                                        let _ = serve_connection(&server, stream, &stop3);
                                    })
                                    .expect("spawn connection thread"),
                            );
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                    workers.retain(|w| !w.is_finished());
                }
                for w in workers {
                    let _ = w.join();
                }
            })
            .expect("spawn accept thread");
        Ok(WireServer {
            stop,
            accept_handle: Some(accept_handle),
            socket_path,
        })
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// Stop accepting, wait for in-flight connections, unlink the socket.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Client side of the wire protocol.
#[derive(Debug)]
pub struct WireClient {
    stream: UnixStream,
}

/// A successful wire read: body bytes plus the server-side generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// The response body (file image, or decimal sysconf value).
    pub body: Vec<u8>,
    /// Generation of the view that produced the answer.
    pub generation: u64,
}

impl WireClient {
    /// Connect to a daemon's socket.
    pub fn connect(socket_path: impl AsRef<Path>) -> io::Result<WireClient> {
        Ok(WireClient {
            stream: UnixStream::connect(socket_path)?,
        })
    }

    fn request(
        &mut self,
        kind: u8,
        caller: Option<CgroupId>,
        key: &str,
    ) -> io::Result<Option<WireResponse>> {
        let mut payload = Vec::with_capacity(5 + key.len());
        payload.push(kind);
        payload.extend_from_slice(&caller.map_or(HOST_CALLER, |c| c.0).to_le_bytes());
        payload.extend_from_slice(key.as_bytes());
        write_frame(&mut self.stream, &payload)?;
        let Some(resp) = read_frame(&mut self.stream, u32::MAX)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-request",
            ));
        };
        if resp.len() < 9 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "short response frame",
            ));
        }
        let status = resp[0];
        let generation = u64::from_le_bytes(resp[1..9].try_into().unwrap());
        match status {
            STATUS_OK => Ok(Some(WireResponse {
                body: resp[9..].to_vec(),
                generation,
            })),
            _ => Ok(None),
        }
    }

    /// Read a virtual file as `caller`; `Ok(None)` is ENOENT.
    pub fn read(
        &mut self,
        caller: Option<CgroupId>,
        path: &str,
    ) -> io::Result<Option<WireResponse>> {
        self.request(KIND_READ, caller, path)
    }

    /// Query a sysconf value by wire key name (e.g. `"nprocessors_onln"`).
    pub fn sysconf(&mut self, caller: Option<CgroupId>, key: &str) -> io::Result<Option<u64>> {
        let resp = self.request(KIND_SYSCONF, caller, key)?;
        match resp {
            Some(r) => {
                let text = std::str::from_utf8(&r.body)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                let value = text
                    .parse::<u64>()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                Ok(Some(value))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::HostSpec;
    use arv_cgroups::Bytes;
    use arv_resview::{CpuBounds, EffectiveCpuConfig, EffectiveMemory, EffectiveMemoryConfig};

    fn test_socket(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("arv-viewd-test-{}-{tag}.sock", std::process::id()))
    }

    fn spawn_server(tag: &str) -> (ViewServer, WireServer, CgroupId) {
        let server = ViewServer::new(HostSpec::paper_testbed(), 8);
        let id = CgroupId(7);
        server.register(
            id,
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            EffectiveMemory::new(
                Bytes::from_mib(500),
                Bytes::from_gib(1),
                Bytes::from_mib(64),
                Bytes::from_mib(128),
                EffectiveMemoryConfig::default(),
            ),
        );
        let wire = WireServer::spawn(server.clone(), test_socket(tag)).unwrap();
        (server, wire, id)
    }

    #[test]
    fn round_trip_read_and_sysconf() {
        let (server, wire, id) = spawn_server("rt");
        let mut client = WireClient::connect(wire.socket_path()).unwrap();
        let resp = client.read(Some(id), "/proc/cpuinfo").unwrap().unwrap();
        let text = String::from_utf8(resp.body).unwrap();
        assert_eq!(text.matches("processor").count(), 4);
        assert_eq!(
            client.sysconf(Some(id), "nprocessors_onln").unwrap(),
            Some(4)
        );
        assert_eq!(client.sysconf(None, "nprocessors_onln").unwrap(), Some(20));
        assert_eq!(client.sysconf(Some(id), "pagesize").unwrap(), Some(4096));
        assert!(server.metrics().wire_requests >= 4);
        wire.shutdown();
    }

    #[test]
    fn not_found_paths_and_keys() {
        let (_server, wire, id) = spawn_server("enoent");
        let mut client = WireClient::connect(wire.socket_path()).unwrap();
        assert!(client.read(Some(id), "/nope").unwrap().is_none());
        assert!(client.sysconf(Some(id), "bogus_key").unwrap().is_none());
        wire.shutdown();
    }

    #[test]
    fn generation_travels_with_responses() {
        let (server, wire, id) = spawn_server("gen");
        let mut client = WireClient::connect(wire.socket_path()).unwrap();
        let before = client.read(Some(id), "/proc/meminfo").unwrap().unwrap();
        server.mirror(id, 8, Bytes::from_mib(800), Bytes::from_mib(700));
        let after = client.read(Some(id), "/proc/meminfo").unwrap().unwrap();
        assert!(after.generation > before.generation);
        assert!(String::from_utf8(after.body)
            .unwrap()
            .contains(&format!("MemTotal: {} kB", 800 * 1024)));
        wire.shutdown();
    }

    #[test]
    fn multiple_concurrent_connections() {
        let (_server, wire, id) = spawn_server("conc");
        let path = wire.socket_path().to_path_buf();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let path = path.clone();
                std::thread::spawn(move || {
                    let mut client = WireClient::connect(&path).unwrap();
                    for _ in 0..50 {
                        let v = client.sysconf(Some(id), "nprocessors_onln").unwrap();
                        assert_eq!(v, Some(4));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        wire.shutdown();
    }

    #[test]
    fn malformed_frame_counts_as_wire_error() {
        let (server, wire, _) = spawn_server("bad");
        let mut stream = UnixStream::connect(wire.socket_path()).unwrap();
        // kind 9 is unknown; server must answer NOT_FOUND, not hang.
        write_frame(&mut stream, &[9u8, 0, 0, 0, 0]).unwrap();
        let resp = read_frame(&mut stream, u32::MAX).unwrap().unwrap();
        assert_eq!(resp[0], STATUS_NOT_FOUND);
        // Give the counter a moment (same thread wrote it before reply).
        assert!(server.metrics().wire_errors >= 1);
        wire.shutdown();
    }

    #[test]
    fn oversized_frame_closes_connection() {
        let (_server, wire, _) = spawn_server("big");
        let mut stream = UnixStream::connect(wire.socket_path()).unwrap();
        stream.write_all(&(10_000_000u32).to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 64]).unwrap();
        // Server drops the connection; the next read sees EOF.
        let mut buf = [0u8; 1];
        let n = stream.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0);
        wire.shutdown();
    }
}
