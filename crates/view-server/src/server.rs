//! The view server and its in-process client handle.
//!
//! `arv-viewd` owns a [`ShardedRegistry`] of live namespace cells and
//! answers two kinds of queries for any registered container:
//!
//! * **file reads** — full images of the virtual files resource probing
//!   opens (`/proc/cpuinfo`, `/proc/meminfo`, `/proc/stat`,
//!   `/sys/devices/system/cpu/online`, and the container's own cgroup
//!   interface files `cpu.max` / `memory.max`), rendered from one untorn
//!   [`ViewSnapshot`] and cached per `(container, path)` behind the
//!   cell's generation stamp;
//! * **sysconf** — the scalar parameters glibc derives from those files.
//!
//! Queries from host processes (no container identity) and for unknown
//! containers fall back to the physical host view, mirroring
//! [`arv_resview::VirtualSysfs`].

use arv_cgroups::{Bytes, CgroupId};
use arv_resview::{
    render, CpuBounds, EffectiveCpuConfig, EffectiveMemory, LiveRegistry, NsCell, StalenessPolicy,
    Sysconf, ViewHealth, ViewSnapshot, PAGE_SIZE,
};
use arv_telemetry::{CpuDecision, DecisionCause, MemDecision, PromText, Tracer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::cache::PathId;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::shard::{ContainerEntry, ShardedRegistry};

/// The host's physical configuration, answered to non-container callers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSpec {
    /// Online CPUs on the host.
    pub online_cpus: u32,
    /// Physical memory size.
    pub total_memory: Bytes,
    /// Free physical memory (static over a server's lifetime; the host
    /// side is not what the paper virtualizes).
    pub free_memory: Bytes,
    /// CFS period used when rendering `cpu.max`, in microseconds.
    pub cfs_period_us: u64,
}

impl HostSpec {
    /// The paper's testbed: 20 cores, 128 GiB, default 100 ms CFS period.
    pub fn paper_testbed() -> HostSpec {
        HostSpec {
            online_cpus: 20,
            total_memory: Bytes::from_gib(128),
            free_memory: Bytes::from_gib(100),
            cfs_period_us: 100_000,
        }
    }
}

/// A successful file read: the image plus the generation it reflects.
#[derive(Debug, Clone)]
pub struct ViewImage {
    /// The rendered file contents.
    pub image: Arc<String>,
    /// Generation of the snapshot the image was rendered from (0 for
    /// host images, which never change).
    pub generation: u64,
    /// Health of the view the image was rendered from. `Degraded` means
    /// the image shows the conservative fallback view, not the live one.
    /// Host images are always `Fresh`.
    pub health: ViewHealth,
}

struct ServerInner {
    live: LiveRegistry,
    shards: ShardedRegistry,
    host: HostSpec,
    host_images: HashMap<&'static str, Arc<String>>,
    metrics: Metrics,
    policy: StalenessPolicy,
    // Update-timer tick, advanced by the driver; cells whose stamp lags
    // this clock past the policy budget are served degraded.
    clock: AtomicU64,
    // Tick of the last warm restart, or `u64::MAX` when no recovery is
    // in flight. The first Fresh-health serve after a restart records
    // the recovery latency and resets this to `u64::MAX`.
    restore_tick: AtomicU64,
    // Decision-provenance trace shared with the registry's cells (a
    // disabled tracer unless built via `with_telemetry`).
    tracer: Tracer,
}

/// The daemon state: registry, caches, host fallback, metrics.
///
/// Cloning is cheap (one `Arc`); [`ViewServer::client`] hands out
/// [`ViewClient`] query handles backed by the same state.
#[derive(Clone)]
pub struct ViewServer {
    inner: Arc<ServerInner>,
}

/// Paths the server can render for a container.
pub const CONTAINER_PATHS: [&str; 6] = [
    "/proc/cpuinfo",
    "/proc/meminfo",
    "/proc/stat",
    "/sys/devices/system/cpu/online",
    "cpu.max",
    "memory.max",
];

impl ViewServer {
    /// A server for `host` with `shards` registry shards and the default
    /// [`StalenessPolicy`]. The staleness clock starts at 0 and only
    /// moves when the driver calls [`advance_tick`](ViewServer::advance_tick),
    /// so a server that never advances it behaves exactly as before
    /// staleness awareness existed.
    pub fn new(host: HostSpec, shards: usize) -> ViewServer {
        ViewServer::with_policy(host, shards, StalenessPolicy::default())
    }

    /// A server with an explicit staleness policy.
    pub fn with_policy(host: HostSpec, shards: usize, policy: StalenessPolicy) -> ViewServer {
        ViewServer::with_telemetry(host, shards, policy, Tracer::disabled())
    }

    /// A server with an explicit staleness policy and a shared
    /// decision-provenance [`Tracer`]. Every cell registered through
    /// this server emits into the same trace ring the monitor side
    /// uses, so a container's timeline interleaves monitor decisions
    /// with the serving layer's degraded-fallback switches.
    pub fn with_telemetry(
        host: HostSpec,
        shards: usize,
        policy: StalenessPolicy,
        tracer: Tracer,
    ) -> ViewServer {
        let mut host_images: HashMap<&'static str, Arc<String>> = HashMap::new();
        // Host images are immutable for the server's lifetime; render
        // them once so the host path is always a cache hit.
        host_images.insert("/proc/cpuinfo", Arc::new(render::cpuinfo(host.online_cpus)));
        host_images.insert("/proc/stat", Arc::new(render::stat(host.online_cpus)));
        host_images.insert(
            "/proc/meminfo",
            Arc::new(render::meminfo(host.total_memory, host.free_memory)),
        );
        let cpu_list = Arc::new(render::cpu_list(host.online_cpus));
        host_images.insert("/sys/devices/system/cpu/online", Arc::clone(&cpu_list));
        host_images.insert("/sys/devices/system/cpu/possible", Arc::clone(&cpu_list));
        host_images.insert("/sys/devices/system/cpu/present", cpu_list);
        ViewServer {
            inner: Arc::new(ServerInner {
                live: LiveRegistry::with_tracer(tracer.clone()),
                shards: ShardedRegistry::new(shards),
                host,
                host_images,
                metrics: Metrics::new(),
                policy,
                clock: AtomicU64::new(0),
                restore_tick: AtomicU64::new(u64::MAX),
                tracer,
            }),
        }
    }

    /// The decision-provenance tracer this server emits into (disabled
    /// unless the server was built via
    /// [`with_telemetry`](ViewServer::with_telemetry)).
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Advance the staleness clock by one update-timer firing. Called by
    /// the driver on every firing, whether or not views were refreshed —
    /// that difference is exactly what staleness measures.
    pub fn advance_tick(&self) -> u64 {
        self.inner.clock.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Current staleness-clock tick.
    pub fn now_tick(&self) -> u64 {
        self.inner.clock.load(Ordering::Acquire)
    }

    /// The staleness policy views are judged against.
    pub fn policy(&self) -> StalenessPolicy {
        self.inner.policy
    }

    /// Refresh a container's conservative fallback view (Algorithm 1's
    /// lower bound and the soft limit), used when its live view degrades.
    pub fn set_fallback(&self, id: CgroupId, cpus: u32, mem: Bytes) -> bool {
        match self.inner.shards.get(id) {
            Some(entry) => {
                entry.cell.set_fallback(cpus, mem);
                true
            }
            None => false,
        }
    }

    /// Register a container; the returned cell is shared with the
    /// registry (updaters apply samples through it or through
    /// [`arv_resview::LiveMonitor`] on [`ViewServer::live_registry`]).
    pub fn register(
        &self,
        id: CgroupId,
        bounds: CpuBounds,
        cpu_cfg: EffectiveCpuConfig,
        mem: EffectiveMemory,
    ) -> Arc<NsCell> {
        let cell = self.inner.live.register(id, bounds, cpu_cfg, mem);
        self.inner.shards.insert(id, Arc::clone(&cell));
        cell
    }

    /// Remove a container (its cell stays valid for outstanding holders).
    pub fn unregister(&self, id: CgroupId) {
        self.inner.shards.remove(id);
        self.inner.live.unregister(id);
    }

    /// The underlying live registry, e.g. to spawn a
    /// [`arv_resview::LiveMonitor`] updating every registered cell.
    pub fn live_registry(&self) -> LiveRegistry {
        self.inner.live.clone()
    }

    /// Number of registered containers.
    pub fn len(&self) -> usize {
        self.inner.shards.len()
    }

    /// Whether no container is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.shards.is_empty()
    }

    /// An in-process query handle.
    pub fn client(&self) -> ViewClient {
        ViewClient {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The live metrics (counters update concurrently).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Direct access for instrumenting callers (wire server, benches).
    pub(crate) fn metrics_ref(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Prometheus text-format exposition of the daemon's counters,
    /// latency summaries, trace-ring health, and one gauge set per
    /// registered container (effective CPUs/memory, available memory,
    /// publish generation).
    pub fn prometheus_exposition(&self) -> String {
        let m = self.metrics();
        let mut out = PromText::new();
        out.counter("arv_viewd_queries", "Queries answered", m.queries as f64);
        out.counter(
            "arv_viewd_cache_hits",
            "Cached-render answers",
            m.cache_hits as f64,
        );
        out.counter(
            "arv_viewd_cache_misses",
            "Fresh-render answers",
            m.cache_misses as f64,
        );
        out.counter("arv_viewd_failures", "Failed queries", m.failures as f64);
        out.counter(
            "arv_viewd_wire_requests",
            "Wire requests decoded",
            m.wire_requests as f64,
        );
        out.counter(
            "arv_viewd_wire_errors",
            "Malformed wire requests",
            m.wire_errors as f64,
        );
        out.counter(
            "arv_viewd_stale_serves",
            "Queries served from a within-budget stale view",
            m.stale_serves as f64,
        );
        out.counter(
            "arv_viewd_degraded_serves",
            "Queries served from the conservative fallback view",
            m.degraded_serves as f64,
        );
        out.counter(
            "arv_viewd_requests_shed",
            "Requests refused with OK_SHED under overload",
            m.requests_shed as f64,
        );
        out.counter(
            "arv_viewd_conns_evicted_slow",
            "Connections evicted for stalling past the write deadline",
            m.conns_evicted_slow as f64,
        );
        out.counter(
            "arv_viewd_conns_evicted_backlog",
            "Connections evicted for exceeding the outbound-queue byte cap",
            m.conns_evicted_backlog as f64,
        );
        out.counter(
            "arv_viewd_restore_reconciled_containers",
            "Containers reconciled during warm restarts",
            m.restore_reconciled_containers as f64,
        );
        out.counter(
            "arv_viewd_journal_truncated_records",
            "Journal records discarded as torn or corrupt during restore",
            m.journal_truncated_records as f64,
        );
        out.counter(
            "arv_viewd_journal_io_errors",
            "Store errors the host's journal has absorbed",
            m.journal_io_errors as f64,
        );
        out.gauge(
            "arv_viewd_journal_fallback_bytes",
            "Bytes held in the flagged in-memory fallback journal",
            m.journal_fallback_bytes as f64,
        );
        out.gauge(
            "arv_viewd_durability_lost",
            "Whether the host's journal durability is lost (1) or intact (0)",
            if m.durability_lost { 1.0 } else { 0.0 },
        );
        out.header(
            "arv_viewd_recovery_latency_ticks",
            "Ticks from warm restart to the first Fresh serve",
            "gauge",
        );
        out.labeled(
            "arv_viewd_recovery_latency_ticks",
            &[("stat", "mean".to_string())],
            m.recovery_latency_mean,
        );
        out.labeled(
            "arv_viewd_recovery_latency_ticks",
            &[("stat", "p99".to_string())],
            m.recovery_latency_p99 as f64,
        );
        out.header(
            "arv_viewd_hit_latency_ns",
            "Cached-hit query latency, nanoseconds",
            "gauge",
        );
        out.labeled(
            "arv_viewd_hit_latency_ns",
            &[("stat", "mean".to_string())],
            m.hit_latency_ns,
        );
        out.labeled(
            "arv_viewd_hit_latency_ns",
            &[("stat", "p99".to_string())],
            m.hit_p99_ns as f64,
        );
        out.header(
            "arv_viewd_wire_latency_ns",
            "Wire request latency (decode to encode), nanoseconds",
            "gauge",
        );
        out.labeled(
            "arv_viewd_wire_latency_ns",
            &[("stat", "mean".to_string())],
            m.wire_latency_ns,
        );
        out.labeled(
            "arv_viewd_wire_latency_ns",
            &[("stat", "p99".to_string())],
            m.wire_p99_ns as f64,
        );
        let tracer = self.tracer();
        out.counter(
            "arv_trace_events",
            "Decision-provenance events emitted",
            tracer.emitted() as f64,
        );
        out.counter(
            "arv_trace_dropped",
            "Trace events overwritten before being read",
            tracer.dropped_events() as f64,
        );
        out.header(
            "arv_container_effective_cpus",
            "Per-container effective CPU count",
            "gauge",
        );
        out.header(
            "arv_container_effective_bytes",
            "Per-container effective memory size",
            "gauge",
        );
        out.header(
            "arv_container_available_bytes",
            "Per-container available memory in the view",
            "gauge",
        );
        out.header(
            "arv_container_generation",
            "Per-container view publish generation",
            "gauge",
        );
        let mut ids = self.inner.shards.ids();
        ids.sort_unstable_by_key(|id| id.0);
        for id in ids {
            let Some(entry) = self.inner.shards.get(id) else {
                continue; // unregistered between listing and lookup
            };
            let snap = entry.cell.snapshot();
            let labels = [("container", id.0.to_string())];
            out.labeled(
                "arv_container_effective_cpus",
                &labels,
                f64::from(snap.cpus),
            );
            out.labeled(
                "arv_container_effective_bytes",
                &labels,
                snap.bytes.as_u64() as f64,
            );
            out.labeled(
                "arv_container_available_bytes",
                &labels,
                snap.avail.as_u64() as f64,
            );
            out.labeled("arv_container_generation", &labels, snap.generation as f64);
        }
        out.finish()
    }

    /// Record a warm restart: `reconciled` containers had their restored
    /// views clamped against the fresh cgroup hierarchy, and `truncated`
    /// journal records were discarded as torn or corrupt. Starts the
    /// recovery-latency clock — the first Fresh-health serve after this
    /// call records how many ticks recovery took.
    pub fn note_restore(&self, reconciled: u64, truncated: u64) {
        let m = &self.inner.metrics;
        m.restore_reconciled_containers
            .fetch_add(reconciled, Ordering::Relaxed);
        m.journal_truncated_records
            .fetch_add(truncated, Ordering::Relaxed);
        self.inner
            .restore_tick
            .store(self.now_tick(), Ordering::Release);
    }

    /// Mirror the host's durability ladder into the daemon's metrics:
    /// whether journal durability is currently `lost`, the absolute
    /// store-error count, and the size of the flagged in-memory
    /// fallback journal. Called by the monitor daemon on every rung
    /// transition.
    pub fn note_durability(&self, lost: bool, io_errors: u64, fallback_bytes: u64) {
        let m = &self.inner.metrics;
        m.durability_lost.store(u64::from(lost), Ordering::Relaxed);
        m.journal_io_errors.store(io_errors, Ordering::Relaxed);
        m.journal_fallback_bytes
            .store(fallback_bytes, Ordering::Relaxed);
    }

    /// Mirror externally computed views into a container's cell (the
    /// simulation driver path; see [`arv_resview::NsCell::force_publish`]).
    pub fn mirror(&self, id: CgroupId, cpus: u32, mem: Bytes, avail: Bytes) -> bool {
        match self.inner.shards.get(id) {
            Some(entry) => {
                entry.cell.force_publish(cpus, mem, avail);
                entry.cell.stamp(self.now_tick());
                true
            }
            None => false,
        }
    }
}

impl std::fmt::Debug for ViewServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewServer")
            .field("containers", &self.len())
            .field("shards", &self.inner.shards.shard_count())
            .finish()
    }
}

/// In-process query handle over a [`ViewServer`]'s state.
#[derive(Clone)]
pub struct ViewClient {
    inner: Arc<ServerInner>,
}

impl ViewClient {
    /// Read a virtual file as seen by `caller`. `None` caller — or a
    /// container the server doesn't know — gets the host image. Returns
    /// `None` for unsupported paths (ENOENT).
    pub fn read(&self, caller: Option<CgroupId>, path: &str) -> Option<ViewImage> {
        let m = &self.inner.metrics;
        m.queries.fetch_add(1, Ordering::Relaxed);
        let entry = caller.and_then(|id| self.inner.shards.get(id));
        let result = match entry {
            Some(entry) => self.read_container(&entry, path),
            None => self.read_host(path),
        };
        if result.is_none() {
            m.failures.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Read a virtual file only if it can be answered without rendering:
    /// host images (immutable, always cached) and container images whose
    /// cached render matches the cell's current generation. Returns
    /// `None` when answering would require a render (cache miss,
    /// mid-publish generation, degraded fallback) or the path is
    /// unknown — the load-shedding tier-2 signal: under pressure the
    /// wire layer serves what this returns and sheds the rest.
    pub fn read_cached(&self, caller: Option<CgroupId>, path: &str) -> Option<ViewImage> {
        let entry = caller.and_then(|id| self.inner.shards.get(id));
        let Some(entry) = entry else {
            return self.count_query(self.read_host(path));
        };
        if matches!(
            path,
            "/sys/devices/system/cpu/possible" | "/sys/devices/system/cpu/present"
        ) {
            return self.count_query(self.read_host(path));
        }
        let start = Instant::now();
        let id = PathId::resolve(path)?;
        let now = self.inner.clock.load(Ordering::Acquire);
        let health = entry.cell.health(now, &self.inner.policy);
        if health.is_degraded() {
            return None; // fallback images are rendered per read
        }
        let generation = entry.cell.generation();
        if generation & 1 != 0 {
            return None; // publish in flight; snapshot would be a render
        }
        let image = entry.cache.get(id, generation)?;
        let m = &self.inner.metrics;
        m.queries.fetch_add(1, Ordering::Relaxed);
        m.staleness_age.record(health.age());
        if matches!(health, ViewHealth::Stale { .. }) {
            m.stale_serves.fetch_add(1, Ordering::Relaxed);
        }
        m.hit_latency.record(start.elapsed().as_nanos() as u64);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        Some(ViewImage {
            image,
            generation,
            health,
        })
    }

    /// Count the query that wrapped a host-image lookup (the host path
    /// records its own hit metrics; the query counter is the caller's).
    fn count_query(&self, result: Option<ViewImage>) -> Option<ViewImage> {
        if result.is_some() {
            self.inner.metrics.queries.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Health of the view `caller` would currently be served (host and
    /// unknown-container callers read physical values, always fresh).
    pub fn health(&self, caller: Option<CgroupId>) -> ViewHealth {
        match caller.and_then(|id| self.inner.shards.get(id)) {
            Some(entry) => entry
                .cell
                .health(self.inner.clock.load(Ordering::Acquire), &self.inner.policy),
            None => ViewHealth::Fresh,
        }
    }

    /// Judge one container entry and record the staleness metrics that
    /// go with serving it.
    fn judge(&self, entry: &ContainerEntry) -> ViewHealth {
        let m = &self.inner.metrics;
        let now = self.inner.clock.load(Ordering::Acquire);
        let health = entry.cell.health(now, &self.inner.policy);
        m.staleness_age.record(health.age());
        match health {
            ViewHealth::Fresh => {
                // First Fresh serve after a warm restart closes the
                // recovery-latency clock (compare-exchange so exactly
                // one racing query records it).
                let restored = self.inner.restore_tick.load(Ordering::Acquire);
                if restored != u64::MAX
                    && self
                        .inner
                        .restore_tick
                        .compare_exchange(restored, u64::MAX, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                {
                    m.recovery_latency.record(now.saturating_sub(restored));
                }
            }
            ViewHealth::Stale { .. } => {
                m.stale_serves.fetch_add(1, Ordering::Relaxed);
            }
            ViewHealth::Degraded { .. } => {
                m.degraded_serves.fetch_add(1, Ordering::Relaxed);
                self.trace_degraded(entry, now);
            }
        }
        health
    }

    /// Trace the switch to the conservative fallback view, once per
    /// container per staleness tick (the hot query path may judge the
    /// same degraded entry thousands of times within one tick).
    fn trace_degraded(&self, entry: &ContainerEntry, now: u64) {
        if !self.inner.tracer.is_enabled() {
            return;
        }
        if entry.degraded_tick.swap(now, Ordering::AcqRel) == now {
            return; // already traced this tick
        }
        let live = entry.cell.snapshot();
        let fallback = entry.cell.degraded_snapshot();
        let id = entry.cell.id();
        if live.cpus != fallback.cpus {
            self.inner.tracer.emit_cpu(
                now,
                id,
                CpuDecision {
                    cause: DecisionCause::DegradedFallback,
                    before: live.cpus,
                    after: fallback.cpus,
                    utilization: 0.0,
                    had_slack: false,
                },
            );
        }
        if live.bytes != fallback.bytes {
            self.inner.tracer.emit_mem(
                now,
                id,
                MemDecision {
                    cause: DecisionCause::DegradedFallback,
                    before: live.bytes,
                    after: fallback.bytes,
                    usage: Bytes(0),
                    free: Bytes(0),
                },
            );
        }
    }

    fn read_host(&self, path: &str) -> Option<ViewImage> {
        let start = Instant::now();
        let image = self.inner.host_images.get(path).cloned()?;
        self.inner
            .metrics
            .hit_latency
            .record(start.elapsed().as_nanos() as u64);
        self.inner
            .metrics
            .cache_hits
            .fetch_add(1, Ordering::Relaxed);
        Some(ViewImage {
            image,
            generation: 0,
            health: ViewHealth::Fresh,
        })
    }

    fn read_container(&self, entry: &ContainerEntry, path: &str) -> Option<ViewImage> {
        // Hardware-property files are host-global even inside a view.
        if matches!(
            path,
            "/sys/devices/system/cpu/possible" | "/sys/devices/system/cpu/present"
        ) {
            return self.read_host(path);
        }
        let m = &self.inner.metrics;
        let start = Instant::now();
        let id = PathId::resolve(path)?;
        let health = self.judge(entry);
        if health.is_degraded() {
            // Degraded: render the conservative fallback view. Never
            // cached — the cache is keyed by generation, and the same
            // generation must go back to serving the live image the
            // moment the cell is refreshed.
            let snap = entry.cell.degraded_snapshot();
            let rendered = Arc::new(render_container_image(id, &snap, &self.inner.host));
            m.miss_latency.record(start.elapsed().as_nanos() as u64);
            m.cache_misses.fetch_add(1, Ordering::Relaxed);
            return Some(ViewImage {
                image: rendered,
                generation: snap.generation,
                health,
            });
        }
        // Fast path: one generation load. If the stamp is even (no write
        // in flight) and the cache holds an image at exactly that stamp,
        // the image is consistent by construction — it was rendered from
        // a snapshot taken at the same generation.
        let generation = entry.cell.generation();
        if generation & 1 == 0 {
            if let Some(image) = entry.cache.get(id, generation) {
                m.hit_latency.record(start.elapsed().as_nanos() as u64);
                m.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Some(ViewImage {
                    image,
                    generation,
                    health,
                });
            }
        }
        // Miss (or mid-publish): take a full untorn snapshot and render
        // from it alone, so an image can never mix two generations.
        let snap = entry.cell.snapshot();
        let rendered = Arc::new(render_container_image(id, &snap, &self.inner.host));
        entry.cache.put(id, snap.generation, Arc::clone(&rendered));
        m.miss_latency.record(start.elapsed().as_nanos() as u64);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        Some(ViewImage {
            image: rendered,
            generation: snap.generation,
            health,
        })
    }

    /// Answer a `sysconf` query for `caller` (host values for `None` or
    /// unknown containers, like [`arv_resview::VirtualSysfs::sysconf`]).
    pub fn sysconf(&self, caller: Option<CgroupId>, query: Sysconf) -> u64 {
        let m = &self.inner.metrics;
        m.queries.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let entry = caller.and_then(|id| self.inner.shards.get(id));
        let value = match entry {
            Some(entry) => {
                let snap = if self.judge(&entry).is_degraded() {
                    entry.cell.degraded_snapshot()
                } else {
                    entry.cell.snapshot()
                };
                match query {
                    Sysconf::PageSize => PAGE_SIZE,
                    Sysconf::NprocessorsOnln | Sysconf::NprocessorsConf => u64::from(snap.cpus),
                    Sysconf::PhysPages => snap.bytes.as_u64() / PAGE_SIZE,
                    Sysconf::AvphysPages => snap.avail.as_u64() / PAGE_SIZE,
                }
            }
            None => {
                let host = &self.inner.host;
                match query {
                    Sysconf::PageSize => PAGE_SIZE,
                    Sysconf::NprocessorsOnln | Sysconf::NprocessorsConf => {
                        u64::from(host.online_cpus)
                    }
                    Sysconf::PhysPages => host.total_memory.as_u64() / PAGE_SIZE,
                    Sysconf::AvphysPages => host.free_memory.as_u64() / PAGE_SIZE,
                }
            }
        };
        // Sysconf needs no render; it always counts as the cheap path.
        m.hit_latency.record(start.elapsed().as_nanos() as u64);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        value
    }

    /// The generation currently published for a container (`None` if the
    /// container is unknown).
    pub fn generation(&self, id: CgroupId) -> Option<u64> {
        self.inner.shards.get(id).map(|e| e.cell.generation())
    }
}

impl std::fmt::Debug for ViewClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewClient").finish_non_exhaustive()
    }
}

/// Render a container-visible file image entirely from one snapshot.
fn render_container_image(id: PathId, snap: &ViewSnapshot, host: &HostSpec) -> String {
    match id {
        PathId::Cpuinfo => render::cpuinfo(snap.cpus),
        PathId::Stat => render::stat(snap.cpus),
        PathId::Meminfo => render::meminfo(snap.bytes, snap.avail),
        PathId::OnlineCpus => render::cpu_list(snap.cpus),
        // The container's own cgroup interface files, rendered from the
        // *effective* view (what the adaptive runtime should size to).
        PathId::CpuMax => render::cpu_max(snap.cpus, host.cfs_period_us),
        PathId::MemoryMax => render::memory_max(snap.bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_resview::EffectiveMemoryConfig;

    fn mk_mem(soft_mib: u64, hard_mib: u64) -> EffectiveMemory {
        EffectiveMemory::new(
            Bytes::from_mib(soft_mib),
            Bytes::from_mib(hard_mib),
            Bytes::from_mib(64),
            Bytes::from_mib(128),
            EffectiveMemoryConfig::default(),
        )
    }

    fn server_with_one() -> (ViewServer, CgroupId) {
        let server = ViewServer::new(HostSpec::paper_testbed(), 8);
        let id = CgroupId(1);
        server.register(
            id,
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            mk_mem(500, 1024),
        );
        (server, id)
    }

    #[test]
    fn container_reads_render_the_view() {
        let (server, id) = server_with_one();
        let client = server.client();
        let cpuinfo = client.read(Some(id), "/proc/cpuinfo").unwrap();
        assert_eq!(cpuinfo.image.matches("processor").count(), 4);
        let online = client
            .read(Some(id), "/sys/devices/system/cpu/online")
            .unwrap();
        assert_eq!(online.image.as_str(), "0-3");
        let meminfo = client.read(Some(id), "/proc/meminfo").unwrap();
        assert!(meminfo
            .image
            .contains(&format!("MemTotal: {} kB", 500 * 1024)));
        assert_eq!(
            client.read(Some(id), "cpu.max").unwrap().image.as_str(),
            "400000 100000\n"
        );
        // Both cgroup interface files reflect the *effective* view (4
        // CPUs, 500 MiB soft limit at start), not the static hard caps.
        assert_eq!(
            client.read(Some(id), "memory.max").unwrap().image.as_str(),
            format!("{}\n", Bytes::from_mib(500).as_u64())
        );
    }

    #[test]
    fn host_and_unknown_container_get_host_images() {
        let (server, _) = server_with_one();
        let client = server.client();
        let host_cpuinfo = client.read(None, "/proc/cpuinfo").unwrap();
        assert_eq!(host_cpuinfo.image.matches("processor").count(), 20);
        assert_eq!(host_cpuinfo.generation, 0);
        let unknown = client.read(Some(CgroupId(99)), "/proc/cpuinfo").unwrap();
        assert_eq!(unknown.image.matches("processor").count(), 20);
    }

    #[test]
    fn unknown_path_is_none_and_counts_as_failure() {
        let (server, id) = server_with_one();
        let client = server.client();
        assert!(client.read(Some(id), "/sys/kernel/unrelated").is_none());
        assert_eq!(server.metrics().failures, 1);
    }

    #[test]
    fn second_read_hits_the_cache() {
        let (server, id) = server_with_one();
        let client = server.client();
        let first = client.read(Some(id), "/proc/cpuinfo").unwrap();
        let second = client.read(Some(id), "/proc/cpuinfo").unwrap();
        assert!(Arc::ptr_eq(&first.image, &second.image));
        let m = server.metrics();
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.queries, 2);
    }

    #[test]
    fn update_invalidates_via_generation() {
        let (server, id) = server_with_one();
        let client = server.client();
        let before = client
            .read(Some(id), "/sys/devices/system/cpu/online")
            .unwrap();
        assert_eq!(before.image.as_str(), "0-3");
        server.mirror(id, 8, Bytes::from_mib(800), Bytes::from_mib(800));
        let after = client
            .read(Some(id), "/sys/devices/system/cpu/online")
            .unwrap();
        assert_eq!(after.image.as_str(), "0-7");
        assert!(after.generation > before.generation);
        let m = server.metrics();
        assert_eq!(m.cache_misses, 2); // one per generation
    }

    #[test]
    fn sysconf_matches_file_images() {
        let (server, id) = server_with_one();
        let client = server.client();
        assert_eq!(client.sysconf(Some(id), Sysconf::NprocessorsOnln), 4);
        assert_eq!(
            client.sysconf(Some(id), Sysconf::PhysPages) * PAGE_SIZE,
            Bytes::from_mib(500).as_u64()
        );
        assert_eq!(
            client.sysconf(Some(id), Sysconf::AvphysPages) * PAGE_SIZE,
            Bytes::from_mib(500).as_u64() // no usage observed yet
        );
        assert_eq!(client.sysconf(None, Sysconf::NprocessorsOnln), 20);
        assert_eq!(client.sysconf(Some(id), Sysconf::PageSize), PAGE_SIZE);
    }

    #[test]
    fn unregister_falls_back_to_host() {
        let (server, id) = server_with_one();
        let client = server.client();
        assert_eq!(server.len(), 1);
        server.unregister(id);
        assert!(server.is_empty());
        assert_eq!(
            client
                .read(Some(id), "/proc/cpuinfo")
                .unwrap()
                .image
                .matches("processor")
                .count(),
            20
        );
        assert!(client.generation(id).is_none());
    }

    #[test]
    fn hardware_property_files_stay_physical() {
        let (server, id) = server_with_one();
        let client = server.client();
        let possible = client
            .read(Some(id), "/sys/devices/system/cpu/possible")
            .unwrap();
        assert_eq!(possible.image.as_str(), "0-19");
    }

    #[test]
    fn stale_clock_degrades_to_fallback_and_recovers() {
        use arv_resview::ViewHealth;
        let (server, id) = server_with_one();
        let client = server.client();
        // Publish a grown view at tick 0.
        server.mirror(id, 8, Bytes::from_mib(800), Bytes::from_mib(700));
        assert!(client.health(Some(id)).is_fresh());
        assert_eq!(client.sysconf(Some(id), Sysconf::NprocessorsOnln), 8);

        // The timer keeps firing but nothing republishes: within budget
        // (default 4) the live view is still served, flagged stale.
        for _ in 0..3 {
            server.advance_tick();
        }
        assert_eq!(client.health(Some(id)), ViewHealth::Stale { age: 3 });
        assert_eq!(client.sysconf(Some(id), Sysconf::NprocessorsOnln), 8);

        // Past the budget the conservative fallback takes over: the
        // registration-time lower bound and soft limit.
        for _ in 0..2 {
            server.advance_tick();
        }
        let img = client.read(Some(id), "/proc/cpuinfo").unwrap();
        assert!(img.health.is_degraded());
        assert_eq!(img.image.matches("processor").count(), 4);
        assert_eq!(client.sysconf(Some(id), Sysconf::NprocessorsOnln), 4);
        assert_eq!(
            client.sysconf(Some(id), Sysconf::PhysPages) * PAGE_SIZE,
            Bytes::from_mib(500).as_u64()
        );
        let m = server.metrics();
        assert!(m.degraded_serves >= 3);
        assert!(m.stale_serves >= 1);

        // A fresh publish restores the live view immediately — and the
        // cache never served the degraded image for a live generation.
        server.mirror(id, 8, Bytes::from_mib(800), Bytes::from_mib(700));
        assert!(client.health(Some(id)).is_fresh());
        let img = client.read(Some(id), "/proc/cpuinfo").unwrap();
        assert!(img.health.is_fresh());
        assert_eq!(img.image.matches("processor").count(), 8);
    }

    #[test]
    fn explicit_fallback_override_is_served_when_degraded() {
        let (server, id) = server_with_one();
        let client = server.client();
        assert!(server.set_fallback(id, 2, Bytes::from_mib(250)));
        for _ in 0..(server.policy().budget + 1) {
            server.advance_tick();
        }
        assert_eq!(client.sysconf(Some(id), Sysconf::NprocessorsOnln), 2);
        assert_eq!(
            client.sysconf(Some(id), Sysconf::PhysPages) * PAGE_SIZE,
            Bytes::from_mib(250).as_u64()
        );
        assert!(!server.set_fallback(CgroupId(99), 1, Bytes::from_mib(1)));
    }

    #[test]
    fn degraded_provenance_is_deduped_per_tick() {
        use arv_telemetry::{EventKind, Tracer};
        let tracer = Tracer::bounded(64);
        let server = ViewServer::with_telemetry(
            HostSpec::paper_testbed(),
            8,
            StalenessPolicy::default(),
            tracer.clone(),
        );
        let id = CgroupId(1);
        server.register(
            id,
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            mk_mem(500, 1024),
        );
        let client = server.client();
        server.mirror(id, 8, Bytes::from_mib(800), Bytes::from_mib(700));
        for _ in 0..(server.policy().budget + 1) {
            server.advance_tick();
        }
        let fallback_decisions = |t: &Tracer| {
            t.events()
                .iter()
                .filter(|e| {
                    matches!(
                        e.kind,
                        EventKind::Cpu(CpuDecision {
                            cause: DecisionCause::DegradedFallback,
                            ..
                        }) | EventKind::Mem(MemDecision {
                            cause: DecisionCause::DegradedFallback,
                            ..
                        })
                    )
                })
                .count()
        };
        // Hammering the degraded path within one tick traces exactly one
        // CPU + one memory decision.
        for _ in 0..100 {
            client.read(Some(id), "/proc/cpuinfo").unwrap();
        }
        assert_eq!(fallback_decisions(&tracer), 2);
        // The next tick (still degraded) gets its own pair.
        server.advance_tick();
        client.read(Some(id), "/proc/cpuinfo").unwrap();
        assert_eq!(fallback_decisions(&tracer), 4);
    }

    #[test]
    fn prometheus_exposition_lists_counters_and_containers() {
        let (server, id) = server_with_one();
        let client = server.client();
        client.read(Some(id), "/proc/cpuinfo").unwrap();
        let text = server.prometheus_exposition();
        assert!(text.contains("# TYPE arv_viewd_queries counter"));
        assert!(text.contains("arv_viewd_queries_total 1"));
        assert!(text.contains("arv_container_effective_cpus{container=\"1\"} 4"));
        assert!(text.contains("arv_viewd_requests_shed_total"));
        assert!(text.contains("arv_viewd_conns_evicted_slow_total"));
        assert!(text.contains("arv_viewd_restore_reconciled_containers_total"));
        assert!(text.contains("arv_viewd_journal_truncated_records_total"));
        assert!(text.contains("arv_viewd_journal_io_errors_total"));
        assert!(text.contains("arv_viewd_journal_fallback_bytes"));
        assert!(text.contains("arv_viewd_durability_lost 0"));
        server.note_durability(true, 2, 512);
        let text = server.prometheus_exposition();
        assert!(text.contains("arv_viewd_durability_lost 1"));
        assert!(text.contains("arv_viewd_journal_io_errors_total 2"));
        assert!(text.contains("arv_viewd_journal_fallback_bytes 512"));
        assert!(text.contains("arv_viewd_recovery_latency_ticks{stat=\"p99\"}"));
        assert!(text.contains(&format!(
            "arv_container_effective_bytes{{container=\"1\"}} {}",
            Bytes::from_mib(500).as_u64()
        )));
    }

    #[test]
    fn note_restore_counts_and_recovery_latency_closes_on_first_fresh() {
        let (server, id) = server_with_one();
        let client = server.client();
        server.mirror(id, 8, Bytes::from_mib(800), Bytes::from_mib(700));
        server.advance_tick(); // tick 1
        server.note_restore(2, 3);
        // Recovery is in flight; two ticks pass before a fresh publish.
        server.advance_tick();
        server.advance_tick(); // tick 3
        server.mirror(id, 8, Bytes::from_mib(800), Bytes::from_mib(700));
        client.read(Some(id), "/proc/cpuinfo").unwrap();
        let m = server.metrics();
        assert_eq!(m.restore_reconciled_containers, 2);
        assert_eq!(m.journal_truncated_records, 3);
        assert!(
            m.recovery_latency_p99 >= 2,
            "first Fresh serve must record the recovery latency"
        );
        // Later Fresh serves do not re-record.
        client.read(Some(id), "/proc/cpuinfo").unwrap();
        assert_eq!(
            server.metrics().recovery_latency_p99,
            m.recovery_latency_p99
        );
    }

    #[test]
    fn host_callers_never_degrade() {
        let (server, _) = server_with_one();
        let client = server.client();
        for _ in 0..50 {
            server.advance_tick();
        }
        assert!(client.health(None).is_fresh());
        let img = client.read(None, "/proc/cpuinfo").unwrap();
        assert!(img.health.is_fresh());
        assert_eq!(img.image.matches("processor").count(), 20);
    }
}
