//! Figure 10: OpenMP (NPB) under static, dynamic, and adaptive thread
//! strategies, in two scenarios:
//!
//! * **(a)** five containers with equal shares each running the same NPB
//!   program — the dynamic heuristic sees a high system load and
//!   collapses to one thread despite each container's guaranteed share;
//! * **(b)** one container with a quota of 4 cores — the dynamic
//!   heuristic sees an idle host and floods the 4-CPU container with a
//!   20-thread team.
//!
//! Both misconfigurations lose badly to the adaptive strategy.

use arv_omp::{OmpRuntime, ThreadStrategy};
use arv_sim_core::SimDuration;
use arv_workloads::{npb_profile, NPB_BENCHMARKS};

use crate::driver::Fleet;
use crate::report::{FigReport, Row, Table};
use crate::scenarios::{scale_omp, testbed_with_containers, Layout};

const STRATEGIES: [&str; 3] = ["Static", "Dynamic", "Adaptive"];

fn strategy(name: &str, online: u32) -> ThreadStrategy {
    match name {
        // "The static strategy launches the same number of threads,
        // matching the number of online CPUs, for all parallel regions."
        "Static" => ThreadStrategy::Static(online),
        "Dynamic" => ThreadStrategy::Dynamic,
        "Adaptive" => ThreadStrategy::Adaptive,
        other => panic!("unknown strategy {other}"),
    }
}

/// Mean execution seconds over `n` containers running `profile` under
/// `strategy`, with the load average primed to `initial_load`.
fn run_case(
    n: u32,
    layout: Layout,
    strat: &str,
    profile: &arv_omp::OmpProfile,
    initial_load: f64,
) -> f64 {
    let (mut host, ids) = testbed_with_containers(n, layout);
    host.prime_loadavg(initial_load);
    let online = host.online_cpus();
    let mut fleet = Fleet::new();
    let idxs: Vec<usize> = ids
        .iter()
        .map(|id| {
            fleet.push_omp(OmpRuntime::launch(
                *id,
                strategy(strat, online),
                profile.clone(),
            ))
        })
        .collect();
    let deadline = profile
        .total_work()
        .mul_f64(200.0)
        .max(SimDuration::from_secs(600));
    let finished = fleet.run(&mut host, deadline);
    assert!(
        finished,
        "NPB {} under {strat} did not finish",
        profile.name
    );
    let total: f64 = idxs
        .iter()
        .map(|i| fleet.omp(*i).metrics().exec_wall.as_secs_f64())
        .sum();
    total / idxs.len() as f64
}

/// Run this study and produce its report.
pub fn run(scale: f64) -> FigReport {
    let mut shared = Table::new("five_containers_equal_shares", &STRATEGIES);
    let mut quota = Table::new("one_container_quota_4_cores", &STRATEGIES);

    for bench in NPB_BENCHMARKS {
        let profile = scale_omp(npb_profile(bench), scale);

        // (a) Five equal-share containers. The long-running colocated mix
        // keeps the 1-minute load average near the runnable-task count a
        // static configuration generates (5 × 20 threads).
        let mut execs_a = Vec::new();
        for strat in STRATEGIES {
            execs_a.push(run_case(5, Layout::default(), strat, &profile, 100.0));
        }
        shared.push(Row::full(
            bench,
            &execs_a.iter().map(|e| e / execs_a[2]).collect::<Vec<_>>(),
        ));

        // (b) One container with a 4-core quota on an otherwise idle host
        // (load average starts at zero).
        let layout = Layout {
            quota_cpus: Some(4.0),
            ..Layout::default()
        };
        let mut execs_b = Vec::new();
        for strat in STRATEGIES {
            execs_b.push(run_case(1, layout, strat, &profile, 0.0));
        }
        quota.push(Row::full(
            bench,
            &execs_b.iter().map(|e| e / execs_b[2]).collect::<Vec<_>>(),
        ));
    }

    let mut rep = FigReport::new(
        "10",
        "NPB OpenMP programs under static, dynamic, and adaptive threads",
    );
    rep.tables.push(shared);
    rep.tables.push(quota);
    rep.note("execution time normalized to Adaptive (lower is better)");
    rep.note("scenario (a) primes the 1-minute loadavg to the colocated mix's steady state (100)");
    rep.note("scenario (b) starts from an idle host (loadavg 0), so dynamic over-threads the 4-CPU container");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_wins_both_scenarios() {
        let rep = run(0.08);
        for table in &rep.tables {
            for bench in NPB_BENCHMARKS {
                let s = table.get(bench, "Static").unwrap();
                let d = table.get(bench, "Dynamic").unwrap();
                assert!(s >= 1.0, "{}/{bench}: static {s}", table.name);
                assert!(d >= 1.0, "{}/{bench}: dynamic {d}", table.name);
            }
        }
    }

    #[test]
    fn dynamic_is_worst_under_shared_load() {
        // The paper's surprise: dynamic loses even to static when the
        // high loadavg throttles every container to one thread.
        let rep = run(0.08);
        let shared = &rep.tables[0];
        let mut dynamic_worst = 0;
        for bench in NPB_BENCHMARKS {
            let s = shared.get(bench, "Static").unwrap();
            let d = shared.get(bench, "Dynamic").unwrap();
            if d >= s {
                dynamic_worst += 1;
            }
        }
        assert!(
            dynamic_worst >= 7,
            "dynamic should be the worst strategy in most programs ({dynamic_worst}/9)"
        );
    }

    #[test]
    fn static_overthreads_the_quota_container() {
        let rep = run(0.08);
        let quota = &rep.tables[1];
        for bench in ["ep", "lu", "sp"] {
            let s = quota.get(bench, "Static").unwrap();
            assert!(
                s > 1.3,
                "{bench}: a 20-thread team in a 4-CPU container should cost ≥30% ({s})"
            );
        }
    }
}
