//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. `UTIL_THRSHD` (Algorithm 1's 95% growth threshold) — adaptation
//!    latency vs spurious expansion;
//! 2. the ±1-CPU-per-update rate limit — convergence speed vs stability;
//! 3. the 10% memory-growth increment (Algorithm 2) — ramp time to the
//!    hard limit;
//! 4. the elastic heap's 10 s poll interval — how responsiveness affects
//!    the Figure 11 rescue.

use arv_cgroups::Bytes;
use arv_container::{ContainerSpec, SimHost};
use arv_jvm::{HeapPolicy, Jvm, JvmConfig};
use arv_resview::effective_cpu::EffectiveCpuConfig;
use arv_resview::effective_cpu::{CpuSample, EffectiveCpu, FractionalEffectiveCpu};
use arv_resview::effective_mem::EffectiveMemoryConfig;
use arv_sim_core::SimDuration;
use arv_workloads::dacapo_profile;

use crate::driver::Fleet;
use crate::report::{FigReport, Row, Table};
use crate::scenarios::scale_java;

/// The CPU-side churn scenario: five 10-core-limit containers.
/// Returns (decay periods 10→4 with everyone saturated, ramp periods
/// 4→10 with one active container, and the E the view settles at when
/// the container only wants 6 CPUs — lax thresholds over-expand).
fn cpu_adaptation(cpu_cfg: EffectiveCpuConfig) -> (u32, u32, u32) {
    let mut host = SimHost::with_view_configs(
        20,
        Bytes::from_gib(128),
        cpu_cfg,
        EffectiveMemoryConfig::default(),
    );
    let ids: Vec<_> = (0..5)
        .map(|i| host.launch(&ContainerSpec::new(format!("c{i}"), 20).cpus(10.0)))
        .collect();

    // Phase 1: everyone saturates; the first container's view (launched
    // alone, so born at 10) contracts to the 4-CPU fair share.
    let mut decay = 0;
    while host.effective_cpu(ids[0]) > 4 {
        let demands: Vec<_> = ids.iter().map(|id| host.demand(*id, 20)).collect();
        host.step(&demands);
        decay += 1;
        assert!(decay < 10_000, "view failed to decay");
    }

    // Phase 2: container 0 wants only 6 CPUs on an otherwise idle host;
    // starting from E = 4 the view grows while util > threshold, settling
    // around 6/threshold — the over-provisioning a lax threshold buys.
    // (It never contracts here: Algorithm 1 only decays without slack.)
    for _ in 0..200 {
        let d = host.demand(ids[0], 6);
        host.step(&[d]);
    }
    let settled = host.effective_cpu(ids[0]);

    // Phase 3: full demand; count periods to reach the 10-CPU quota.
    let mut ramp = 0;
    while host.effective_cpu(ids[0]) < 10 {
        let d = host.demand(ids[0], 20);
        host.step(&[d]);
        ramp += 1;
        assert!(ramp < 10_000, "view failed to ramp");
    }
    (decay, ramp, settled)
}

/// The memory-growth scenario: usage pressed to 95% of the view; returns
/// periods until the view reaches 99% of the hard limit.
fn mem_ramp(mem_cfg: EffectiveMemoryConfig) -> u32 {
    let mut host = SimHost::with_view_configs(
        20,
        Bytes::from_gib(128),
        EffectiveCpuConfig::default(),
        mem_cfg,
    );
    let id = host.launch(
        &ContainerSpec::new("m", 20)
            .memory(Bytes::from_gib(2))
            .memory_reservation(Bytes::from_gib(1)),
    );
    let goal = Bytes::from_gib(2).mul_f64(0.99);
    let mut periods = 0;
    while host.effective_memory(id) < goal {
        let target = host.effective_memory(id).mul_f64(0.95);
        let current = host.memory_usage(id);
        if target > current {
            assert!(host.charge(id, target - current).is_ok());
        }
        let d = host.demand(id, 4);
        host.step(&[d]);
        periods += 1;
        assert!(periods < 100_000, "memory view failed to ramp");
    }
    periods
}

/// The Figure 11 rescue with a given elastic poll interval: returns the
/// elastic/vanilla exec ratio for lusearch under a 1 GB hard limit.
fn elastic_poll_ratio(poll: SimDuration, scale: f64) -> f64 {
    let profile = scale_java(dacapo_profile("lusearch"), scale);
    let run = |cfg: JvmConfig| -> f64 {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20).memory(Bytes::from_gib(1)));
        let mut fleet = Fleet::new();
        let i = fleet.push_jvm(Jvm::launch(&mut host, id, cfg, profile.clone()));
        assert!(fleet.run(&mut host, SimDuration::from_secs(100_000)));
        fleet.jvm(i).metrics().exec_wall.as_secs_f64()
    };
    let vanilla = run(JvmConfig::vanilla_jdk8().with_xms(Bytes::from_mib(500)));
    let mut cfg = JvmConfig::adaptive()
        .with_heap_policy(HeapPolicy::Elastic)
        .with_xms(Bytes::from_mib(500));
    cfg.elastic_poll = poll;
    run(cfg) / vanilla
}

/// Integer-vs-fractional export granularity: steady-state tracking error
/// against a container whose quota is deliberately fractional (6.5 CPUs) —
/// the regime where discretization must cost accuracy.
fn granularity_mae(step: f64) -> f64 {
    let mut host = SimHost::with_view_configs(
        20,
        Bytes::from_gib(128),
        EffectiveCpuConfig::default(),
        EffectiveMemoryConfig::default(),
    );
    let id = host.launch(&ContainerSpec::new("frac", 20).cpus(6.5));
    let bounds = host.monitor().namespace(id).unwrap().cpu_bounds();
    let mut integer = EffectiveCpu::new(bounds, EffectiveCpuConfig::default());
    let mut fractional = FractionalEffectiveCpu::new(bounds, EffectiveCpuConfig::default(), step);

    let mut err = 0.0;
    let mut samples = 0u32;
    for period in 0..240 {
        let d = host.demand(id, 20);
        let out = host.step(&[d]);
        let sample = CpuSample {
            usage: out.alloc.granted_to(id),
            period: out.period,
            slack: out.alloc.slack,
        };
        integer.update(sample);
        let cap = fractional.update(sample);
        if period < 40 {
            continue; // warm-up: let both machines converge
        }
        let actual = out.alloc.granted_cpus(id);
        let view = if step >= 1.0 {
            f64::from(integer.value())
        } else {
            cap
        };
        err += (view - actual).abs();
        samples += 1;
    }
    err / f64::from(samples)
}

/// Run this study and produce its report.
pub fn run(scale: f64) -> FigReport {
    let mut rep = FigReport::new("ablations", "Design-choice ablations (DESIGN.md §5)");

    // 1. UTIL_THRSHD sweep.
    let mut t1 = Table::new(
        "util_threshold",
        &["decay_periods", "ramp_periods", "settled_e_at_6cpu_demand"],
    );
    for thr in [0.80, 0.85, 0.90, 0.95, 0.99] {
        let (decay, ramp, settled) = cpu_adaptation(EffectiveCpuConfig {
            util_threshold: thr,
            max_step: 1,
        });
        t1.push(Row::full(
            format!("{:.0}%", thr * 100.0),
            &[f64::from(decay), f64::from(ramp), f64::from(settled)],
        ));
    }
    rep.tables.push(t1);

    // 2. Per-update step-size sweep.
    let mut t2 = Table::new("max_step", &["decay_periods", "ramp_periods"]);
    for step in [1u32, 2, 4, 8] {
        let (decay, ramp, _) = cpu_adaptation(EffectiveCpuConfig {
            util_threshold: 0.95,
            max_step: step,
        });
        t2.push(Row::full(
            format!("±{step}"),
            &[f64::from(decay), f64::from(ramp)],
        ));
    }
    rep.tables.push(t2);

    // 3. Memory growth-increment sweep.
    let mut t3 = Table::new("mem_growth_fraction", &["ramp_periods"]);
    for frac in [0.05, 0.10, 0.25, 0.50] {
        let periods = mem_ramp(EffectiveMemoryConfig {
            usage_threshold: 0.90,
            growth_fraction: frac,
        });
        t3.push(Row::full(
            format!("{:.0}%", frac * 100.0),
            &[f64::from(periods)],
        ));
    }
    rep.tables.push(t3);

    // 4. Integer vs fractional effective-CPU export.
    let mut t_gran = Table::new("cpu_export_granularity", &["tracking_mae_cpus"]);
    for step in [1.0, 0.5, 0.25] {
        t_gran.push(Row::full(
            if step >= 1.0 {
                "integer (paper)".to_string()
            } else {
                format!("fractional {step}")
            },
            &[granularity_mae(step)],
        ));
    }
    rep.tables.push(t_gran);

    // 5. Elastic poll interval sweep.
    let mut t4 = Table::new("elastic_poll_interval", &["exec_vs_vanilla"]);
    for secs in [1u64, 10, 30] {
        let ratio = elastic_poll_ratio(SimDuration::from_secs(secs), scale);
        t4.push(Row::full(format!("{secs}s"), &[ratio]));
    }
    rep.tables.push(t4);

    rep.note("ramp = periods for E_CPU to expand 4→10 when neighbours idle; decay = periods to contract 10→4");
    rep.note("the paper's choices (95% threshold, ±1 step, 10% growth, 10 s poll, integer export) trade speed for stability");
    rep.note("granularity: MAE vs the actual grant of a saturated 6.5-CPU-quota container; the 95% growth threshold dominates the error regardless of step size, validating the paper's integer export");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lax_threshold_over_expands_under_partial_load() {
        let rep = run(0.05);
        let t = &rep.tables[0];
        let lax = t.get("80%", "settled_e_at_6cpu_demand").unwrap();
        let strict = t.get("99%", "settled_e_at_6cpu_demand").unwrap();
        assert!(
            lax > strict,
            "80% threshold ({lax}) should over-provision vs 99% ({strict})"
        );
        let paper = t.get("95%", "settled_e_at_6cpu_demand").unwrap();
        assert!(
            (6.0..=7.0).contains(&paper),
            "95% should settle near 6: {paper}"
        );
    }

    #[test]
    fn bigger_steps_converge_faster() {
        let rep = run(0.05);
        let t = &rep.tables[1];
        let s1 = t.get("±1", "ramp_periods").unwrap();
        let s8 = t.get("±8", "ramp_periods").unwrap();
        assert!(s8 < s1, "±8 {s8} must ramp faster than ±1 {s1}");
    }

    #[test]
    fn bigger_memory_increments_ramp_faster() {
        let rep = run(0.05);
        let t = &rep.tables[2];
        let f5 = t.get("5%", "ramp_periods").unwrap();
        let f50 = t.get("50%", "ramp_periods").unwrap();
        assert!(f50 < f5, "50% {f50} must ramp faster than 5% {f5}");
    }

    #[test]
    fn integer_export_costs_nothing_under_the_95_percent_threshold() {
        // The ablation's finding validates the paper's design choice: the
        // 95% growth threshold over-provisions by up to ~5% regardless of
        // step size, so a finer export granularity buys no accuracy.
        let rep = run(0.05);
        let t = rep
            .tables
            .iter()
            .find(|t| t.name == "cpu_export_granularity")
            .unwrap();
        let int = t.get("integer (paper)", "tracking_mae_cpus").unwrap();
        let quarter = t.get("fractional 0.25", "tracking_mae_cpus").unwrap();
        assert!(
            (quarter - int).abs() < 0.1,
            "fractional 0.25 MAE {quarter} vs integer {int}: threshold should dominate"
        );
        // Both sit within the threshold-induced band around the quota.
        assert!(int <= 0.55, "integer MAE {int}");
    }

    #[test]
    fn elastic_rescue_holds_across_poll_intervals() {
        let rep = run(0.05);
        let t = rep
            .tables
            .iter()
            .find(|t| t.name == "elastic_poll_interval")
            .unwrap();
        for poll in ["1s", "10s", "30s"] {
            let ratio = t.get(poll, "exec_vs_vanilla").unwrap();
            assert!(
                ratio < 0.5,
                "elastic must rescue lusearch at poll {poll} (ratio {ratio})"
            );
        }
    }
}
