//! Figure 11: avoiding memory overcommitment in DaCapo — one container
//! with a 1 GB hard limit, benchmarks started with a 500 MB initial heap
//! and *no* maximum, under the vanilla JVM (auto max = 32 GB → swapping
//! collapse for the allocation-heavy benchmarks) vs the elastic heap
//! (never outgrows the limit, at the cost of more frequent GCs).

use arv_cgroups::Bytes;
use arv_jvm::{HeapPolicy, JvmConfig};
use arv_workloads::{dacapo_profile, DACAPO_BENCHMARKS};

use crate::report::{FigReport, Row, Table};
use crate::scenarios::{colocated_same_bench, scale_java, Layout};

const CONFIGS: [&str; 2] = ["Vanilla", "Elastic"];

/// Run this study and produce its report.
pub fn run(scale: f64) -> FigReport {
    let layout = Layout {
        mem_hard: Some(Bytes::from_gib(1)),
        ..Layout::default()
    };

    let mut exec_table = Table::new("exec_time", &CONFIGS);
    let mut gc_table = Table::new("gc_time", &CONFIGS);
    let mut gcs_count = Table::new("collections", &CONFIGS);

    for bench in DACAPO_BENCHMARKS {
        let profile = scale_java(dacapo_profile(bench), scale);
        let vanilla_cfg = JvmConfig::vanilla_jdk8().with_xms(Bytes::from_mib(500));
        let elastic_cfg = JvmConfig::adaptive()
            .with_heap_policy(HeapPolicy::Elastic)
            .with_xms(Bytes::from_mib(500));

        let vanilla = &colocated_same_bench(1, layout, &vanilla_cfg, &profile)[0];
        let elastic = &colocated_same_bench(1, layout, &elastic_cfg, &profile)[0];
        assert!(vanilla.completed(), "{bench}: vanilla must finish (slowly)");
        assert!(elastic.completed(), "{bench}: elastic must finish");

        exec_table.push(Row::full(bench, &[1.0, elastic.exec_s / vanilla.exec_s]));
        gc_table.push(Row::full(bench, &[1.0, elastic.gc_s / vanilla.gc_s]));
        gcs_count.push(Row::full(
            bench,
            &[
                f64::from(vanilla.minor_gcs + vanilla.major_gcs),
                f64::from(elastic.minor_gcs + elastic.major_gcs),
            ],
        ));
    }

    let mut rep = FigReport::new(
        "11",
        "Avoiding memory overcommitment in DaCapo (1 GB hard limit, no -Xmx)",
    );
    rep.tables.push(exec_table);
    rep.tables.push(gc_table);
    rep.tables.push(gcs_count);
    rep.note("exec/GC time relative to the vanilla JVM (lower is better)");
    rep.note("the collections table shows the elastic heap's cost: more frequent GCs instead of swapping");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_rescues_the_overcommitting_benchmarks() {
        let rep = run(0.1);
        let exec = &rep.tables[0];
        // The paper's collapse pair: elastic an order of magnitude better.
        for bench in ["lusearch", "xalan"] {
            let e = exec.get(bench, "Elastic").unwrap();
            assert!(
                e < 0.25,
                "{bench}: elastic {e} should be several times faster than swapping vanilla"
            );
        }
    }

    #[test]
    fn elastic_neutral_for_benchmarks_that_fit() {
        let rep = run(0.1);
        let exec = &rep.tables[0];
        for bench in ["h2", "jython", "sunflow"] {
            let e = exec.get(bench, "Elastic").unwrap();
            assert!(
                (0.6..=1.25).contains(&e),
                "{bench}: elastic {e} should be near vanilla when nothing swaps"
            );
        }
    }

    #[test]
    fn elastic_pays_with_more_collections() {
        let rep = run(0.1);
        let counts = &rep.tables[2];
        for bench in ["lusearch", "xalan"] {
            let v = counts.get(bench, "Vanilla").unwrap();
            let e = counts.get(bench, "Elastic").unwrap();
            assert!(
                e >= v,
                "{bench}: elastic should collect at least as often ({e} vs {v})"
            );
        }
    }
}
