//! Figure 6: dynamic parallelism in a well-tuned five-container setup —
//! DaCapo execution time (a), SPECjvm2008 throughput (b), and GC time (c)
//! under the vanilla JVM, the existing dynamic-GC-threads scheme, and the
//! adaptive JVM, all relative to vanilla.

use arv_jvm::JvmConfig;
use arv_workloads::{dacapo_profile, specjvm_profile, DACAPO_BENCHMARKS, SPECJVM_BENCHMARKS};

use crate::report::{FigReport, Row, Table};
use crate::scenarios::{colocated_same_bench, mean_completed, paper_heap, scale_java, Layout};

const CONFIGS: [&str; 3] = ["Vanilla", "Dynamic", "Adaptive"];

fn config(name: &str) -> JvmConfig {
    match name {
        "Vanilla" => JvmConfig::vanilla_jdk8(),
        "Dynamic" => JvmConfig::vanilla_jdk8().with_dynamic_gc_threads(true),
        "Adaptive" => JvmConfig::adaptive(),
        other => panic!("unknown config {other}"),
    }
}

/// Run this study and produce its report.
pub fn run(scale: f64) -> FigReport {
    let layout = Layout {
        quota_cpus: Some(10.0),
        ..Layout::default()
    };

    let mut dacapo_exec = Table::new("dacapo_exec_time", &CONFIGS);
    let mut spec_tput = Table::new("specjvm_throughput", &CONFIGS);
    let mut gc_time = Table::new("gc_time", &CONFIGS);

    for bench in DACAPO_BENCHMARKS.iter().chain(SPECJVM_BENCHMARKS.iter()) {
        let is_dacapo = DACAPO_BENCHMARKS.contains(bench);
        let base = if is_dacapo {
            dacapo_profile(bench)
        } else {
            specjvm_profile(bench)
        };
        let profile = scale_java(base, scale);
        let mut execs = Vec::new();
        let mut gcs = Vec::new();
        for name in CONFIGS {
            let cfg = config(name).with_heap_policy(paper_heap(&profile));
            let stats = colocated_same_bench(5, layout, &cfg, &profile);
            let (e, g) = mean_completed(&stats).expect("figure 6 runs complete");
            execs.push(e);
            gcs.push(g);
        }
        let (e0, g0) = (execs[0], gcs[0]);
        if is_dacapo {
            dacapo_exec.push(Row::full(
                *bench,
                &execs.iter().map(|e| e / e0).collect::<Vec<_>>(),
            ));
        } else {
            // SPECjvm reports throughput: ops/s ∝ 1 / execution time.
            spec_tput.push(Row::full(
                *bench,
                &execs.iter().map(|e| e0 / e).collect::<Vec<_>>(),
            ));
        }
        gc_time.push(Row::full(
            *bench,
            &gcs.iter().map(|g| g / g0).collect::<Vec<_>>(),
        ));
    }

    let mut rep = FigReport::new(
        "6",
        "Dynamic parallelism: DaCapo time, SPECjvm2008 throughput, GC time (5 containers)",
    );
    rep.tables.push(dacapo_exec);
    rep.tables.push(spec_tput);
    rep.tables.push(gc_time);
    rep.note("all values relative to the vanilla JVM; exec/GC time lower is better, throughput higher is better");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_vanilla_on_gc_heavy_dacapo() {
        let rep = run(0.05);
        let exec = &rep.tables[0];
        for bench in ["lusearch", "xalan"] {
            let a = exec.get(bench, "Adaptive").unwrap();
            assert!(a < 0.9, "{bench}: adaptive {a} should beat vanilla clearly");
        }
        // Dynamic sits between vanilla and adaptive on the GC-heavy pair.
        for bench in ["lusearch", "xalan"] {
            let d = exec.get(bench, "Dynamic").unwrap();
            let a = exec.get(bench, "Adaptive").unwrap();
            assert!(d <= 1.02, "{bench}: dynamic {d} should not lose to vanilla");
            assert!(
                a <= d + 0.05,
                "{bench}: adaptive {a} should match/beat dynamic {d}"
            );
        }
    }

    #[test]
    fn specjvm_throughput_gains_are_modest_but_real() {
        let rep = run(0.05);
        let tput = &rep.tables[1];
        for bench in arv_workloads::SPECJVM_BENCHMARKS {
            let a = tput.get(bench, "Adaptive").unwrap();
            assert!(
                a >= 0.97,
                "{bench}: adaptive throughput {a} must not regress"
            );
        }
        // The GC-light benchmark has the least to gain.
        let mpeg = tput.get("mpegaudio", "Adaptive").unwrap();
        let derby = tput.get("derby", "Adaptive").unwrap();
        assert!(derby >= mpeg - 0.02, "derby {derby} vs mpegaudio {mpeg}");
    }

    #[test]
    fn gc_time_improves_most() {
        let rep = run(0.05);
        let gc = &rep.tables[2];
        let exec = &rep.tables[0];
        for bench in ["lusearch", "xalan"] {
            let g = gc.get(bench, "Adaptive").unwrap();
            let e = exec.get(bench, "Adaptive").unwrap();
            assert!(
                g <= e,
                "{bench}: GC gain {g} should drive the exec gain {e}"
            );
        }
    }
}
