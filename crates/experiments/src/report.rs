//! Report structures: the rows and series a figure regenerates, plus
//! text and CSV rendering.

use crate::json::Json;
use arv_sim_core::TimeSeries;
use std::fmt::Write as _;

/// One row of a table. `None` values are the paper's missing bars
/// (OOM crashes / runs that did not finish).
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (benchmark or configuration name).
    pub label: String,
    /// Cell values; `None` renders as a missing bar (OOM/DNF).
    pub values: Vec<Option<f64>>,
}

impl Row {
    /// A row with possibly missing cells (`None` = OOM/DNF).
    pub fn new(label: impl Into<String>, values: Vec<Option<f64>>) -> Row {
        Row {
            label: label.into(),
            values,
        }
    }

    /// A row where every cell is present.
    pub fn full(label: impl Into<String>, values: &[f64]) -> Row {
        Row {
            label: label.into(),
            values: values.iter().map(|v| Some(*v)).collect(),
        }
    }
}

/// A labelled table (one sub-plot of a figure).
#[derive(Debug, Clone)]
pub struct Table {
    /// The container's name.
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// The data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// An empty table with the given column names.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            name: name.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (its width must match the columns).
    pub fn push(&mut self, row: Row) {
        assert_eq!(
            row.values.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(row);
    }

    /// Look up a cell by row label and column name.
    pub fn get(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        self.rows
            .iter()
            .find(|r| r.label == row)
            .and_then(|r| r.values[c])
    }

    fn render(&self, out: &mut String) {
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain([self.name.len()])
            .max()
            .unwrap_or(8)
            .max(8);
        let col_w: Vec<usize> = self.columns.iter().map(|c| c.len().max(10)).collect();

        let _ = write!(out, "{:<label_w$}", self.name);
        for (c, w) in self.columns.iter().zip(&col_w) {
            let _ = write!(out, "  {c:>w$}");
        }
        out.push('\n');
        let _ = write!(out, "{:-<label_w$}", "");
        for w in &col_w {
            let _ = write!(out, "  {:->w$}", "");
        }
        out.push('\n');
        for row in &self.rows {
            let _ = write!(out, "{:<label_w$}", row.label);
            for (v, w) in row.values.iter().zip(&col_w) {
                match v {
                    Some(x) => {
                        let _ = write!(out, "  {x:>w$.3}");
                    }
                    None => {
                        let _ = write!(out, "  {:>w$}", "OOM/DNF");
                    }
                }
            }
            out.push('\n');
        }
    }

    fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("label");
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.label);
            for v in &row.values {
                match v {
                    Some(x) => {
                        let _ = write!(out, ",{x}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A full figure report.
#[derive(Debug, Clone)]
pub struct FigReport {
    /// Figure id, e.g. `"2a"`.
    pub id: String,
    /// Human-readable figure title.
    pub title: String,
    /// The tables (one per sub-plot).
    pub tables: Vec<Table>,
    /// Trace sub-plots (Figures 8(b), 12).
    pub series: Vec<TimeSeries>,
    /// Free-form notes rendered after the tables.
    pub notes: Vec<String>,
}

impl FigReport {
    /// An empty report for figure `id`.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> FigReport {
        FigReport {
            id: id.into(),
            title: title.into(),
            tables: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a free-form note shown under the tables.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render the whole report as aligned text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== Figure {}: {} ===", self.id, self.title);
        for t in &self.tables {
            out.push('\n');
            t.render(&mut out);
        }
        for s in &self.series {
            let _ = writeln!(
                out,
                "\nseries {} ({} samples): {}",
                s.name(),
                s.len(),
                sparkline(s)
            );
            for (t, v) in s.downsample(24).samples() {
                let _ = writeln!(out, "  {:>10.1}s  {v:>12.3}", t.as_secs_f64());
            }
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                let _ = writeln!(out, "note: {n}");
            }
        }
        out
    }

    /// Serialize the whole report as pretty JSON.
    pub fn to_json(&self) -> String {
        let row_json = |r: &Row| {
            Json::Obj(vec![
                ("label".into(), Json::Str(r.label.clone())),
                (
                    "values".into(),
                    Json::Arr(
                        r.values
                            .iter()
                            .map(|v| v.map_or(Json::Null, Json::Num))
                            .collect(),
                    ),
                ),
            ])
        };
        let table_json = |t: &Table| {
            Json::Obj(vec![
                ("name".into(), Json::Str(t.name.clone())),
                (
                    "columns".into(),
                    Json::Arr(t.columns.iter().map(|c| Json::Str(c.clone())).collect()),
                ),
                (
                    "rows".into(),
                    Json::Arr(t.rows.iter().map(row_json).collect()),
                ),
            ])
        };
        let series_json = |s: &TimeSeries| {
            Json::Obj(vec![
                ("name".into(), Json::Str(s.name().to_string())),
                (
                    "samples".into(),
                    Json::Arr(
                        s.samples()
                            .iter()
                            .map(|(t, v)| Json::Arr(vec![Json::Num(t.0 as f64), Json::Num(*v)]))
                            .collect(),
                    ),
                ),
            ])
        };
        Json::Obj(vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("title".into(), Json::Str(self.title.clone())),
            (
                "tables".into(),
                Json::Arr(self.tables.iter().map(table_json).collect()),
            ),
            (
                "series".into(),
                Json::Arr(self.series.iter().map(series_json).collect()),
            ),
            (
                "notes".into(),
                Json::Arr(self.notes.iter().map(|n| Json::Str(n.clone())).collect()),
            ),
        ])
        .pretty()
    }

    /// Parse a report previously produced by [`FigReport::to_json`].
    pub fn from_json(input: &str) -> Result<FigReport, String> {
        let root = Json::parse(input)?;
        let str_field = |v: &Json, key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let arr_field = |v: &Json, key: &str| -> Result<Vec<Json>, String> {
            v.get(key)
                .and_then(Json::as_arr)
                .map(<[Json]>::to_vec)
                .ok_or_else(|| format!("missing array field {key:?}"))
        };
        let mut report = FigReport::new(str_field(&root, "id")?, str_field(&root, "title")?);
        for t in arr_field(&root, "tables")? {
            let mut table = Table {
                name: str_field(&t, "name")?,
                columns: arr_field(&t, "columns")?
                    .iter()
                    .map(|c| c.as_str().map(str::to_string).ok_or("non-string column"))
                    .collect::<Result<_, _>>()?,
                rows: Vec::new(),
            };
            for r in arr_field(&t, "rows")? {
                table.rows.push(Row {
                    label: str_field(&r, "label")?,
                    values: arr_field(&r, "values")?
                        .iter()
                        .map(|v| v.as_f64())
                        .collect(),
                });
            }
            report.tables.push(table);
        }
        for s in arr_field(&root, "series")? {
            let mut series = TimeSeries::new(str_field(&s, "name")?);
            for sample in arr_field(&s, "samples")? {
                let pair = sample.as_arr().ok_or("non-array sample")?;
                let (Some(t), Some(v)) = (
                    pair.first().and_then(Json::as_f64),
                    pair.get(1).and_then(Json::as_f64),
                ) else {
                    return Err("sample must be a [time, value] pair".into());
                };
                series.push(arv_sim_core::SimTime(t as u64), v);
            }
            report.series.push(series);
        }
        for n in arr_field(&root, "notes")? {
            report
                .notes
                .push(n.as_str().ok_or("non-string note")?.to_string());
        }
        Ok(report)
    }

    /// Write each table/series as a CSV file under `dir`.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for t in &self.tables {
            let file = dir.join(format!("fig{}_{}.csv", self.id, sanitize(&t.name)));
            std::fs::write(file, t.to_csv())?;
        }
        for s in &self.series {
            let mut csv = String::from("time_s,value\n");
            for (t, v) in s.samples() {
                let _ = writeln!(csv, "{},{v}", t.as_secs_f64());
            }
            let file = dir.join(format!("fig{}_{}.csv", self.id, sanitize(s.name())));
            std::fs::write(file, csv)?;
        }
        Ok(())
    }
}

/// Render a series as a Unicode sparkline (min–max normalized).
fn sparkline(series: &TimeSeries) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let s = series.downsample(48);
    let (Some(min), Some(max)) = (s.min_value(), s.max_value()) else {
        return String::new();
    };
    let span = (max - min).max(f64::EPSILON);
    s.samples()
        .iter()
        .map(|(_, v)| {
            let idx = ((v - min) / span * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_sim_core::SimTime;

    fn table() -> Table {
        let mut t = Table::new("exec time", &["vanilla", "adaptive"]);
        t.push(Row::full("h2", &[1.0, 0.7]));
        t.push(Row::new("xalan", vec![Some(1.0), None]));
        t
    }

    #[test]
    fn get_reads_cells() {
        let t = table();
        assert_eq!(t.get("h2", "adaptive"), Some(0.7));
        assert_eq!(t.get("xalan", "adaptive"), None);
        assert_eq!(t.get("h2", "nope"), None);
        assert_eq!(t.get("nope", "vanilla"), None);
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(Row::full("r", &[1.0]));
    }

    #[test]
    fn text_rendering_contains_all_cells() {
        let mut rep = FigReport::new("6", "test figure");
        rep.tables.push(table());
        rep.note("a note");
        let text = rep.render_text();
        assert!(text.contains("=== Figure 6"));
        assert!(text.contains("h2"));
        assert!(text.contains("0.700"));
        assert!(text.contains("OOM/DNF"));
        assert!(text.contains("note: a note"));
    }

    #[test]
    fn sparkline_spans_the_range() {
        let mut s = TimeSeries::new("t");
        for i in 0..10u64 {
            s.push(SimTime(i * 10), i as f64);
        }
        let line = sparkline(&s);
        assert_eq!(line.chars().count(), 10);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
    }

    #[test]
    fn sparkline_of_flat_series_is_uniform() {
        let mut s = TimeSeries::new("t");
        for i in 0..5u64 {
            s.push(SimTime(i), 3.0);
        }
        let line = sparkline(&s);
        assert!(line.chars().all(|c| c == '▁'), "{line}");
    }

    #[test]
    fn json_round_trips() {
        let mut rep = FigReport::new("6", "test figure");
        rep.tables.push(table());
        let json = rep.to_json();
        assert!(json.contains("\"id\": \"6\""));
        let back = FigReport::from_json(&json).unwrap();
        assert_eq!(back.tables[0].get("h2", "adaptive"), Some(0.7));
        assert_eq!(back.tables[0].get("xalan", "adaptive"), None);
        assert_eq!(back.title, "test figure");
    }

    #[test]
    fn csv_written_to_disk() {
        let mut rep = FigReport::new("6", "test figure");
        rep.tables.push(table());
        let mut s = TimeSeries::new("trace");
        s.push(SimTime(0), 1.0);
        s.push(SimTime(1_000_000), 2.0);
        rep.series.push(s);
        let dir = std::env::temp_dir().join(format!("arv_report_test_{}", std::process::id()));
        rep.write_csv(&dir).unwrap();
        let table_csv = std::fs::read_to_string(dir.join("fig6_exec_time.csv")).unwrap();
        assert!(table_csv.starts_with("label,vanilla,adaptive"));
        assert!(table_csv.contains("xalan,1,")); // missing cell stays empty
        let series_csv = std::fs::read_to_string(dir.join("fig6_trace.csv")).unwrap();
        assert!(series_csv.contains("1,2"));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
