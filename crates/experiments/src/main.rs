//! Experiment CLI: regenerate the paper's tables and figures.
//!
//! ```text
//! experiments --all [--quick] [--out DIR]   # every figure
//! experiments --fig 6 [--scale 0.2]         # one figure
//! experiments --fig fleet --seed-offset 1   # seeded campaign, fresh seeds
//! experiments --list
//! ```

use arv_experiments::{run_figure_seeded, ALL_FIGURES};
use std::process::ExitCode;

struct Args {
    figures: Vec<String>,
    scale: f64,
    seed_offset: u64,
    out: Option<std::path::PathBuf>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut figures = Vec::new();
    let mut scale = 1.0;
    let mut seed_offset = 0u64;
    let mut out = None;
    let mut json = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--all" => figures = ALL_FIGURES.iter().map(|s| s.to_string()).collect(),
            "--fig" => {
                let id = argv.next().ok_or("--fig needs an id (e.g. 2a)")?;
                figures.push(id);
            }
            "--seed-offset" => {
                seed_offset = argv
                    .next()
                    .ok_or("--seed-offset needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed offset: {e}"))?;
            }
            "--scale" => {
                scale = argv
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad scale: {e}"))?;
                if !(0.0..=1.0).contains(&scale) || scale == 0.0 {
                    return Err("scale must be in (0, 1]".into());
                }
            }
            "--quick" => scale = 0.1,
            "--out" => {
                out = Some(std::path::PathBuf::from(
                    argv.next().ok_or("--out needs a directory")?,
                ));
            }
            "--json" => json = true,
            "--list" => {
                println!("available figures: {}", ALL_FIGURES.join(", "));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments (--all | --fig ID)... [--quick | --scale S] \
                     [--seed-offset N] [--out DIR] [--json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if figures.is_empty() {
        return Err("nothing to run: pass --all or --fig ID (try --list)".into());
    }
    if json && out.is_none() {
        return Err("--json requires --out DIR".into());
    }
    Ok(Args {
        figures,
        scale,
        seed_offset,
        out,
        json,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for id in &args.figures {
        let started = std::time::Instant::now();
        let Some(report) = run_figure_seeded(id, args.scale, args.seed_offset) else {
            eprintln!("error: unknown figure {id:?} (try --list)");
            return ExitCode::FAILURE;
        };
        println!("{}", report.render_text());
        println!(
            "[figure {id} regenerated in {:.1}s]\n",
            started.elapsed().as_secs_f64()
        );
        if let Some(dir) = &args.out {
            if let Err(e) = report.write_csv(dir) {
                eprintln!("error writing CSVs for figure {id}: {e}");
                return ExitCode::FAILURE;
            }
            if args.json {
                let file = dir.join(format!("fig{id}.json"));
                if let Err(e) = std::fs::write(&file, report.to_json()) {
                    eprintln!("error writing {}: {e}", file.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
