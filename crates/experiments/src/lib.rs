//! Experiment runners regenerating every table and figure of the paper's
//! evaluation (§2.2 and §5).
//!
//! Each `figNN` module builds the paper's scenario on the simulated host,
//! runs it, and returns a [`report::FigReport`] with the same rows/series
//! the paper plots. The `experiments` binary renders reports as text and
//! CSV; the `arv-bench` crate wraps the same runners in Criterion.
//!
//! Absolute numbers differ from the paper (our substrate is a calibrated
//! simulator, not a 20-core Xeon) — what must hold is the *shape*: who
//! wins, by roughly what factor, and where behaviour flips (see
//! EXPERIMENTS.md for the paper-vs-measured record).

#![warn(missing_docs)]

pub mod ablation;
pub mod chaos;
pub mod driver;
pub mod fig01_dockerhub;
pub mod fig02_motivation;
pub mod fig06_dynamic_parallelism;
pub mod fig07_container_sweep;
pub mod fig08_background_load;
pub mod fig09_hibench;
pub mod fig10_openmp;
pub mod fig11_elastic_dacapo;
pub mod fig12_heap_traces;
pub mod fleet;
pub mod fleetobs;
pub mod json;
pub mod obs;
pub mod overhead;
pub mod recovery;
pub mod report;
pub mod scenarios;
pub mod storm;
pub mod view_accuracy;
pub mod viewd;

pub use report::{FigReport, Row, Table};

/// Run a figure by id ("1", "2a", "2b", "6" … "12", "overhead");
/// `scale` < 1 shrinks workload sizes proportionally for quick runs.
pub fn run_figure(id: &str, scale: f64) -> Option<FigReport> {
    run_figure_seeded(id, scale, 0)
}

/// [`run_figure`] with a seed offset: seeded campaigns (currently the
/// fleet suite) rotate their seeds by `seed_offset`, so CI can prove
/// the invariants hold on more than the canonical seeds. Figures
/// without seed plumbing ignore the offset.
pub fn run_figure_seeded(id: &str, scale: f64, seed_offset: u64) -> Option<FigReport> {
    let report = match id {
        "1" => fig01_dockerhub::run(),
        "2a" => fig02_motivation::run_gc_threads(scale),
        "2b" => fig02_motivation::run_heap_size(scale),
        "6" => fig06_dynamic_parallelism::run(scale),
        "7" => fig07_container_sweep::run(scale),
        "8" => fig08_background_load::run(scale),
        "9" => fig09_hibench::run(scale),
        "10" => fig10_openmp::run(scale),
        "11" => fig11_elastic_dacapo::run(scale),
        "12" => fig12_heap_traces::run(scale),
        "overhead" => overhead::run(),
        "ablations" => ablation::run(scale),
        "accuracy" => view_accuracy::run(scale),
        "viewd" => viewd::run(scale),
        "chaos" => chaos::run(scale),
        "obs" => obs::run(scale),
        "recovery" => recovery::run(scale),
        "fleet" => fleet::run_seeded(scale, seed_offset),
        "fleetobs" => fleetobs::run_seeded(scale, seed_offset),
        "storm" => storm::run_seeded(scale, seed_offset),
        _ => return None,
    };
    Some(report)
}

/// Every figure id, in paper order.
pub const ALL_FIGURES: [&str; 20] = [
    "1",
    "2a",
    "2b",
    "6",
    "7",
    "8",
    "9",
    "10",
    "11",
    "12",
    "overhead",
    "ablations",
    "accuracy",
    "viewd",
    "chaos",
    "obs",
    "recovery",
    "fleet",
    "fleetobs",
    "storm",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figure_is_none() {
        assert!(run_figure("99", 1.0).is_none());
        assert!(run_figure("", 1.0).is_none());
    }

    #[test]
    fn every_listed_figure_dispatches() {
        // Quick smoke at tiny scale: each id must resolve and produce at
        // least one table (full-value checks live in each module).
        for id in ["1", "overhead"] {
            let rep = run_figure(id, 0.05).expect("known figure");
            assert_eq!(rep.id, id);
            assert!(!rep.tables.is_empty(), "{id} produced no tables");
        }
        assert_eq!(ALL_FIGURES.len(), 20);
    }
}
