//! Fleet control-plane campaign: core↔periphery aggregation at scale,
//! under partitions, lagging hosts, and controller failover.
//!
//! Two scenarios, seeded and replay-checked like the [`crate::chaos`]
//! and [`crate::recovery`] campaigns:
//!
//! * **scale** — a synthetic fleet (1000 hosts × 100 containers at full
//!   scale) streams seeded view churn through peripheries into one
//!   [`arv_fleet::FleetController`]. At every aggregation tick the
//!   cluster capacity rollup must equal the driver's ground-truth sums
//!   exactly (CPU, memory, available, container count, per-tenant), a
//!   mid-campaign policy bump must reach every periphery via ACK
//!   piggyback, and each full round of ingest must finish inside one
//!   update-timer period.
//! * **faults** — real [`arv_container::SimHost`]s with attached
//!   peripheries drive the controller while a
//!   [`arv_sim_core::FaultPlan`] injects the fleet faults: a
//!   partitioned periphery (frames dropped for the window, its
//!   last-good contribution served degraded, the sequence gap healed by
//!   a FULL resync exactly like the single-host watchdog), a lagging
//!   host (frames delayed but in order — no gap, eventual
//!   consistency), and a controller crash mid-run (a replacement
//!   restores the `arv-persist` journal prefix-consistently, serves
//!   every host last-good, and is healed back to Fresh rollups by
//!   periphery resyncs).
//!
//! * **failover** — a *replicated* pair: the primary streams accepted
//!   records to a hot standby over REPL while both contend on a shared
//!   lease. Mid-storm the primary is killed (with a replication-lag
//!   window ensuring un-shipped records die with it); the standby
//!   promotes itself once the lease expires, peripheries walk to it,
//!   and every host must converge back to Fresh with rollups equal to
//!   ground truth. The promoted leader also tightens `rate_burst`, so
//!   the enforced periphery token bucket must coalesce (never drop).
//! * **splitbrain** — the primary's lease renewals stall while it keeps
//!   serving; the standby takes over at expiry and the two leaders
//!   briefly coexist. Epoch fencing must win: the standby fences the
//!   stale primary's REPL frames (its higher-epoch ACK demotes the
//!   impostor), a late stale ACK duplicated to a periphery is fenced
//!   without mutating state, and the deposed primary rejoins as a
//!   standby mirroring the new leader.
//!
//! Every scenario runs twice per seed and the outcomes must be
//! bit-identical — a failing campaign replays exactly.

use arv_cgroups::CgroupId;
use arv_container::{ContainerSpec, SimHost};
use arv_fleet::{AckDisposition, FleetController, FleetPolicy, Periphery, SharedLease};
use arv_persist::{Snapshot, ViewState};
use arv_sim_core::{FaultConfig, FaultPlan, SimRng};

use crate::report::{FigReport, Row, Table};

/// Campaign seeds (distinct from the chaos and recovery suites).
const SEEDS: [u64; 2] = [0xF1EE7, 0xA66AE6];

/// Derive this run's seeds: a nonzero `offset` rotates every base seed
/// through a splitmix-style odd multiplier, so `--seed-offset 1` is a
/// genuinely different campaign that still replays bit-identically.
fn seeds(offset: u64) -> [u64; 2] {
    SEEDS.map(|s| s ^ offset.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The paper's update-timer period is 100 ms; a full fleet ingest round
/// (every host's frames applied plus one aggregation tick) must fit
/// inside it or the controller can never keep up in steady state.
const TICK_PERIOD_MS: f64 = 100.0;

/// Aggregation rounds in the scale scenario.
const SCALE_ROUNDS: u32 = 8;

/// Tenants the scale fleet spreads hosts across.
const TENANTS: u32 = 8;

/// Real hosts in the faults scenario.
const FAULT_HOSTS: u32 = 6;

/// Fault-free epilogue rounds that let resyncs heal everything.
const HEAL_ROUNDS: u32 = 12;

// --- scenario 1: synthetic fleet at scale ---

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScaleOutcome {
    hosts: u64,
    containers: u64,
    rounds: u64,
    rollup_mismatches: u64,
    tenant_mismatches: u64,
    deltas_ingested: u64,
    delta_entries: u64,
    full_syncs: u64,
    policy_adoptions: u64,
    partitioned_final: u64,
    topk_head_pressure: u64,
}

/// Driver-side ground truth for one container.
#[derive(Debug, Clone, Copy)]
struct Truth {
    cpu: u32,
    mem: u64,
    avail: u64,
}

fn run_scale(seed: u64, hosts: u32, containers: u32) -> (ScaleOutcome, f64) {
    let mut ctl = FleetController::new(64, FleetPolicy::default());
    let mut rng = SimRng::seed_from_u64(seed);

    // Ground truth lives in the driver; the controller must reproduce
    // its sums from deltas alone.
    let mut truth: Vec<Vec<Truth>> = (0..hosts)
        .map(|_| {
            (0..containers)
                .map(|_| {
                    let mem = rng.range_u64(64, 1024);
                    Truth {
                        cpu: rng.range_u64(1, 16) as u32,
                        mem,
                        avail: rng.range_u64(0, mem),
                    }
                })
                .collect()
        })
        .collect();
    let mut peripheries: Vec<Periphery> = (0..hosts)
        .map(|h| {
            let mut p = Periphery::new(h);
            for c in 0..containers {
                p.set_tenant(c, h % TENANTS);
            }
            p
        })
        .collect();

    let mut mismatches = 0u64;
    let mut tenant_mismatches = 0u64;
    let mut max_round_ms = 0.0f64;
    for round in 0..SCALE_ROUNDS {
        // Seeded churn: every host flips a few containers to new values
        // (the cpu map never restores the old value within a round, so
        // each host ships at least one delta frame per round).
        for host in truth.iter_mut() {
            let changes = 1 + rng.range_u64(0, 7) as usize;
            for _ in 0..changes {
                let c = rng.range_u64(0, u64::from(containers)) as usize;
                let t = &mut host[c];
                t.cpu = (t.cpu % 64) + 1 + rng.range_u64(0, 4) as u32;
                t.mem = rng.range_u64(64, 1024);
                t.avail = rng.range_u64(0, t.mem);
            }
        }

        let start = std::time::Instant::now();
        for (h, p) in peripheries.iter_mut().enumerate() {
            let mut snap = Snapshot::at(u64::from(round) + 1);
            for (c, t) in truth[h].iter().enumerate() {
                snap.entries.push(ViewState {
                    id: c as u32,
                    e_cpu: t.cpu,
                    e_mem: t.mem,
                    e_avail: t.avail,
                    last_tick: u64::from(round) + 1,
                });
            }
            p.observe(&snap, false, 0);
            for frame in p.take_frames() {
                if let Some(resp) = ctl.handle_frame(&frame) {
                    if let Some(arv_fleet::Frame::Ack(ack)) = arv_fleet::decode_frame(&resp) {
                        p.handle_ack(&ack);
                    }
                }
            }
        }
        ctl.advance_tick();
        max_round_ms = max_round_ms.max(start.elapsed().as_secs_f64() * 1000.0);

        // Checkpoint: the rollup must equal ground truth exactly.
        let r = ctl.cluster_capacity();
        let (mut cpu, mut mem, mut avail) = (0u64, 0u64, 0u64);
        for host in &truth {
            for t in host {
                cpu += u64::from(t.cpu);
                mem += t.mem;
                avail += t.avail;
            }
        }
        if (r.cpu, r.mem, r.avail, r.containers, u64::from(r.hosts))
            != (
                cpu,
                mem,
                avail,
                u64::from(hosts) * u64::from(containers),
                u64::from(hosts),
            )
        {
            mismatches += 1;
        }
        for tenant in 0..TENANTS {
            let (t, degraded) = ctl.tenant_rollup(tenant);
            let mut want = 0u64;
            for (h, host) in truth.iter().enumerate() {
                if h as u32 % TENANTS == tenant {
                    want += host.iter().map(|t| u64::from(t.cpu)).sum::<u64>();
                }
            }
            if t.cpu != want || degraded {
                tenant_mismatches += 1;
            }
        }

        // Mid-campaign policy bump: the next round's ACKs must carry it
        // to every periphery.
        if round == SCALE_ROUNDS / 2 {
            ctl.set_policy(5, 128, 1 << 12);
        }
    }

    let top = ctl.top_pressured(10);
    let m = ctl.metrics().snapshot();
    (
        ScaleOutcome {
            hosts: u64::from(hosts),
            containers: u64::from(hosts) * u64::from(containers),
            rounds: u64::from(SCALE_ROUNDS),
            rollup_mismatches: mismatches,
            tenant_mismatches,
            deltas_ingested: m.deltas_ingested,
            delta_entries: m.delta_entries,
            full_syncs: m.full_syncs,
            policy_adoptions: peripheries.iter().filter(|p| p.policy().epoch == 1).count() as u64,
            partitioned_final: u64::from(ctl.cluster_capacity().partitioned),
            topk_head_pressure: top
                .first()
                .map(|p| u64::from(p.pressure_milli))
                .unwrap_or(0),
        },
        max_round_ms,
    )
}

fn assert_scale(out: &ScaleOutcome, max_round_ms: f64, seed: u64) {
    assert_eq!(
        out.rollup_mismatches, 0,
        "seed {seed:#x}: capacity rollup diverged from ground truth"
    );
    assert_eq!(
        out.tenant_mismatches, 0,
        "seed {seed:#x}: tenant rollup diverged from ground truth"
    );
    assert_eq!(
        out.deltas_ingested,
        out.hosts * out.rounds,
        "seed {seed:#x}: every host ships exactly one delta frame per round"
    );
    assert_eq!(
        out.full_syncs, out.hosts,
        "seed {seed:#x}: exactly one FULL snapshot per host (first attach)"
    );
    assert_eq!(
        out.policy_adoptions, out.hosts,
        "seed {seed:#x}: the policy bump must reach every periphery"
    );
    assert_eq!(out.partitioned_final, 0, "seed {seed:#x}");
    assert!(
        out.topk_head_pressure <= 1000,
        "seed {seed:#x}: pressure is a per-mille"
    );
    assert!(
        max_round_ms < TICK_PERIOD_MS,
        "seed {seed:#x}: a full ingest round took {max_round_ms:.1} ms — \
         the controller cannot keep up with a {TICK_PERIOD_MS} ms timer"
    );
}

// --- scenario 2: fleet faults on real hosts ---

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FaultsOutcome {
    hosts: u64,
    partition_frames_dropped: u64,
    lag_frames_delayed: u64,
    gap_resyncs: u64,
    periphery_resyncs: u64,
    full_syncs: u64,
    partition_transitions: u64,
    degraded_rounds: u64,
    post_restore_partitioned: u64,
    final_partitioned: u64,
    final_cpu: u64,
    final_containers: u64,
    truth_cpu: u64,
    truth_containers: u64,
}

/// A frame waiting out the lagging host's delay.
struct Lagged {
    release: u64,
    frame: Vec<u8>,
}

fn run_faults(seed: u64, rounds: u32) -> FaultsOutcome {
    let plan = FaultPlan::new(
        seed,
        FaultConfig {
            partition_at: Some((4, 6)),
            lag_ticks: 2,
            controller_crash_at: Some((14, 2)),
            ..FaultConfig::quiet()
        },
    );
    let mut rng = SimRng::seed_from_u64(seed ^ 0xF1EE7);
    let (mut hosts, ids) = fleet_hosts("fleet");

    let mut ctl = FleetController::new(8, FleetPolicy::default());
    ctl.enable_journal(2);

    let mut dropped = 0u64;
    let mut delayed = 0u64;
    let mut degraded_rounds = 0u64;
    let mut post_restore_partitioned = 0u64;
    let mut crashed = false;
    let mut lag_queue: Vec<Lagged> = Vec::new();

    let deliver = |ctl: &FleetController, host: &mut SimHost, frame: &[u8]| {
        if let Some(resp) = ctl.handle_frame(frame) {
            host.deliver_fleet_ack(&resp);
        }
    };

    let total = rounds + HEAL_ROUNDS;
    for round in 0..u64::from(total) {
        let healing = round >= u64::from(rounds);

        // Controller crash: a replacement restores the journal prefix
        // and re-journals; every host starts last-good + needs-resync.
        if !crashed && plan.controller_crashed(round) {
            let bytes = ctl.journal_bytes().expect("journal enabled");
            ctl = FleetController::restore_from(&bytes, 8, ctl.policy());
            ctl.enable_journal(2);
            post_restore_partitioned = u64::from(ctl.cluster_capacity().partitioned);
            crashed = true;
        }

        for (h, host) in hosts.iter_mut().enumerate() {
            // Seeded demand churn keeps views moving so every firing
            // ships deltas; the epilogue pins demand so views settle.
            let demands: Vec<_> = if healing {
                ids[h].iter().map(|id| host.demand(*id, 20)).collect()
            } else {
                let mut picks = Vec::new();
                for id in &ids[h] {
                    if rng.unit() > 0.4 {
                        picks.push(host.demand(*id, rng.range_u64(4, 20) as u32));
                    }
                }
                picks
            };
            host.step(&demands);

            let frames = host.take_fleet_frames();
            if h == 0 && !healing && plan.partitioned(round) {
                // The partition: frames vanish on the floor. The gap
                // they leave forces a FULL resync once the link heals.
                dropped += frames.len() as u64;
            } else if h == 1 && !healing {
                for frame in frames {
                    delayed += 1;
                    lag_queue.push(Lagged {
                        release: round + plan.frame_lag(),
                        frame,
                    });
                }
            } else {
                for frame in frames {
                    deliver(&ctl, host, &frame);
                }
            }
            if h == 1 {
                // Release lagged frames in order once their delay is up
                // (the epilogue flushes whatever is left).
                let due: Vec<Lagged> = if healing {
                    std::mem::take(&mut lag_queue)
                } else {
                    let mut due = Vec::new();
                    lag_queue.retain_mut(|l| {
                        if l.release <= round {
                            due.push(Lagged {
                                release: l.release,
                                frame: std::mem::take(&mut l.frame),
                            });
                            false
                        } else {
                            true
                        }
                    });
                    due
                };
                for l in &due {
                    deliver(&ctl, host, &l.frame);
                }
            }
        }

        ctl.advance_tick();
        if ctl.cluster_capacity().degraded() {
            degraded_rounds += 1;
        }
    }

    // Ground truth: exactly what the peripheries shipped.
    let (truth_cpu, truth_containers) = ground_truth(&hosts);

    let r = ctl.cluster_capacity();
    let m = ctl.metrics().snapshot();
    FaultsOutcome {
        hosts: u64::from(FAULT_HOSTS),
        partition_frames_dropped: dropped,
        lag_frames_delayed: delayed,
        gap_resyncs: m.deltas_gap_resyncs,
        periphery_resyncs: hosts
            .iter()
            .map(|h| h.periphery().map(|p| p.stats().resyncs).unwrap_or(0))
            .sum(),
        full_syncs: m.full_syncs,
        partition_transitions: m.hosts_partitioned,
        degraded_rounds,
        post_restore_partitioned,
        final_partitioned: u64::from(r.partitioned),
        final_cpu: r.cpu,
        final_containers: r.containers,
        truth_cpu,
        truth_containers,
    }
}

fn assert_faults(out: &FaultsOutcome, seed: u64) {
    assert!(
        out.partition_frames_dropped >= 1,
        "seed {seed:#x}: the partition window dropped nothing — untested"
    );
    assert!(
        out.lag_frames_delayed >= 1,
        "seed {seed:#x}: the lagging host delayed nothing — untested"
    );
    assert!(
        out.gap_resyncs >= 1,
        "seed {seed:#x}: dropped frames must surface as a sequence gap"
    );
    assert!(
        out.periphery_resyncs >= 1,
        "seed {seed:#x}: the gap must drive at least one FULL resync"
    );
    assert!(
        out.degraded_rounds >= 1,
        "seed {seed:#x}: partition or failover must flag rollups degraded"
    );
    assert_eq!(
        out.post_restore_partitioned, out.hosts,
        "seed {seed:#x}: a restored controller serves every host last-good"
    );
    assert_eq!(
        out.final_partitioned, 0,
        "seed {seed:#x}: the heal epilogue must clear every partition flag"
    );
    assert_eq!(
        (out.final_cpu, out.final_containers),
        (out.truth_cpu, out.truth_containers),
        "seed {seed:#x}: healed rollups must equal per-host ground truth"
    );
}

// --- scenario 3: replicated controllers, primary killed mid-storm ---

/// Lease TTL in controller ticks: a dead primary's lease expires (and a
/// standby may promote) at most this many ticks after its last renewal.
const LEASE_TTL: u64 = 2;

/// The `rate_burst` the promoted leader pushes: small enough that a
/// steady periphery diff outruns the bucket, so enforced backpressure
/// (coalescing) is actually exercised.
const TIGHT_BURST: u32 = 2;

/// Ship every queued REPL frame from `from` to `to` and feed the
/// replication ACKs back — one pump of the primary→standby stream.
fn pump_repl(from: &FleetController, to: &FleetController) {
    for frame in from.take_repl_frames() {
        if let Some(resp) = to.handle_frame(&frame) {
            if let Some(arv_fleet::Frame::Ack(ack)) = arv_fleet::decode_frame(&resp) {
                from.handle_repl_ack(&ack);
            }
        }
    }
}

/// Sum of every host's last-observed monitor snapshot — the ground
/// truth a healed controller's rollup must reproduce exactly.
fn ground_truth(hosts: &[SimHost]) -> (u64, u64) {
    let (mut cpu, mut containers) = (0u64, 0u64);
    for host in hosts {
        let snap = host.monitor().snapshot();
        cpu += snap.entries.iter().map(|e| u64::from(e.e_cpu)).sum::<u64>();
        containers += snap.entries.len() as u64;
    }
    (cpu, containers)
}

fn fleet_hosts(tag: &str) -> (Vec<SimHost>, Vec<Vec<CgroupId>>) {
    let mut hosts = Vec::new();
    let mut ids: Vec<Vec<CgroupId>> = Vec::new();
    for h in 0..FAULT_HOSTS {
        let mut host = SimHost::paper_testbed();
        ids.push(
            (0..3)
                .map(|i| {
                    host.launch(
                        &ContainerSpec::new(format!("{tag}-{h}-{i}"), 20)
                            .cpus(10.0)
                            .cpu_shares(1024),
                    )
                })
                .collect(),
        );
        let mut p = Periphery::new(h);
        for (i, _) in ids[h as usize].iter().enumerate() {
            p.set_tenant(i as u32 + 1, h % 2);
        }
        host.attach_periphery(p);
        hosts.push(host);
    }
    (hosts, ids)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FailoverOutcome {
    hosts: u64,
    kill_tick: u64,
    ticks_to_promote: u64,
    ticks_to_fresh: u64,
    repl_backlog_at_kill: u64,
    repl_records_applied: u64,
    promotions: u64,
    not_leader_rejects: u64,
    deltas_coalesced: u64,
    periphery_failovers: u64,
    final_epoch: u64,
    final_partitioned: u64,
    final_cpu: u64,
    final_containers: u64,
    truth_cpu: u64,
    truth_containers: u64,
}

fn run_failover(seed: u64, rounds: u32) -> FailoverOutcome {
    let kill = u64::from(rounds) / 2;
    let plan = FaultPlan::new(
        seed,
        FaultConfig {
            // The primary never comes back — this is a kill, not the
            // journal warm-restart the faults scenario covers.
            primary_crash_at: Some((kill, u64::MAX / 2)),
            // Replication stalls just before the kill so records die
            // un-shipped with the primary: the standby must converge
            // from periphery FULLs, not from a complete stream.
            repl_lag_at: Some((kill.saturating_sub(3), 3)),
            ..FaultConfig::quiet()
        },
    );
    let mut rng = SimRng::seed_from_u64(seed ^ 0xFA17);
    let (mut hosts, ids) = fleet_hosts("failover");

    let lease = SharedLease::new();
    let primary = FleetController::new(8, FleetPolicy::default());
    primary.attach_lease(lease.clone(), 1, LEASE_TTL);
    primary.enable_replication();
    let mut standby = FleetController::new(8, FleetPolicy::default());
    standby.attach_lease(lease, 2, LEASE_TTL);

    let mut killed = false;
    let mut kill_tick = 0u64;
    let mut backlog_at_kill = 0u64;
    let mut promote_tick: Option<u64> = None;
    let mut fresh_tick: Option<u64> = None;

    let total = rounds + HEAL_ROUNDS;
    for round in 0..u64::from(total) {
        let healing = round >= u64::from(rounds);

        if !killed && plan.primary_crashed(round) {
            killed = true;
            kill_tick = round;
            // Whatever the lag window queued dies with the primary;
            // peripheries re-HELLO at the standby.
            backlog_at_kill = primary.repl_backlog_records();
            for host in hosts.iter_mut() {
                if let Some(p) = host.periphery_mut() {
                    p.on_reconnect();
                }
            }
        }

        for (h, host) in hosts.iter_mut().enumerate() {
            let demands: Vec<_> = if healing {
                ids[h].iter().map(|id| host.demand(*id, 20)).collect()
            } else {
                let mut picks = Vec::new();
                for id in &ids[h] {
                    if rng.unit() > 0.4 {
                        picks.push(host.demand(*id, rng.range_u64(4, 20) as u32));
                    }
                }
                picks
            };
            host.step(&demands);
            let target = if killed { &standby } else { &primary };
            for frame in host.take_fleet_frames() {
                if let Some(resp) = target.handle_frame(&frame) {
                    host.deliver_fleet_ack(&resp);
                }
            }
        }

        if !killed {
            primary.advance_tick();
            if !plan.repl_lagged(round) {
                pump_repl(&primary, &standby);
            }
        }
        standby.advance_tick();
        if killed {
            if promote_tick.is_none() && standby.is_leader() {
                promote_tick = Some(round);
                // The new leader tightens the burst: from here on the
                // peripheries' enforced token bucket must coalesce.
                standby.set_policy(3, 256, TIGHT_BURST);
            }
            if promote_tick.is_some() && fresh_tick.is_none() {
                let r = standby.cluster_capacity();
                if r.partitioned == 0 && u64::from(r.hosts) == u64::from(FAULT_HOSTS) {
                    fresh_tick = Some(round);
                }
            }
        }
    }

    let (truth_cpu, truth_containers) = ground_truth(&hosts);
    let r = standby.cluster_capacity();
    let m = standby.metrics().snapshot();
    let promote = promote_tick.unwrap_or(u64::MAX);
    FailoverOutcome {
        hosts: u64::from(FAULT_HOSTS),
        kill_tick,
        ticks_to_promote: promote.saturating_sub(kill_tick),
        ticks_to_fresh: fresh_tick.map_or(u64::MAX, |f| f.saturating_sub(promote)),
        repl_backlog_at_kill: backlog_at_kill,
        repl_records_applied: m.repl_records_applied,
        promotions: m.promotions,
        not_leader_rejects: m.not_leader_rejects,
        deltas_coalesced: hosts
            .iter()
            .map(|h| {
                h.periphery()
                    .map(|p| p.stats().deltas_coalesced)
                    .unwrap_or(0)
            })
            .sum(),
        periphery_failovers: hosts
            .iter()
            .map(|h| h.periphery().map(|p| p.stats().failovers).unwrap_or(0))
            .sum(),
        final_epoch: standby.ctl_epoch(),
        final_partitioned: u64::from(r.partitioned),
        final_cpu: r.cpu,
        final_containers: r.containers,
        truth_cpu,
        truth_containers,
    }
}

fn assert_failover(out: &FailoverOutcome, seed: u64) {
    assert_eq!(out.promotions, 1, "seed {seed:#x}: exactly one promotion");
    assert!(
        out.ticks_to_promote <= LEASE_TTL + 2,
        "seed {seed:#x}: promotion took {} ticks — outside the lease budget",
        out.ticks_to_promote
    );
    assert!(
        out.ticks_to_fresh != u64::MAX && out.ticks_to_fresh <= 6,
        "seed {seed:#x}: hosts never converged back to Fresh on the standby"
    );
    assert!(
        out.repl_backlog_at_kill >= 1,
        "seed {seed:#x}: the lag window queued nothing — the kill lost no records, untested"
    );
    assert!(
        out.repl_records_applied >= 1,
        "seed {seed:#x}: the standby applied no replicated records"
    );
    assert!(
        out.not_leader_rejects >= 1,
        "seed {seed:#x}: pre-promotion frames must be refused, not applied"
    );
    assert!(
        out.deltas_coalesced >= 1,
        "seed {seed:#x}: the tightened burst never coalesced — backpressure unenforced"
    );
    assert_eq!(
        out.periphery_failovers, out.hosts,
        "seed {seed:#x}: every periphery walks to the standby exactly once"
    );
    assert_eq!(
        out.final_epoch, 2,
        "seed {seed:#x}: the standby promotes into epoch 2"
    );
    assert_eq!(out.final_partitioned, 0, "seed {seed:#x}");
    assert_eq!(
        (out.final_cpu, out.final_containers),
        (out.truth_cpu, out.truth_containers),
        "seed {seed:#x}: post-promotion rollups must equal per-host ground truth"
    );
}

// --- scenario 4: split-brain fenced by epochs ---

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SplitBrainOutcome {
    promotions: u64,
    primary_demotions: u64,
    repl_fenced: u64,
    periphery_acks_fenced: u64,
    split_brain_rounds: u64,
    final_partitioned: u64,
    final_cpu: u64,
    final_containers: u64,
    rejoined_cpu: u64,
    rejoined_containers: u64,
    truth_cpu: u64,
    truth_containers: u64,
}

fn run_splitbrain(seed: u64, rounds: u32) -> SplitBrainOutcome {
    let stall = u64::from(rounds) / 3;
    let plan = FaultPlan::new(
        seed,
        FaultConfig {
            // The primary cannot renew for longer than the lease TTL,
            // but keeps serving: the classic split-brain window.
            lease_stall_at: Some((stall, LEASE_TTL + 4)),
            ..FaultConfig::quiet()
        },
    );
    let mut rng = SimRng::seed_from_u64(seed ^ 0x5B11);
    let (mut hosts, ids) = fleet_hosts("split");

    let lease = SharedLease::new();
    let primary = FleetController::new(8, FleetPolicy::default());
    primary.attach_lease(lease.clone(), 1, LEASE_TTL);
    primary.enable_replication();
    let standby = FleetController::new(8, FleetPolicy::default());
    standby.attach_lease(lease, 2, LEASE_TTL);

    let mut on_standby = vec![false; FAULT_HOSTS as usize];
    let mut reversed = false;
    let mut split_brain_rounds = 0u64;
    let mut stale_ack: Option<Vec<u8>> = None;

    let total = rounds + HEAL_ROUNDS;
    for round in 0..u64::from(total) {
        let healing = round >= u64::from(rounds);
        primary.set_lease_stalled(plan.lease_stalled(round));

        for (h, host) in hosts.iter_mut().enumerate() {
            let demands: Vec<_> = if healing {
                ids[h].iter().map(|id| host.demand(*id, 20)).collect()
            } else {
                let mut picks = Vec::new();
                for id in &ids[h] {
                    if rng.unit() > 0.4 {
                        picks.push(host.demand(*id, rng.range_u64(4, 20) as u32));
                    }
                }
                picks
            };
            host.step(&demands);
            let frames = host.take_fleet_frames();
            for frame in frames {
                let target = if on_standby[h] { &standby } else { &primary };
                let Some(resp) = target.handle_frame(&frame) else {
                    continue;
                };
                let Some(arv_fleet::Frame::Ack(ack)) = arv_fleet::decode_frame(&resp) else {
                    continue;
                };
                let disp = host
                    .periphery_mut()
                    .map(|p| p.handle_ack(&ack))
                    .unwrap_or(AckDisposition::Ignored);
                if disp == AckDisposition::NotLeader && !on_standby[h] {
                    // Walk the controller list: re-HELLO at the standby.
                    on_standby[h] = true;
                    if let Some(p) = host.periphery_mut() {
                        p.on_reconnect();
                    }
                    if h == 0 {
                        // The network duplicated this stale-epoch ACK;
                        // the copy straggles in below, after the new
                        // leader's first ACK raised the seen epoch.
                        stale_ack = Some(resp.clone());
                    }
                }
                if h == 0 && on_standby[0] && disp == AckDisposition::Applied {
                    if let Some(dup) = stale_ack.take() {
                        // The straggler lands after an epoch-2 ACK: the
                        // periphery must fence it, mutating nothing.
                        host.deliver_fleet_ack(&dup);
                    }
                }
            }
        }

        if primary.is_leader() && standby.is_leader() {
            split_brain_rounds += 1;
        }
        if primary.is_leader() {
            // The stalled primary keeps streaming at its stale epoch;
            // the promoted standby fences the frames and its ACK
            // carries the higher epoch that demotes the impostor.
            pump_repl(&primary, &standby);
        } else {
            if !reversed {
                reversed = true;
                standby.enable_replication();
            }
            // The deposed primary rejoins as a standby: the new leader
            // leads with a checkpoint, then streams increments.
            pump_repl(&standby, &primary);
        }
        primary.advance_tick();
        standby.advance_tick();
    }

    let (truth_cpu, truth_containers) = ground_truth(&hosts);
    let r = standby.cluster_capacity();
    let rejoined = primary.cluster_capacity();
    SplitBrainOutcome {
        promotions: standby.metrics().snapshot().promotions,
        primary_demotions: primary.metrics().snapshot().demotions,
        repl_fenced: standby.metrics().snapshot().repl_fenced,
        periphery_acks_fenced: hosts[0]
            .periphery()
            .map(|p| p.stats().acks_fenced)
            .unwrap_or(0),
        split_brain_rounds,
        final_partitioned: u64::from(r.partitioned),
        final_cpu: r.cpu,
        final_containers: r.containers,
        rejoined_cpu: rejoined.cpu,
        rejoined_containers: rejoined.containers,
        truth_cpu,
        truth_containers,
    }
}

fn assert_splitbrain(out: &SplitBrainOutcome, seed: u64) {
    assert_eq!(out.promotions, 1, "seed {seed:#x}: one takeover");
    assert!(
        out.split_brain_rounds >= 1,
        "seed {seed:#x}: the stall never produced two leaders — untested"
    );
    assert!(
        out.repl_fenced >= 1,
        "seed {seed:#x}: the stale primary's REPL frames must be fenced"
    );
    assert!(
        out.primary_demotions >= 1,
        "seed {seed:#x}: the higher-epoch ACK must demote the impostor"
    );
    assert!(
        out.periphery_acks_fenced >= 1,
        "seed {seed:#x}: the late stale ACK must be fenced by the periphery"
    );
    assert_eq!(
        out.final_partitioned, 0,
        "seed {seed:#x}: the heal epilogue must clear every partition flag"
    );
    assert_eq!(
        (out.final_cpu, out.final_containers),
        (out.truth_cpu, out.truth_containers),
        "seed {seed:#x}: fencing won — the new leader's rollups equal ground truth"
    );
    assert_eq!(
        (out.rejoined_cpu, out.rejoined_containers),
        (out.truth_cpu, out.truth_containers),
        "seed {seed:#x}: the deposed primary mirrors the new leader after rejoining"
    );
}

// --- harness ---

fn seed_label(seed: u64) -> String {
    format!("seed_{seed:#x}")
}

/// Run the fleet campaign and produce its report. Panics (on purpose)
/// if any aggregation, fault-recovery, failover, fencing, or
/// same-seed-replay invariant fails.
pub fn run(scale: f64) -> FigReport {
    run_seeded(scale, 0)
}

/// [`run`] with this run's seeds rotated by `seed_offset` (the CLI's
/// `--seed-offset`): offset 0 is the canonical campaign, any other
/// value a fresh one with identical invariants.
pub fn run_seeded(scale: f64, seed_offset: u64) -> FigReport {
    let hosts = ((1000.0 * scale) as u32).clamp(32, 2000);
    let containers = ((100.0 * scale) as u32).clamp(8, 200);
    let fault_rounds = ((30.0 * scale) as u32).clamp(20, 40);
    let run_seeds = seeds(seed_offset);

    let mut scales = Vec::new();
    let mut round_ms = Vec::new();
    let mut faults = Vec::new();
    let mut failovers = Vec::new();
    let mut splits = Vec::new();
    for &seed in &run_seeds {
        // Same seed, run twice: a fleet campaign is only useful if a
        // failure replays exactly.
        let (s, ms) = run_scale(seed, hosts, containers);
        let (s2, _) = run_scale(seed, hosts, containers);
        assert_eq!(s, s2, "scale replay diverged");
        assert_scale(&s, ms, seed);
        scales.push(s);
        round_ms.push(ms);

        let f = run_faults(seed, fault_rounds);
        assert_eq!(f, run_faults(seed, fault_rounds), "faults replay diverged");
        assert_faults(&f, seed);
        faults.push(f);

        let fo = run_failover(seed, fault_rounds);
        assert_eq!(
            fo,
            run_failover(seed, fault_rounds),
            "failover replay diverged"
        );
        assert_failover(&fo, seed);
        failovers.push(fo);

        let sb = run_splitbrain(seed, fault_rounds);
        assert_eq!(
            sb,
            run_splitbrain(seed, fault_rounds),
            "splitbrain replay diverged"
        );
        assert_splitbrain(&sb, seed);
        splits.push(sb);
    }

    let cols: Vec<String> = run_seeds.iter().map(|s| seed_label(*s)).collect();
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();

    let mut t_scale = Table::new("scale", &cols);
    let pick = |f: &dyn Fn(&ScaleOutcome) -> f64| [f(&scales[0]), f(&scales[1])];
    t_scale.push(Row::full("hosts", &pick(&|o| o.hosts as f64)));
    t_scale.push(Row::full("containers", &pick(&|o| o.containers as f64)));
    t_scale.push(Row::full(
        "rollup_mismatches",
        &pick(&|o| o.rollup_mismatches as f64),
    ));
    t_scale.push(Row::full(
        "tenant_mismatches",
        &pick(&|o| o.tenant_mismatches as f64),
    ));
    t_scale.push(Row::full(
        "deltas_ingested",
        &pick(&|o| o.deltas_ingested as f64),
    ));
    t_scale.push(Row::full(
        "delta_entries",
        &pick(&|o| o.delta_entries as f64),
    ));
    t_scale.push(Row::full(
        "policy_adoptions",
        &pick(&|o| o.policy_adoptions as f64),
    ));
    t_scale.push(Row::full("max_round_ms", &[round_ms[0], round_ms[1]]));

    let mut t_faults = Table::new("faults", &cols);
    let pick = |f: &dyn Fn(&FaultsOutcome) -> f64| [f(&faults[0]), f(&faults[1])];
    t_faults.push(Row::full(
        "partition_frames_dropped",
        &pick(&|o| o.partition_frames_dropped as f64),
    ));
    t_faults.push(Row::full(
        "lag_frames_delayed",
        &pick(&|o| o.lag_frames_delayed as f64),
    ));
    t_faults.push(Row::full("gap_resyncs", &pick(&|o| o.gap_resyncs as f64)));
    t_faults.push(Row::full(
        "periphery_resyncs",
        &pick(&|o| o.periphery_resyncs as f64),
    ));
    t_faults.push(Row::full(
        "degraded_rounds",
        &pick(&|o| o.degraded_rounds as f64),
    ));
    t_faults.push(Row::full(
        "post_restore_partitioned",
        &pick(&|o| o.post_restore_partitioned as f64),
    ));
    t_faults.push(Row::full(
        "final_partitioned",
        &pick(&|o| o.final_partitioned as f64),
    ));
    t_faults.push(Row::full("final_cpu", &pick(&|o| o.final_cpu as f64)));
    t_faults.push(Row::full("truth_cpu", &pick(&|o| o.truth_cpu as f64)));

    let mut t_failover = Table::new("failover", &cols);
    let pick = |f: &dyn Fn(&FailoverOutcome) -> f64| [f(&failovers[0]), f(&failovers[1])];
    t_failover.push(Row::full("kill_tick", &pick(&|o| o.kill_tick as f64)));
    t_failover.push(Row::full(
        "ticks_to_promote",
        &pick(&|o| o.ticks_to_promote as f64),
    ));
    t_failover.push(Row::full(
        "ticks_to_fresh",
        &pick(&|o| o.ticks_to_fresh as f64),
    ));
    t_failover.push(Row::full(
        "repl_backlog_at_kill",
        &pick(&|o| o.repl_backlog_at_kill as f64),
    ));
    t_failover.push(Row::full(
        "repl_records_applied",
        &pick(&|o| o.repl_records_applied as f64),
    ));
    t_failover.push(Row::full(
        "not_leader_rejects",
        &pick(&|o| o.not_leader_rejects as f64),
    ));
    t_failover.push(Row::full(
        "deltas_coalesced",
        &pick(&|o| o.deltas_coalesced as f64),
    ));
    t_failover.push(Row::full("final_epoch", &pick(&|o| o.final_epoch as f64)));
    t_failover.push(Row::full("final_cpu", &pick(&|o| o.final_cpu as f64)));
    t_failover.push(Row::full("truth_cpu", &pick(&|o| o.truth_cpu as f64)));

    let mut t_split = Table::new("splitbrain", &cols);
    let pick = |f: &dyn Fn(&SplitBrainOutcome) -> f64| [f(&splits[0]), f(&splits[1])];
    t_split.push(Row::full(
        "split_brain_rounds",
        &pick(&|o| o.split_brain_rounds as f64),
    ));
    t_split.push(Row::full("repl_fenced", &pick(&|o| o.repl_fenced as f64)));
    t_split.push(Row::full(
        "periphery_acks_fenced",
        &pick(&|o| o.periphery_acks_fenced as f64),
    ));
    t_split.push(Row::full(
        "primary_demotions",
        &pick(&|o| o.primary_demotions as f64),
    ));
    t_split.push(Row::full("final_cpu", &pick(&|o| o.final_cpu as f64)));
    t_split.push(Row::full("rejoined_cpu", &pick(&|o| o.rejoined_cpu as f64)));
    t_split.push(Row::full("truth_cpu", &pick(&|o| o.truth_cpu as f64)));

    let mut t_det = Table::new("determinism", &["replays_identical"]);
    for scenario in ["scale", "faults", "failover", "splitbrain"] {
        // Each scenario already ran twice per seed behind an
        // assert_eq!; reaching this point means every replay matched.
        t_det.push(Row::full(scenario, &[1.0]));
    }

    let mut rep = FigReport::new(
        "fleet",
        "core↔periphery control plane: exact rollups at fleet scale, degraded serving under \
         partition, journaled controller failover healed by FULL resyncs, lease-based standby \
         promotion with epoch fencing",
    );
    rep.tables.push(t_scale);
    rep.tables.push(t_faults);
    rep.tables.push(t_failover);
    rep.tables.push(t_split);
    rep.tables.push(t_det);
    rep.note(format!(
        "seeds {:#x} and {:#x} (offset {seed_offset}); every scenario run twice per seed and \
         asserted bit-identical",
        run_seeds[0], run_seeds[1]
    ));
    rep.note(format!(
        "{hosts} hosts × {containers} containers: capacity and tenant rollups equal ground \
         truth at every tick; worst ingest round {:.2} / {:.2} ms against the \
         {TICK_PERIOD_MS} ms timer period",
        round_ms[0], round_ms[1]
    ));
    rep.note(format!(
        "fleet faults on {FAULT_HOSTS} live hosts: partition serves last-good degraded then \
         heals by FULL resync; a crashed controller restores its journal, serves every host \
         last-good, and recovers to Fresh rollups equal to per-host ground truth",
    ));
    rep.note(format!(
        "replicated pair: a mid-storm primary kill promotes the standby within {} ticks of \
         lease expiry, every host converges back to Fresh, and the promoted leader's rollups \
         equal ground truth; a lease-stalled split-brain is fenced by epochs — stale REPL \
         frames counted and refused, the impostor demoted, the deposed primary rejoining as a \
         mirror of the new leader",
        LEASE_TTL + 2
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_campaign_passes_and_reports() {
        let rep = run(0.05);
        assert_eq!(rep.tables.len(), 5);
        for col in [seed_label(SEEDS[0]), seed_label(SEEDS[1])] {
            assert_eq!(rep.tables[0].get("rollup_mismatches", &col), Some(0.0));
            assert_eq!(rep.tables[1].get("final_partitioned", &col), Some(0.0));
            assert_eq!(
                rep.tables[1].get("final_cpu", &col),
                rep.tables[1].get("truth_cpu", &col)
            );
            assert_eq!(
                rep.tables[2].get("final_cpu", &col),
                rep.tables[2].get("truth_cpu", &col)
            );
            assert_eq!(rep.tables[2].get("final_epoch", &col), Some(2.0));
        }
        assert_eq!(rep.tables[4].get("faults", "replays_identical"), Some(1.0));
        assert_eq!(
            rep.tables[4].get("failover", "replays_identical"),
            Some(1.0)
        );
    }

    #[test]
    fn fault_scenario_replays_bit_identically() {
        // Compared once more outside run(): guards against global state
        // sneaking into SimHost, the periphery, or the controller.
        assert_eq!(run_faults(3, 20), run_faults(3, 20));
    }

    #[test]
    fn failover_scenario_replays_bit_identically() {
        assert_eq!(run_failover(3, 20), run_failover(3, 20));
    }

    #[test]
    fn seed_offset_changes_the_seeds_reversibly() {
        assert_eq!(seeds(0), SEEDS);
        assert_ne!(seeds(1), SEEDS);
        assert_eq!(seeds(1), seeds(1));
    }
}
