//! §5.4 overhead: the cost of updating a `sys_namespace` and of querying
//! effective resources from user space.
//!
//! The paper reports ~1 µs per namespace update and 5 µs / 100 µs per
//! effective-CPU / effective-memory `sysconf` query (theirs crosses the
//! kernel; ours is an in-process atomic read, so expect much lower
//! query numbers — the point is that both paths are far below the 24 ms
//! update period). The Criterion benches in `arv-bench` measure the same
//! paths with proper statistics; this runner gives a quick wall-clock
//! estimate for the text report.

use arv_cgroups::{Bytes, CgroupId};
use arv_resview::effective_cpu::{CpuBounds, CpuSample};
use arv_resview::effective_mem::{EffectiveMemory, EffectiveMemoryConfig, MemSample};
use arv_resview::live::{LiveRegistry, LiveSample};
use arv_resview::EffectiveCpuConfig;
use arv_sim_core::SimDuration;
use std::time::Instant;

use crate::report::{FigReport, Row, Table};

fn sample() -> LiveSample {
    let t = SimDuration::from_millis(24);
    LiveSample {
        cpu: CpuSample {
            usage: t * 4,
            period: t,
            slack: t,
        },
        mem: MemSample {
            free: Bytes::from_gib(64),
            usage: Bytes::from_mib(480),
            reclaiming: false,
        },
    }
}

/// Run this study and produce its report.
pub fn run() -> FigReport {
    let registry = LiveRegistry::new();
    let cell = registry.register(
        CgroupId(0),
        CpuBounds {
            lower: 4,
            upper: 10,
        },
        EffectiveCpuConfig::default(),
        EffectiveMemory::new(
            Bytes::from_mib(500),
            Bytes::from_gib(1),
            Bytes::from_mib(1280),
            Bytes::from_mib(2560),
            EffectiveMemoryConfig::default(),
        ),
    );

    const UPDATES: u32 = 200_000;
    let s = sample();
    let start = Instant::now();
    for _ in 0..UPDATES {
        cell.apply(s);
    }
    let update_ns = start.elapsed().as_nanos() as f64 / f64::from(UPDATES);

    const QUERIES: u32 = 2_000_000;
    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..QUERIES {
        acc = acc.wrapping_add(u64::from(cell.effective_cpu()));
        acc = acc.wrapping_add(cell.effective_memory().as_u64());
    }
    std::hint::black_box(acc);
    let query_ns = start.elapsed().as_nanos() as f64 / f64::from(QUERIES);

    let mut table = Table::new("overhead_ns", &["measured_ns", "paper_us"]);
    table.push(Row::full("namespace_update", &[update_ns, 1.0]));
    table.push(Row::full("effective_query_pair", &[query_ns, 5.0]));

    let mut rep = FigReport::new("overhead", "sys_namespace update and query cost (§5.4)");
    rep.tables.push(table);
    rep.note(format!(
        "one update every 24 ms scheduling period costs {:.4}% of one CPU",
        update_ns / 24_000_000.0 * 100.0
    ));
    rep.note("paper queries cross the kernel via sysconf; ours are in-process atomic loads, hence faster");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_and_query_are_microsecond_scale_or_below() {
        let rep = run();
        let t = &rep.tables[0];
        let update = t.get("namespace_update", "measured_ns").unwrap();
        let query = t.get("effective_query_pair", "measured_ns").unwrap();
        // Generous ceilings (debug builds are slow): the paper's point is
        // that both are negligible against a 24 ms period.
        assert!(update < 50_000.0, "update cost {update} ns");
        assert!(query < 10_000.0, "query cost {query} ns");
    }
}
