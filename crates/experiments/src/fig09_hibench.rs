//! Figure 9: big-data applications (HiBench) with large datasets —
//! execution time and GC time under vanilla JDK 8, JDK 8 with container
//! awareness + dynamic threads, and the adaptive JVM, relative to
//! vanilla. Large heaps keep GC scalable, so the adaptive gains persist
//! where small DaCapo inputs saturate.

use arv_jvm::JvmConfig;
use arv_workloads::{hibench_profile, HIBENCH_BENCHMARKS};

use crate::report::{FigReport, Row, Table};
use crate::scenarios::{colocated_same_bench, mean_completed, paper_heap, scale_java, Layout};

const CONFIGS: [&str; 3] = ["Vanilla", "Dynamic", "Adaptive"];

fn config(name: &str) -> JvmConfig {
    match name {
        "Vanilla" => JvmConfig::vanilla_jdk8(),
        // "We incorporated container awareness into JDK 8 and enabled
        // dynamic threads" — static limits + the N_active heuristic.
        "Dynamic" => JvmConfig::jdk9().with_dynamic_gc_threads(true),
        "Adaptive" => JvmConfig::adaptive(),
        other => panic!("unknown config {other}"),
    }
}

/// Run this study and produce its report.
pub fn run(scale: f64) -> FigReport {
    let layout = Layout {
        quota_cpus: Some(10.0),
        ..Layout::default()
    };

    let mut exec_table = Table::new("exec_time", &CONFIGS);
    let mut gc_table = Table::new("gc_time", &CONFIGS);
    for bench in HIBENCH_BENCHMARKS {
        let profile = scale_java(hibench_profile(bench), scale);
        let mut execs = Vec::new();
        let mut gcs = Vec::new();
        for name in CONFIGS {
            let cfg = config(name).with_heap_policy(paper_heap(&profile));
            let stats = colocated_same_bench(5, layout, &cfg, &profile);
            let (e, g) = mean_completed(&stats).expect("figure 9 runs complete");
            execs.push(e);
            gcs.push(g);
        }
        exec_table.push(Row::full(
            bench,
            &execs.iter().map(|e| e / execs[0]).collect::<Vec<_>>(),
        ));
        gc_table.push(Row::full(
            bench,
            &gcs.iter().map(|g| g / gcs[0]).collect::<Vec<_>>(),
        ));
    }

    let mut rep = FigReport::new(
        "9",
        "HiBench big-data applications: execution and GC time (5 containers, 10-core limits)",
    );
    rep.tables.push(exec_table);
    rep.tables.push(gc_table);
    rep.note("values relative to the vanilla JVM (lower is better)");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_consistently_beats_vanilla_and_static() {
        let rep = run(0.03);
        let exec = &rep.tables[0];
        for bench in HIBENCH_BENCHMARKS {
            let d = exec.get(bench, "Dynamic").unwrap();
            let a = exec.get(bench, "Adaptive").unwrap();
            assert!(a < 1.0, "{bench}: adaptive {a} must beat vanilla");
            assert!(a <= d + 0.03, "{bench}: adaptive {a} vs dynamic {d}");
        }
    }

    #[test]
    fn gc_time_drives_the_gains() {
        let rep = run(0.03);
        let gc = &rep.tables[1];
        for bench in HIBENCH_BENCHMARKS {
            let a = gc.get(bench, "Adaptive").unwrap();
            assert!(a < 1.0, "{bench}: adaptive GC {a} must improve on vanilla");
        }
    }
}
