//! Figure 8: static CPU shares (JDK 10) vs effective CPU under varying
//! CPU availability — one DaCapo container colocated with nine sysbench
//! containers that finish at different times.
//!
//! JDK 10 derives a static 2-core count from equal shares over ten
//! containers and never revisits it; the adaptive JVM grows its GC team
//! as sysbench neighbours finish and free CPU. Sub-figure (b) is the
//! per-collection GC-thread trace for sunflow.

use arv_jvm::{Jvm, JvmConfig};
use arv_sim_core::{SimDuration, SimTime, TimeSeries};
use arv_workloads::{dacapo_profile, sysbench_mix, DACAPO_BENCHMARKS};

use crate::driver::Fleet;
use crate::report::{FigReport, Row, Table};
use crate::scenarios::{paper_heap, scale_java, testbed_with_containers, JvmRunStats, Layout};

const CONFIGS: [&str; 3] = ["Vanilla", "JVM10", "Adaptive"];

fn config(name: &str) -> JvmConfig {
    match name {
        "Vanilla" => JvmConfig::vanilla_jdk8(),
        "JVM10" => JvmConfig::jdk10().with_dynamic_gc_threads(true),
        "Adaptive" => JvmConfig::adaptive(),
        other => panic!("unknown config {other}"),
    }
}

/// Run one benchmark in container 0 with the staggered sysbench mix in
/// containers 1–9.
fn run_one(cfg: &JvmConfig, profile: &arv_jvm::JavaProfile) -> JvmRunStats {
    let (mut host, ids) = testbed_with_containers(10, Layout::default());
    let mut fleet = Fleet::new();
    let jvm_idx = fleet.push_jvm(Jvm::launch(&mut host, ids[0], cfg.clone(), profile.clone()));
    // Two threads per hog (ten containers × 2 = 20 cores fully used);
    // budgets stagger so CPU frees progressively over the first part of
    // the run, leaving a tail where the adaptive JVM can expand.
    let shortest = profile.total_work.mul_f64(0.25);
    for hog in sysbench_mix(&ids[1..], 2, shortest) {
        fleet.push_hog(hog);
    }
    let deadline = profile
        .total_work
        .mul_f64(100.0)
        .max(SimDuration::from_secs(600));
    fleet.run(&mut host, deadline);
    crate::scenarios::JvmRunStats {
        outcome: fleet.jvm(jvm_idx).outcome(),
        exec_s: fleet.jvm(jvm_idx).metrics().exec_wall.as_secs_f64(),
        gc_s: fleet.jvm(jvm_idx).metrics().gc_wall.as_secs_f64(),
        minor_gcs: fleet.jvm(jvm_idx).metrics().minor_gcs,
        major_gcs: fleet.jvm(jvm_idx).metrics().major_gcs,
        gc_thread_trace: fleet.jvm(jvm_idx).metrics().gc_thread_trace.clone(),
    }
}

/// Run this study and produce its report.
pub fn run(scale: f64) -> FigReport {
    let mut gc_table = Table::new("normalized_gc_time", &CONFIGS);
    let mut traces: Vec<TimeSeries> = Vec::new();

    for bench in DACAPO_BENCHMARKS {
        let profile = scale_java(dacapo_profile(bench), scale);
        let mut gcs = Vec::new();
        for name in CONFIGS {
            let stats = run_one(
                &config(name).with_heap_policy(paper_heap(&profile)),
                &profile,
            );
            assert!(stats.completed(), "{bench}/{name} must complete");
            gcs.push(stats.gc_s);
            if bench == "sunflow" {
                // Figure 8(b): GC-thread count over collections.
                let mut s = TimeSeries::new(format!("sunflow_gc_threads_{name}"));
                for (i, w) in stats.gc_thread_trace.iter().enumerate() {
                    s.push(SimTime(i as u64 * 1_000_000), f64::from(*w));
                }
                traces.push(s);
            }
        }
        let g0 = gcs[0];
        gc_table.push(Row::full(
            bench,
            &gcs.iter().map(|g| g / g0).collect::<Vec<_>>(),
        ));
    }

    let mut rep = FigReport::new(
        "8",
        "Static CPU shares vs effective CPU with staggered sysbench background load",
    );
    rep.tables.push(gc_table);
    rep.series = traces;
    rep.note("GC time relative to the vanilla JVM (15 GC threads from 20 online CPUs)");
    rep.note("JVM10 derives a static 2-thread count from equal shares over 10 containers");
    rep.note("series are GC threads per collection; the x axis is the collection index (1 'second' per GC)");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_tracks_freed_cpu_and_beats_jvm10() {
        let rep = run(0.08);
        let t = &rep.tables[0];
        let mut adaptive_wins = 0;
        let mut jvm10_wins = 0;
        for bench in DACAPO_BENCHMARKS {
            let j = t.get(bench, "JVM10").unwrap();
            let a = t.get(bench, "Adaptive").unwrap();
            // The adaptive JVM must always beat vanilla's 15-thread
            // over-threading.
            assert!(a < 1.0, "{bench}: adaptive {a} vs vanilla");
            if j < 1.0 {
                jvm10_wins += 1;
            }
            if a < j {
                adaptive_wins += 1;
            }
        }
        assert!(
            jvm10_wins >= 4,
            "static share awareness should beat vanilla for most benchmarks ({jvm10_wins}/5)"
        );
        assert!(
            adaptive_wins >= 4,
            "adaptive should beat static shares for most benchmarks ({adaptive_wins}/5)"
        );
    }

    #[test]
    fn sunflow_trace_shows_team_growth() {
        let rep = run(0.08);
        let adaptive = rep
            .series
            .iter()
            .find(|s| s.name() == "sunflow_gc_threads_Adaptive")
            .expect("adaptive sunflow trace");
        let first = adaptive.samples().first().unwrap().1;
        let max = adaptive.max_value().unwrap();
        assert!(
            max > first,
            "adaptive GC threads should grow as sysbench hogs finish ({first} → {max})"
        );
        // JVM10 stays pinned at its share-derived count.
        let jvm10 = rep
            .series
            .iter()
            .find(|s| s.name() == "sunflow_gc_threads_JVM10")
            .unwrap();
        assert_eq!(jvm10.min_value(), jvm10.max_value());
    }
}
