//! Figure 7: JDK 9's static CPU limit vs effective CPU across a varying
//! number of co-running containers (2–10).
//!
//! The JDK 9 runs pin each container to a disjoint 2-core cpuset (the
//! paper: "we configured the CPU mask to access two cores in each
//! container"); the adaptive runs rely on shares plus the resource view,
//! so they may roam the whole machine — trading isolation (better GC
//! time for JDK 9 at high container counts) for elasticity (better
//! overall time for adaptive, with the gap narrowing as containers are
//! added).

use arv_jvm::JvmConfig;
use arv_workloads::{dacapo_profile, DACAPO_BENCHMARKS};

use crate::report::{FigReport, Row, Table};
use crate::scenarios::{colocated_same_bench, mean_completed, paper_heap, scale_java, Layout};

/// Container counts swept in the paper.
pub const CONTAINER_COUNTS: [u32; 5] = [2, 4, 6, 8, 10];

/// Run this study and produce its report.
pub fn run(scale: f64) -> FigReport {
    let mut rep = FigReport::new(
        "7",
        "DaCapo execution and GC time vs number of containers: JVM9 (2-core cpuset) vs Adaptive",
    );
    let columns: Vec<String> = CONTAINER_COUNTS.iter().map(|n| n.to_string()).collect();
    let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();

    for bench in DACAPO_BENCHMARKS {
        let profile = scale_java(dacapo_profile(bench), scale);
        let mut exec_table = Table::new(format!("{bench}_exec_ms"), &col_refs);
        let mut gc_table = Table::new(format!("{bench}_gc_ms"), &col_refs);

        type SweepRow = (String, Vec<Option<f64>>, Vec<Option<f64>>);
        let mut rows: Vec<SweepRow> = vec![
            ("JVM9".into(), Vec::new(), Vec::new()),
            ("Adaptive".into(), Vec::new(), Vec::new()),
        ];
        for &n in &CONTAINER_COUNTS {
            // JDK 9: dynamic GC threads on, disjoint 2-core cpusets.
            let jvm9_layout = Layout {
                cpuset_cores: Some(2),
                ..Layout::default()
            };
            let jvm9_cfg = JvmConfig::jdk9()
                .with_dynamic_gc_threads(true)
                .with_heap_policy(paper_heap(&profile));
            let jvm9 = colocated_same_bench(n, jvm9_layout, &jvm9_cfg, &profile);
            let jvm9_mean = mean_completed(&jvm9);

            // Adaptive: shares only, whole machine reachable.
            let ad_cfg = JvmConfig::adaptive().with_heap_policy(paper_heap(&profile));
            let ad = colocated_same_bench(n, Layout::default(), &ad_cfg, &profile);
            let ad_mean = mean_completed(&ad);

            rows[0].1.push(jvm9_mean.map(|(e, _)| e * 1e3));
            rows[0].2.push(jvm9_mean.map(|(_, g)| g * 1e3));
            rows[1].1.push(ad_mean.map(|(e, _)| e * 1e3));
            rows[1].2.push(ad_mean.map(|(_, g)| g * 1e3));
        }
        for (label, execs, gcs) in rows {
            exec_table.push(Row::new(label.clone(), execs));
            gc_table.push(Row::new(label, gcs));
        }
        rep.tables.push(exec_table);
        rep.tables.push(gc_table);
    }

    rep.note("columns are the number of co-running containers; values in milliseconds");
    rep.note("JVM9 pins each container to a disjoint 2-core cpuset; Adaptive uses shares + the resource view");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_wins_overall_and_gap_narrows() {
        let rep = run(0.05);
        // Check the sunflow exec table (a benchmark the paper highlights).
        let exec = rep
            .tables
            .iter()
            .find(|t| t.name == "sunflow_exec_ms")
            .unwrap();
        let j2 = exec.get("JVM9", "2").unwrap();
        let a2 = exec.get("Adaptive", "2").unwrap();
        assert!(a2 < j2, "adaptive {a2} must beat JVM9 {j2} at 2 containers");
        let j10 = exec.get("JVM9", "10").unwrap();
        let a10 = exec.get("Adaptive", "10").unwrap();
        assert!(a10 <= j10 * 1.05, "adaptive {a10} vs JVM9 {j10} at 10");
        // Relative advantage shrinks as containers are added.
        assert!(a2 / j2 < a10 / j10 + 0.05);
    }

    #[test]
    fn exec_time_grows_with_container_count() {
        let rep = run(0.05);
        let exec = rep.tables.iter().find(|t| t.name == "h2_exec_ms").unwrap();
        let a2 = exec.get("Adaptive", "2").unwrap();
        let a10 = exec.get("Adaptive", "10").unwrap();
        assert!(a10 > a2, "more containers must mean slower runs");
    }
}
