//! Fleet observability campaign (`--fig fleetobs`): causal spans,
//! staleness waterfalls, and the anomaly flight recorder, proven
//! against ground-truth tick arithmetic.
//!
//! Three scenarios, seeded and replay-checked like [`crate::fleet`]:
//!
//! * **waterfall** — peripheries stream span-stamped DELTA frames into
//!   a controller while a [`arv_sim_core::FaultPlan`] injects seeded
//!   faults: one host's frames are dropped for a partition window (the
//!   gap healed by a FULL resync), another's are delayed in order by a
//!   lag window. The driver *independently* simulates the controller's
//!   accept rule from the decoded frames alone, so at every tick the
//!   controller's per-host freshness lags, the span stamped on every
//!   rollup (`origin_min` / `trace_max` / `max_lag`), and the per-host
//!   end-to-end waterfall histograms must all equal the driver's own
//!   tick arithmetic **exactly** — not approximately.
//! * **flightrec** — a replicated pair walks through the anomaly
//!   gauntlet: a lease-stalled primary forces a standby promotion, then
//!   the stale primary's REPL stream is fenced. Each anomaly must
//!   freeze a flight dump; the dumps are retrieved over the query path
//!   (`QUERY_FLIGHT`) and their encoded bytes must be **bit-identical**
//!   across two runs of the same seed — a black box nobody can trust
//!   to replay is not a black box.
//! * **overhead** — the same ingest stream is replayed into a
//!   controller with tracing + flight recording enabled and into one
//!   with both disabled; the traced per-frame cost must stay inside a
//!   fixed budget of the untraced cost, mirroring the single-host
//!   [`crate::obs`] gate. Observability that taxes the hot path gets
//!   turned off in production, which is worse than not having it.

use std::time::Instant;

use arv_fleet::{
    decode_frame, encode_query, FleetController, FleetPolicy, Frame, Periphery, Query, Rollup,
    SharedLease, QUERY_CLUSTER, QUERY_FLIGHT,
};
use arv_persist::{Snapshot, ViewState};
use arv_sim_core::{FaultConfig, FaultPlan, SimRng};
use arv_telemetry::{FlightDump, FlightRecorder, FlightTrigger, LagHistogram, Tracer};

use crate::report::{FigReport, Row, Table};

/// Campaign seeds (distinct from the fleet, chaos, and recovery
/// suites).
const SEEDS: [u64; 2] = [0x0B5F1EE7, 0x57A1E];

/// Derive this run's seeds from `--seed-offset`, exactly as the fleet
/// campaign does.
fn seeds(offset: u64) -> [u64; 2] {
    SEEDS.map(|s| s ^ offset.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Host whose frames the partition window drops.
const PARTITIONED_HOST: usize = 0;

/// Host whose frames the lag window delays (in order).
const LAGGED_HOST: usize = 1;

/// Trace-ring capacity for the traced ingest runs: far above the
/// event volume of any scenario here.
const RING_CAPACITY: usize = 16_384;

/// Flight dumps the recorder retains in every scenario.
const FLIGHT_DUMPS: usize = 8;

/// Traced fleet ingest must stay within `ratio * untraced + slack` per
/// frame. Span folding, the waterfall observe, and the (armed but idle)
/// flight recorder are all O(1) bookkeeping; the slack keeps the gate
/// meaningful when the untraced baseline is a few hundred nanoseconds.
const OVERHEAD_BUDGET_RATIO: f64 = 1.75;
/// Absolute per-frame slack, nanoseconds.
const OVERHEAD_SLACK_NS: f64 = 400.0;

// --- scenario 1: staleness waterfalls vs ground-truth arithmetic ---

/// Driver-side mirror of one host's controller state: the accept rule
/// re-derived independently from the decoded frames.
#[derive(Debug, Clone, Copy, Default)]
struct GroundTruth {
    /// The controller has seen at least one frame from this host, so
    /// it appears in freshness-lag listings and span stamps.
    known: bool,
    expect: u64,
    needs_resync: bool,
    origin_tick: u64,
    trace_seq: u64,
    waterfall: LagHistogram,
}

/// A frame waiting out the lag window.
struct Delayed {
    release: u64,
    frame: Vec<u8>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WaterfallOutcome {
    hosts: u64,
    rounds: u64,
    frames_dropped: u64,
    frames_delayed: u64,
    gap_resyncs_truth: u64,
    gap_resyncs_ctl: u64,
    lag_mismatches: u64,
    span_mismatches: u64,
    waterfall_mismatches: u64,
    origin_violations: u64,
    final_max_lag: u64,
    final_trace_max: u64,
    dumps_frozen: u64,
}

/// Decode a rollup answer into its stamped span.
fn query_span(ctl: &FleetController) -> arv_fleet::SpanStamp {
    let resp = ctl
        .handle_frame(&encode_query(&Query {
            kind: QUERY_CLUSTER,
            arg: 0,
        }))
        .expect("cluster query answered");
    let Some(Frame::Rollup(frame)) = decode_frame(&resp) else {
        panic!("expected ROLLUP");
    };
    frame.span
}

fn run_waterfall(seed: u64, hosts: u32, containers: u32, rounds: u32) -> WaterfallOutcome {
    let plan = FaultPlan::new(
        seed,
        FaultConfig {
            partition_at: Some((4, 6)),
            lag_ticks: 2,
            ..FaultConfig::quiet()
        },
    );
    let mut rng = SimRng::seed_from_u64(seed ^ 0x0B5);
    let mut ctl = FleetController::new(8, FleetPolicy::default());
    ctl.set_tracer(Tracer::bounded(RING_CAPACITY));
    ctl.set_flight_recorder(FlightRecorder::bounded(FLIGHT_DUMPS));

    let mut truth: Vec<Vec<(u32, u64, u64)>> = (0..hosts)
        .map(|_| {
            (0..containers)
                .map(|_| {
                    let mem = rng.range_u64(64, 1024);
                    (rng.range_u64(1, 16) as u32, mem, rng.range_u64(0, mem))
                })
                .collect()
        })
        .collect();
    let mut peripheries: Vec<Periphery> = (0..hosts).map(Periphery::new).collect();
    let mut gt: Vec<GroundTruth> = vec![GroundTruth::default(); hosts as usize];
    let mut lag_queue: Vec<Delayed> = Vec::new();

    let mut out = WaterfallOutcome {
        hosts: u64::from(hosts),
        rounds: u64::from(rounds),
        frames_dropped: 0,
        frames_delayed: 0,
        gap_resyncs_truth: 0,
        gap_resyncs_ctl: 0,
        lag_mismatches: 0,
        span_mismatches: 0,
        waterfall_mismatches: 0,
        origin_violations: 0,
        final_max_lag: 0,
        final_trace_max: 0,
        dumps_frozen: 0,
    };

    // Deliver one frame: the controller ingests it for real while the
    // driver replays the accept rule on the decoded copy. Both sides
    // see the same `now`, so their lag arithmetic must coincide.
    let deliver = |ctl: &FleetController,
                   p: &mut Periphery,
                   gt: &mut GroundTruth,
                   out: &mut WaterfallOutcome,
                   frame: &[u8]| {
        let now = ctl.now_tick();
        gt.known = true;
        match decode_frame(frame) {
            Some(Frame::Hello(h)) => {
                // A hello seeds the origin so a not-yet-flushed host
                // doesn't report lag measured from tick zero.
                gt.origin_tick = gt.origin_tick.max(h.tick);
            }
            Some(Frame::Delta(d)) => {
                if d.full || (d.seq == gt.expect && !gt.needs_resync) {
                    if d.full {
                        gt.expect = d.seq + 1;
                        gt.needs_resync = false;
                    } else {
                        gt.expect += 1;
                    }
                    gt.origin_tick = gt.origin_tick.max(d.origin_tick);
                    gt.trace_seq = gt.trace_seq.max(d.trace_seq);
                    gt.waterfall.observe(now.saturating_sub(d.origin_tick));
                } else if !gt.needs_resync {
                    gt.needs_resync = true;
                    out.gap_resyncs_truth += 1;
                }
            }
            _ => panic!("peripheries only ship HELLO and DELTA frames"),
        }
        if let Some(resp) = ctl.handle_frame(frame) {
            if let Some(Frame::Ack(ack)) = decode_frame(&resp) {
                p.handle_ack(&ack);
            }
        }
    };

    for round in 0..u64::from(rounds) {
        // Seeded churn: every host flips at least one container, so
        // every firing ships a frame (the cpu map never restores the
        // old value within a round).
        for host in truth.iter_mut() {
            let changes = 1 + rng.range_u64(0, 4) as usize;
            for _ in 0..changes {
                let c = rng.range_u64(0, u64::from(containers)) as usize;
                let t = &mut host[c];
                t.0 = (t.0 % 64) + 1 + rng.range_u64(0, 4) as u32;
                t.1 = rng.range_u64(64, 1024);
                t.2 = rng.range_u64(0, t.1);
            }
        }

        let flush_tick = round + 1;
        for (h, p) in peripheries.iter_mut().enumerate() {
            let mut snap = Snapshot::at(flush_tick);
            for (c, t) in truth[h].iter().enumerate() {
                snap.entries.push(ViewState {
                    id: c as u32,
                    e_cpu: t.0,
                    e_mem: t.1,
                    e_avail: t.2,
                    last_tick: flush_tick,
                });
            }
            p.observe(&snap, false, 0);

            let frames = p.take_frames();
            if h == PARTITIONED_HOST && plan.partitioned(round) {
                out.frames_dropped += frames.len() as u64;
            } else if h == LAGGED_HOST {
                for frame in frames {
                    out.frames_delayed += 1;
                    lag_queue.push(Delayed {
                        release: round + plan.frame_lag(),
                        frame,
                    });
                }
                let mut due = Vec::new();
                lag_queue.retain_mut(|l| {
                    if l.release <= round {
                        due.push(std::mem::take(&mut l.frame));
                        false
                    } else {
                        true
                    }
                });
                for frame in &due {
                    deliver(&ctl, p, &mut gt[h], &mut out, frame);
                }
            } else {
                for frame in &frames {
                    // Direct hosts flush the round they observe: the
                    // periphery must stamp this round's tick as the
                    // origin (the end of the ground-truth waterfall).
                    if let Some(Frame::Delta(d)) = decode_frame(frame) {
                        if !d.full && d.origin_tick != flush_tick {
                            out.origin_violations += 1;
                        }
                    }
                    deliver(&ctl, p, &mut gt[h], &mut out, frame);
                }
            }
        }

        ctl.advance_tick();
        let now = ctl.now_tick();

        // Checkpoint 1: per-host freshness lags are exactly
        // `now - last accepted origin`, for every host, every tick.
        let want: Vec<(u32, u64)> = gt
            .iter()
            .enumerate()
            .filter(|(_, g)| g.known)
            .map(|(h, g)| (h as u32, now.saturating_sub(g.origin_tick)))
            .collect();
        if ctl.host_freshness_lags() != want {
            out.lag_mismatches += 1;
        }

        // Checkpoint 2: the span stamped on a live rollup traces back
        // to the oldest origin and the newest trace cursor.
        let span = query_span(&ctl);
        let origin_min = gt
            .iter()
            .filter(|g| g.known)
            .map(|g| g.origin_tick)
            .min()
            .unwrap_or(now);
        let trace_max = gt
            .iter()
            .filter(|g| g.known)
            .map(|g| g.trace_seq)
            .max()
            .unwrap_or(0);
        if (span.as_of_tick, span.origin_min, span.trace_max) != (now, origin_min, trace_max)
            || span.max_lag() != now.saturating_sub(origin_min)
        {
            out.span_mismatches += 1;
        }
    }

    // Checkpoint 3: the full per-host waterfall histograms — every
    // bucket, sum, and max — match the driver's own accounting.
    for (h, g) in gt.iter().enumerate() {
        let ex = ctl.explain_host(h as u32).expect("host tracked");
        if ex.waterfall != g.waterfall {
            out.waterfall_mismatches += 1;
        }
    }

    let span = query_span(&ctl);
    out.final_max_lag = span.max_lag();
    out.final_trace_max = span.trace_max;
    out.gap_resyncs_ctl = ctl.metrics().snapshot().deltas_gap_resyncs;
    out.dumps_frozen = ctl.flight_recorder().dumps_frozen();
    out
}

fn assert_waterfall(out: &WaterfallOutcome, seed: u64) {
    assert!(
        out.frames_dropped >= 1,
        "seed {seed:#x}: the partition window dropped nothing — untested"
    );
    assert!(
        out.frames_delayed >= 1,
        "seed {seed:#x}: the lag window delayed nothing — untested"
    );
    assert_eq!(
        out.gap_resyncs_ctl, out.gap_resyncs_truth,
        "seed {seed:#x}: the controller saw different gaps than the driver's accept rule"
    );
    assert!(
        out.gap_resyncs_truth >= 1,
        "seed {seed:#x}: the healed partition must surface as a sequence gap"
    );
    assert_eq!(
        out.lag_mismatches, 0,
        "seed {seed:#x}: a freshness lag diverged from ground-truth tick arithmetic"
    );
    assert_eq!(
        out.span_mismatches, 0,
        "seed {seed:#x}: a rollup span diverged from ground-truth tick arithmetic"
    );
    assert_eq!(
        out.waterfall_mismatches, 0,
        "seed {seed:#x}: a per-host waterfall histogram diverged from the driver's"
    );
    assert_eq!(
        out.origin_violations, 0,
        "seed {seed:#x}: a direct host stamped an origin other than its flush tick"
    );
    assert!(
        out.dumps_frozen >= 1,
        "seed {seed:#x}: the partition anomaly must freeze a flight dump"
    );
}

// --- scenario 2: flight dumps replay bit-identically ---

/// Everything the black box produced, in retrieval order (newest
/// first). `Eq` on the raw encoded bytes is the bit-identical claim.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FlightOutcome {
    dump_bytes: Vec<Vec<u8>>,
    triggers: Vec<FlightTrigger>,
    promotions: u64,
    repl_fenced: u64,
    demotions: u64,
    final_epoch: u64,
}

/// Pump the primary→standby replication stream once.
fn pump_repl(from: &FleetController, to: &FleetController) {
    for frame in from.take_repl_frames() {
        if let Some(resp) = to.handle_frame(&frame) {
            if let Some(Frame::Ack(ack)) = decode_frame(&resp) {
                from.handle_repl_ack(&ack);
            }
        }
    }
}

/// Retrieve every frozen dump over the wire protocol, newest first,
/// until the controller answers with empty bytes.
fn drain_flight_dumps(ctl: &FleetController) -> Vec<Vec<u8>> {
    let mut dumps = Vec::new();
    for back in 0..64u32 {
        let resp = ctl
            .handle_frame(&encode_query(&Query {
                kind: QUERY_FLIGHT,
                arg: back,
            }))
            .expect("flight query answered");
        let Some(Frame::Rollup(frame)) = decode_frame(&resp) else {
            panic!("expected ROLLUP");
        };
        let Rollup::Flight(bytes) = frame.body else {
            panic!("expected Flight body");
        };
        if bytes.is_empty() {
            break;
        }
        dumps.push(bytes);
    }
    dumps
}

fn snap_one(tick: u64, id: u32, cpu: u32) -> Snapshot {
    let mut s = Snapshot::at(tick);
    s.entries.push(ViewState {
        id,
        e_cpu: cpu,
        e_mem: 100,
        e_avail: 50,
        last_tick: tick,
    });
    s
}

fn run_flightrec(seed: u64) -> FlightOutcome {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xF117);
    let cpu = rng.range_u64(1, 32) as u32;

    let lease = SharedLease::new();
    let primary = FleetController::new(2, FleetPolicy::default());
    primary.attach_lease(lease.clone(), 1, 2);
    primary.enable_replication();
    let mut standby = FleetController::new(2, FleetPolicy::default());
    standby.set_tracer(Tracer::bounded(RING_CAPACITY));
    standby.set_flight_recorder(FlightRecorder::bounded(FLIGHT_DUMPS));
    standby.attach_lease(lease, 2, 2);

    // Seed one replicated host, then stall the primary's lease: the
    // standby's clock runs past the TTL and it promotes — anomaly one.
    let mut p = Periphery::new(3);
    p.observe(&snap_one(1, 1, cpu), false, 0);
    for frame in p.take_frames() {
        let _ = primary.handle_frame(&frame);
    }
    pump_repl(&primary, &standby);
    primary.set_lease_stalled(true);
    for _ in 0..5 {
        standby.advance_tick();
    }
    assert!(standby.is_leader(), "standby promotes after lease expiry");

    // The deposed primary keeps streaming at its stale epoch: the
    // promoted standby fences the frames — anomaly two.
    let mut stale = Periphery::new(4);
    stale.observe(&snap_one(3, 9, cpu), false, 0);
    for frame in stale.take_frames() {
        let _ = primary.handle_frame(&frame);
    }
    pump_repl(&primary, &standby);

    let dump_bytes = drain_flight_dumps(&standby);
    let triggers = dump_bytes
        .iter()
        .map(|b| FlightDump::decode(b).expect("dump decodes").trigger)
        .collect();
    let m = standby.metrics().snapshot();
    FlightOutcome {
        dump_bytes,
        triggers,
        promotions: m.promotions,
        repl_fenced: m.repl_fenced,
        demotions: primary.metrics().snapshot().demotions,
        final_epoch: standby.ctl_epoch(),
    }
}

fn assert_flightrec(out: &FlightOutcome, seed: u64) {
    assert_eq!(out.promotions, 1, "seed {seed:#x}: exactly one promotion");
    assert!(
        out.repl_fenced >= 1,
        "seed {seed:#x}: the stale REPL stream must be fenced"
    );
    assert!(
        out.demotions >= 1,
        "seed {seed:#x}: the fencing ACK must demote the impostor"
    );
    assert_eq!(out.final_epoch, 2, "seed {seed:#x}: promotion bumps epoch");
    assert!(
        out.triggers.contains(&FlightTrigger::Promotion),
        "seed {seed:#x}: the promotion must freeze a flight dump, got {:?}",
        out.triggers
    );
    assert!(
        out.triggers.contains(&FlightTrigger::Fence),
        "seed {seed:#x}: the fence must freeze a flight dump, got {:?}",
        out.triggers
    );
    for bytes in &out.dump_bytes {
        let dump = FlightDump::decode(bytes).expect("retrieved dump decodes");
        assert!(
            !dump.events.is_empty(),
            "seed {seed:#x}: a {} dump froze an empty trace ring",
            dump.trigger.label()
        );
    }
}

// --- scenario 3: observability overhead on the ingest path ---

/// Pre-generate a deterministic ingest stream (every host's frames
/// across every round, in delivery order) so traced and untraced
/// controllers replay the exact same work.
fn gen_ingest(seed: u64, hosts: u32, containers: u32, rounds: u32) -> Vec<Vec<u8>> {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x0BE4);
    let mut truth: Vec<Vec<(u32, u64, u64)>> = (0..hosts)
        .map(|_| {
            (0..containers)
                .map(|_| {
                    let mem = rng.range_u64(64, 1024);
                    (rng.range_u64(1, 16) as u32, mem, rng.range_u64(0, mem))
                })
                .collect()
        })
        .collect();
    let mut peripheries: Vec<Periphery> = (0..hosts).map(Periphery::new).collect();
    let mut frames = Vec::new();
    for round in 0..u64::from(rounds) {
        for host in truth.iter_mut() {
            let c = rng.range_u64(0, u64::from(containers)) as usize;
            let t = &mut host[c];
            t.0 = (t.0 % 64) + 1 + rng.range_u64(0, 4) as u32;
        }
        for (h, p) in peripheries.iter_mut().enumerate() {
            let mut snap = Snapshot::at(round + 1);
            for (c, t) in truth[h].iter().enumerate() {
                snap.entries.push(ViewState {
                    id: c as u32,
                    e_cpu: t.0,
                    e_mem: t.1,
                    e_avail: t.2,
                    last_tick: round + 1,
                });
            }
            p.observe(&snap, false, 0);
            frames.extend(p.take_frames());
        }
    }
    frames
}

/// Mean nanoseconds per ingested frame, min over several trials with a
/// fresh controller each (min-of-trials rejects scheduler noise).
fn ingest_ns(frames: &[Vec<u8>], traced: bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut ctl = FleetController::new(8, FleetPolicy::default());
        if traced {
            ctl.set_tracer(Tracer::bounded(RING_CAPACITY));
            ctl.set_flight_recorder(FlightRecorder::bounded(FLIGHT_DUMPS));
        }
        let start = Instant::now();
        for frame in frames {
            std::hint::black_box(ctl.handle_frame(frame));
        }
        best = best.min(start.elapsed().as_nanos() as f64 / frames.len() as f64);
    }
    best
}

// --- harness ---

fn seed_label(seed: u64) -> String {
    format!("seed_{seed:#x}")
}

/// Run the fleet observability campaign and produce its report. Panics
/// (on purpose) if any waterfall-accounting, dump-replay, overhead, or
/// same-seed-replay invariant fails.
pub fn run(scale: f64) -> FigReport {
    run_seeded(scale, 0)
}

/// [`run`] with this run's seeds rotated by `seed_offset` (the CLI's
/// `--seed-offset`): offset 0 is the canonical campaign, any other
/// value a fresh one with identical invariants.
pub fn run_seeded(scale: f64, seed_offset: u64) -> FigReport {
    let hosts = ((12.0 * scale) as u32).clamp(4, 24);
    let containers = ((16.0 * scale) as u32).clamp(4, 32);
    let rounds = ((30.0 * scale) as u32).clamp(16, 40);
    let run_seeds = seeds(seed_offset);

    let mut waterfalls = Vec::new();
    let mut flights = Vec::new();
    for &seed in &run_seeds {
        // Same seed, run twice: an observability plane whose numbers
        // don't replay can never be trusted during an incident.
        let w = run_waterfall(seed, hosts, containers, rounds);
        assert_eq!(
            w,
            run_waterfall(seed, hosts, containers, rounds),
            "waterfall replay diverged"
        );
        assert_waterfall(&w, seed);
        waterfalls.push(w);

        let f = run_flightrec(seed);
        let f2 = run_flightrec(seed);
        assert_eq!(
            f.dump_bytes, f2.dump_bytes,
            "seed {seed:#x}: flight dumps are not bit-identical across runs"
        );
        assert_eq!(f, f2, "flightrec replay diverged");
        assert_flightrec(&f, seed);
        flights.push(f);
    }

    // Overhead gate: one deterministic stream, both configurations.
    let frames = gen_ingest(run_seeds[0], hosts, containers, rounds);
    let traced_ns = ingest_ns(&frames, true);
    let untraced_ns = ingest_ns(&frames, false);
    let budget_ns = untraced_ns * OVERHEAD_BUDGET_RATIO + OVERHEAD_SLACK_NS;
    assert!(
        traced_ns <= budget_ns,
        "observability overhead regression: fleet ingest {traced_ns:.0} ns/frame with tracing \
         and flight recording enabled vs {untraced_ns:.0} ns/frame disabled \
         (budget {budget_ns:.0} ns)"
    );

    let cols: Vec<String> = run_seeds.iter().map(|s| seed_label(*s)).collect();
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();

    let mut t_wf = Table::new("waterfall", &cols);
    let pick = |f: &dyn Fn(&WaterfallOutcome) -> f64| [f(&waterfalls[0]), f(&waterfalls[1])];
    t_wf.push(Row::full("hosts", &pick(&|o| o.hosts as f64)));
    t_wf.push(Row::full("rounds", &pick(&|o| o.rounds as f64)));
    t_wf.push(Row::full(
        "frames_dropped",
        &pick(&|o| o.frames_dropped as f64),
    ));
    t_wf.push(Row::full(
        "frames_delayed",
        &pick(&|o| o.frames_delayed as f64),
    ));
    t_wf.push(Row::full(
        "gap_resyncs",
        &pick(&|o| o.gap_resyncs_ctl as f64),
    ));
    t_wf.push(Row::full(
        "lag_mismatches",
        &pick(&|o| o.lag_mismatches as f64),
    ));
    t_wf.push(Row::full(
        "span_mismatches",
        &pick(&|o| o.span_mismatches as f64),
    ));
    t_wf.push(Row::full(
        "waterfall_mismatches",
        &pick(&|o| o.waterfall_mismatches as f64),
    ));
    t_wf.push(Row::full(
        "final_max_lag",
        &pick(&|o| o.final_max_lag as f64),
    ));
    t_wf.push(Row::full("dumps_frozen", &pick(&|o| o.dumps_frozen as f64)));

    let mut t_fr = Table::new("flightrec", &cols);
    let pick = |f: &dyn Fn(&FlightOutcome) -> f64| [f(&flights[0]), f(&flights[1])];
    t_fr.push(Row::full(
        "dumps_retrieved",
        &pick(&|o| o.dump_bytes.len() as f64),
    ));
    t_fr.push(Row::full(
        "dump_bytes_total",
        &pick(&|o| o.dump_bytes.iter().map(Vec::len).sum::<usize>() as f64),
    ));
    t_fr.push(Row::full("promotions", &pick(&|o| o.promotions as f64)));
    t_fr.push(Row::full("repl_fenced", &pick(&|o| o.repl_fenced as f64)));
    t_fr.push(Row::full("demotions", &pick(&|o| o.demotions as f64)));
    t_fr.push(Row::full("final_epoch", &pick(&|o| o.final_epoch as f64)));

    let mut t_over = Table::new("ingest_overhead", &["value"]);
    t_over.push(Row::full("traced_ns_per_frame", &[traced_ns]));
    t_over.push(Row::full("untraced_ns_per_frame", &[untraced_ns]));
    t_over.push(Row::full("ratio", &[traced_ns / untraced_ns.max(1.0)]));
    t_over.push(Row::full("budget_ns", &[budget_ns]));
    t_over.push(Row::full("frames", &[frames.len() as f64]));

    let mut t_det = Table::new("determinism", &["replays_identical"]);
    for scenario in ["waterfall", "flightrec"] {
        // Each scenario already ran twice per seed behind an
        // assert_eq!; reaching this point means every replay matched.
        t_det.push(Row::full(scenario, &[1.0]));
    }

    let mut rep = FigReport::new(
        "fleetobs",
        "fleet observability: per-host staleness waterfalls and rollup spans equal to \
         ground-truth tick arithmetic under seeded lag/partition faults, bit-identical flight \
         dumps for fence and promotion anomalies, observability overhead inside budget",
    );
    rep.tables.push(t_wf);
    rep.tables.push(t_fr);
    rep.tables.push(t_over);
    rep.tables.push(t_det);
    rep.note(format!(
        "seeds {:#x} and {:#x} (offset {seed_offset}); every scenario run twice per seed and \
         asserted bit-identical, flight dumps compared byte-for-byte",
        run_seeds[0], run_seeds[1]
    ));
    rep.note(format!(
        "{hosts} hosts × {containers} containers × {rounds} rounds: freshness lags, rollup \
         spans, and per-host waterfall histograms matched the driver's independent accept-rule \
         simulation exactly, through a 6-tick partition and a 2-tick lag window"
    ));
    rep.note(format!(
        "flight recorder: a lease takeover and a fenced stale primary each froze a dump \
         ({} retrieved over QUERY_FLIGHT per seed), replayed bit-identically",
        flights[0].dump_bytes.len()
    ));
    rep.note(format!(
        "fleet ingest {traced_ns:.0} ns/frame traced vs {untraced_ns:.0} ns/frame untraced \
         (budget {budget_ns:.0} ns): span folding and the armed flight recorder stay off the \
         hot path"
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleetobs_campaign_passes_and_reports() {
        let rep = run(0.05);
        assert_eq!(rep.tables.len(), 4);
        for col in [seed_label(SEEDS[0]), seed_label(SEEDS[1])] {
            assert_eq!(rep.tables[0].get("lag_mismatches", &col), Some(0.0));
            assert_eq!(rep.tables[0].get("span_mismatches", &col), Some(0.0));
            assert_eq!(rep.tables[0].get("waterfall_mismatches", &col), Some(0.0));
            assert!(rep.tables[0].get("gap_resyncs", &col).unwrap() >= 1.0);
            assert!(rep.tables[1].get("dumps_retrieved", &col).unwrap() >= 2.0);
            assert_eq!(rep.tables[1].get("final_epoch", &col), Some(2.0));
        }
        assert_eq!(
            rep.tables[3].get("waterfall", "replays_identical"),
            Some(1.0)
        );
        assert_eq!(
            rep.tables[3].get("flightrec", "replays_identical"),
            Some(1.0)
        );
    }

    #[test]
    fn waterfall_replays_bit_identically() {
        // Compared once more outside run(): guards against global state
        // sneaking into the periphery or the controller.
        assert_eq!(run_waterfall(7, 4, 4, 16), run_waterfall(7, 4, 4, 16));
    }

    #[test]
    fn flight_dumps_are_bit_identical_across_runs() {
        let a = run_flightrec(7);
        let b = run_flightrec(7);
        assert_eq!(a.dump_bytes, b.dump_bytes);
        assert!(a.triggers.contains(&FlightTrigger::Promotion));
        assert!(a.triggers.contains(&FlightTrigger::Fence));
    }

    #[test]
    fn seed_offset_changes_the_seeds_reversibly() {
        assert_eq!(seeds(0), SEEDS);
        assert_ne!(seeds(1), SEEDS);
        assert_eq!(seeds(1), seeds(1));
    }
}
