//! Crash-safe recovery and overload-protection campaign.
//!
//! The robustness claims the journaled warm restart and the admission
//! layer make are asserted here, seeded and replay-checked like the
//! [`crate::chaos`] campaign:
//!
//! * **warm restart** — the monitor daemon crashes mid-scenario (a
//!   [`arv_sim_core::FaultPlan`] crash window) and restarts from its
//!   append-only journal. The first views served after the restart must
//!   be the reconciled last-good state, never the cold lower bounds,
//!   and the attached daemon must walk back to Fresh within a bounded
//!   number of ticks (measured by its own recovery-latency histogram).
//! * **torn journal** — the journal "file" is truncated at arbitrary
//!   seeded offsets, plus two deterministic tears (mid-header and
//!   mid-final-record). Every restore must land on a valid prefix
//!   state: no panic, views inside their Algorithm 1 bounds, cold
//!   resync only when the checkpoint itself is torn, and the intact
//!   bytes must reproduce the exact crash-time views.
//! * **client flood** — greedy wire clients burn their per-connection
//!   token budget and keep hammering. Over-budget tier-2 requests get
//!   `OK_SHED` with the server's retry-after hint while cached-
//!   generation reads keep flowing at full service, the update timer
//!   underneath never misses a tick, and the cached-hit p99 stays
//!   inside the serving budget.
//!
//! Every scenario runs twice per seed and the outcomes must be
//! bit-identical — a failing campaign replays exactly.

use arv_cgroups::CgroupId;
use arv_container::{ContainerSpec, SimHost};
use arv_resview::Sysconf;
use arv_sim_core::{FaultConfig, FaultPlan};
use arv_viewd::{ViewServer, WireClient, WireLimits, WireServer, KIND_STATS};

use crate::report::{FigReport, Row, Table};

/// The two campaign seeds (distinct from the chaos campaign's, so the
/// suites never share a lucky constant).
const SEEDS: [u64; 2] = [0xC0FFEE, 0xB007ED];

/// Update-timer firings that grow the busy container to its quota
/// before any fault is injected.
const GROW_STEPS: u32 = 50;

/// Ticks allowed between the warm restart and the daemon's first
/// Fresh-health serve.
const RECOVERY_TO_FRESH_BOUND: u64 = 2;

/// Per-connection token-bucket burst in the flood scenario; refill is
/// zero so the burst is all a connection ever gets (deterministic).
const RATE_BURST: u32 = 4;

/// Over-budget requests each flooding client sends past its burst —
/// every one of them must be shed.
const FLOOD_REQUESTS_OVER: u32 = 16;

/// Budget for the cached-hit p99 under flood, nanoseconds. The paper
/// prices a full view query at ~5 µs (§5.4); a cached hit must stay
/// well under that even while the daemon is shedding.
const HIT_P99_BUDGET_NS: u64 = 5_000_000;

fn paper_spec(tag: impl std::fmt::Display) -> ContainerSpec {
    ContainerSpec::new(format!("recovery-{tag}"), 20)
        .cpus(10.0)
        .cpu_shares(1024)
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

// --- scenario 1: crash window + warm restart ---

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CrashOutcome {
    downtime_ticks: u64,
    pre_crash_cpus: u64,
    floor_cpus: u64,
    post_restart_cpus: u64,
    restored_plus_reconciled: u64,
    dropped: u64,
    truncated_records: u64,
    ticks_to_fresh: u64,
    recovery_latency_p99: u64,
    viewd_reconciled: u64,
    missed_ticks: u64,
    resyncs: u64,
}

fn run_crash_restart(seed: u64) -> CrashOutcome {
    let mut host = SimHost::paper_testbed();
    let server = ViewServer::new(host.viewd_host_spec(), 4);
    host.attach_viewd(server.clone());
    host.enable_journal(4);
    let ids: Vec<CgroupId> = (0..5).map(|i| host.launch(&paper_spec(i))).collect();

    // Only c0 runs: its view climbs from the all-busy fair share to the
    // 10-core quota, so restored-state and cold-floor answers differ.
    for _ in 0..GROW_STEPS {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
    }
    let client = server.client();
    let pre_crash_cpus = client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln);
    let floor_cpus = u64::from(
        host.monitor()
            .namespace(ids[0])
            .expect("namespace exists")
            .cpu_bounds()
            .lower,
    );

    // Seed-flavoured downtime, always at least two missed deadlines.
    let downtime = 2 + seed % 3;
    let crash_start = host.now_tick() + 1;
    host.set_fault_plan(FaultPlan::new(
        seed,
        FaultConfig {
            crash_at: Some((crash_start, downtime)),
            ..FaultConfig::quiet()
        },
    ));
    let restart_tick = crash_start + downtime;
    let mut ticks_to_fresh = u64::MAX;
    for _ in 0..downtime + 3 {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
        if host.now_tick() >= restart_tick && ticks_to_fresh == u64::MAX {
            // The query is what closes the daemon's recovery-latency
            // histogram: first Fresh-health serve after note_restore.
            let _ = client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln);
            if client.health(Some(ids[0])).is_fresh() {
                ticks_to_fresh = host.now_tick() - restart_tick;
            }
        }
    }

    let ev = host
        .last_restore()
        .expect("crash window fired a warm restart")
        .clone();
    let outcome = ev.outcome.expect("journal held a valid checkpoint");
    let m = server.metrics();
    let w = host.watchdog_stats();
    CrashOutcome {
        downtime_ticks: downtime,
        pre_crash_cpus,
        floor_cpus,
        post_restart_cpus: client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln),
        restored_plus_reconciled: (outcome.restored + outcome.reconciled) as u64,
        dropped: outcome.dropped as u64,
        truncated_records: ev.report.truncated_records,
        ticks_to_fresh,
        recovery_latency_p99: m.recovery_latency_p99,
        viewd_reconciled: m.restore_reconciled_containers,
        missed_ticks: w.missed_ticks,
        resyncs: w.resyncs,
    }
}

fn assert_crash(out: &CrashOutcome, seed: u64) {
    assert!(
        out.pre_crash_cpus > out.floor_cpus,
        "seed {seed:#x}: scenario must distinguish grown views from the floor"
    );
    assert_eq!(
        out.post_restart_cpus, out.pre_crash_cpus,
        "seed {seed:#x}: first-served views after restart must be the \
         journaled last-good state, not the cold floor"
    );
    assert_eq!(
        out.restored_plus_reconciled, 5,
        "seed {seed:#x}: every container recovered from the checkpoint"
    );
    assert_eq!(out.dropped, 0, "seed {seed:#x}");
    assert_eq!(
        out.truncated_records, 0,
        "seed {seed:#x}: an intact journal has no torn frames"
    );
    assert!(
        out.ticks_to_fresh <= RECOVERY_TO_FRESH_BOUND,
        "seed {seed:#x}: daemon took {} ticks to serve Fresh after restart",
        out.ticks_to_fresh
    );
    assert!(
        out.recovery_latency_p99 <= RECOVERY_TO_FRESH_BOUND,
        "seed {seed:#x}: recovery-latency p99 {} ticks over bound",
        out.recovery_latency_p99
    );
    assert_eq!(
        out.missed_ticks, out.downtime_ticks,
        "seed {seed:#x}: the crash window misses exactly its deadlines"
    );
    assert!(
        out.resyncs >= 1,
        "seed {seed:#x}: restart counts a recovery"
    );
}

// --- scenario 2: torn journal ---

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TornOutcome {
    cut_count: u64,
    warm_restores: u64,
    cold_restores: u64,
    truncated_records: u64,
    bound_violations: u64,
    exact_matches: u64,
    full_restore_truncated: u64,
}

fn run_torn_journal(seed: u64, cuts: u32) -> TornOutcome {
    let mut host = SimHost::paper_testbed();
    let ids: Vec<CgroupId> = (0..5).map(|i| host.launch(&paper_spec(i))).collect();
    for _ in 0..GROW_STEPS {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
    }
    // Checkpoint the grown state, then shift demand to the other four:
    // c0's view decays tick by tick, so every delta in the tail differs
    // and different cut depths restore different (valid) states.
    host.enable_journal(1 << 20);
    for _ in 0..10 {
        let demands: Vec<_> = ids[1..].iter().map(|id| host.demand(*id, 20)).collect();
        host.step(&demands);
    }
    let bytes = host.journal_bytes().expect("journaling enabled").to_vec();
    let pre: Vec<u32> = ids.iter().map(|id| host.effective_cpu(*id)).collect();

    // Two deterministic tears — mid-header (kills the checkpoint, forces
    // the cold path) and mid-final-record (classic torn tail) — plus
    // seeded arbitrary offsets.
    let mut offsets: Vec<usize> = vec![5, bytes.len() - 7];
    let mut rng = seed | 1;
    for _ in 0..cuts {
        rng = xorshift(rng);
        offsets.push(8 + (rng as usize % (bytes.len() - 8)));
    }

    let mut warm = 0u64;
    let mut cold = 0u64;
    let mut truncated = 0u64;
    let mut violations = 0u64;
    for cut in &offsets {
        let ev = host.restore_from(&bytes[..*cut]);
        truncated += ev.report.truncated_records;
        if ev.outcome.is_some() {
            warm += 1;
        } else {
            cold += 1;
        }
        for id in &ids {
            match host.monitor().namespace(*id) {
                Some(ns) => {
                    let bounds = ns.cpu_bounds();
                    let eff = ns.effective_cpu();
                    if eff < bounds.lower || eff > bounds.upper {
                        violations += 1;
                    }
                }
                None => violations += 1,
            }
        }
    }

    // The intact bytes must reproduce the exact crash-time views.
    let full = host.restore_from(&bytes);
    let exact_matches = ids
        .iter()
        .zip(&pre)
        .filter(|(id, p)| host.effective_cpu(**id) == **p)
        .count() as u64;
    TornOutcome {
        cut_count: offsets.len() as u64,
        warm_restores: warm,
        cold_restores: cold,
        truncated_records: truncated,
        bound_violations: violations,
        exact_matches,
        full_restore_truncated: full.report.truncated_records,
    }
}

fn assert_torn(out: &TornOutcome, seed: u64) {
    assert_eq!(
        out.bound_violations, 0,
        "seed {seed:#x}: a torn restore pushed views outside their bounds"
    );
    assert_eq!(
        out.warm_restores + out.cold_restores,
        out.cut_count,
        "seed {seed:#x}: every truncation must restore, never panic"
    );
    assert!(
        out.warm_restores >= 1,
        "seed {seed:#x}: the torn-tail cut must still salvage the checkpoint"
    );
    assert!(
        out.cold_restores >= 1,
        "seed {seed:#x}: the mid-header cut must force the cold path"
    );
    assert!(
        out.truncated_records >= 1,
        "seed {seed:#x}: campaign tore no frames — nothing was tested"
    );
    assert_eq!(
        out.exact_matches, 5,
        "seed {seed:#x}: intact journal must reproduce the exact crash-time views"
    );
    assert_eq!(out.full_restore_truncated, 0, "seed {seed:#x}");
}

// --- scenario 3: client flood ---

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FloodOutcome {
    flood_clients: u64,
    flood_sheds: u64,
    server_requests_shed: u64,
    reader_cached_ok: u64,
    reader_miss_shed: u64,
    retry_after_ms: u64,
    missed_ticks: u64,
    connections_dropped: u64,
    conns_evicted_slow: u64,
}

fn run_flood(seed: u64, replay: u32, clients: u32) -> (FloodOutcome, u64) {
    let mut host = SimHost::paper_testbed();
    let ids: Vec<CgroupId> = (0..3).map(|i| host.launch(&paper_spec(i))).collect();
    let server = ViewServer::new(host.viewd_host_spec(), 4);
    host.attach_viewd(server.clone());
    for _ in 0..30 {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
    }

    let socket = std::env::temp_dir().join(format!(
        "arv-recovery-{}-{seed:x}-{replay}.sock",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&socket);
    let limits = WireLimits {
        max_connections: clients as usize + 4,
        rate_burst: RATE_BURST,
        rate_refill_per_sec: 0.0,
        retry_after_ms: 5 + seed % 16,
        ..WireLimits::default()
    };
    let wire =
        WireServer::spawn_with_limits(server.clone(), &socket, limits).expect("spawn wire server");

    // Well-behaved reader: spend the burst priming one image, then keep
    // re-reading it while over budget — cached-generation reads are
    // tier-1 traffic and must never be shed.
    let mut reader = WireClient::connect(&socket).expect("reader connect");
    for _ in 0..RATE_BURST {
        let r = reader
            .read(Some(ids[0]), "/proc/cpuinfo")
            .expect("wire up")
            .expect("registered");
        assert!(!r.shed, "within-burst request shed");
    }
    let mut reader_cached_ok = 0u64;
    for _ in 0..8 {
        let r = reader
            .read(Some(ids[0]), "/proc/cpuinfo")
            .expect("wire up")
            .expect("registered");
        if !r.shed && !r.degraded && !r.body.is_empty() {
            reader_cached_ok += 1;
        }
    }
    // Over budget AND a render miss: tier-2, refused with the hint.
    let miss = reader
        .read(Some(ids[0]), "/proc/meminfo")
        .expect("wire up")
        .expect("shed responses still carry a frame");
    let reader_miss_shed = u64::from(miss.shed);
    let retry_after_ms = miss.retry_after_ms;

    // The flood: each greedy client burns its burst on the stats
    // exposition then keeps hammering, while the update timer keeps
    // firing underneath. Per-connection token accounting makes the shed
    // count exact regardless of thread interleaving.
    let flood_sheds: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let path = socket.clone();
                s.spawn(move || {
                    let mut c = WireClient::connect(&path).expect("flood connect");
                    let mut sheds = 0u64;
                    for _ in 0..RATE_BURST + FLOOD_REQUESTS_OVER {
                        let r = c
                            .request(KIND_STATS, None, "")
                            .expect("flood request")
                            .expect("stats always answers");
                        if r.shed {
                            sheds += 1;
                        }
                    }
                    sheds
                })
            })
            .collect();
        for _ in 0..10 {
            let demands = vec![host.demand(ids[0], 20)];
            host.step(&demands);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("flood thread"))
            .sum()
    });
    wire.shutdown();
    let _ = std::fs::remove_file(&socket);

    let m = server.metrics();
    let w = host.watchdog_stats();
    (
        FloodOutcome {
            flood_clients: u64::from(clients),
            flood_sheds,
            server_requests_shed: m.requests_shed,
            reader_cached_ok,
            reader_miss_shed,
            retry_after_ms,
            missed_ticks: w.missed_ticks,
            connections_dropped: m.connections_dropped,
            conns_evicted_slow: m.conns_evicted_slow,
        },
        m.hit_p99_ns,
    )
}

fn assert_flood(out: &FloodOutcome, hit_p99_ns: u64, seed: u64) {
    assert_eq!(
        out.flood_sheds,
        out.flood_clients * u64::from(FLOOD_REQUESTS_OVER),
        "seed {seed:#x}: every over-budget flood request must be shed"
    );
    assert_eq!(
        out.server_requests_shed,
        out.flood_sheds + out.reader_miss_shed,
        "seed {seed:#x}: server-side shed accounting must be exact"
    );
    assert_eq!(
        out.reader_cached_ok, 8,
        "seed {seed:#x}: cached-generation reads were shed under pressure"
    );
    assert_eq!(
        out.reader_miss_shed, 1,
        "seed {seed:#x}: a pressured render miss must be refused"
    );
    assert_eq!(
        out.retry_after_ms,
        5 + seed % 16,
        "seed {seed:#x}: shed responses must carry the server's hint"
    );
    assert_eq!(
        out.missed_ticks, 0,
        "seed {seed:#x}: the flood must never cost the update timer a tick"
    );
    assert_eq!(out.connections_dropped, 0, "seed {seed:#x}");
    assert_eq!(out.conns_evicted_slow, 0, "seed {seed:#x}");
    assert!(
        hit_p99_ns < HIT_P99_BUDGET_NS,
        "seed {seed:#x}: cached-hit p99 {hit_p99_ns} ns blew the \
         {HIT_P99_BUDGET_NS} ns budget under flood"
    );
}

// --- harness ---

fn seed_label(seed: u64) -> String {
    format!("seed_{seed:#x}")
}

/// Run the recovery campaign and produce its report. Panics (on
/// purpose) if any crash-safety or overload invariant, or the
/// same-seed replay check, fails.
pub fn run(scale: f64) -> FigReport {
    let cuts = ((8.0 * scale) as u32).clamp(3, 16);
    let clients = ((6.0 * scale) as u32).clamp(2, 8);

    let mut crashes = Vec::new();
    let mut torn = Vec::new();
    let mut floods = Vec::new();
    let mut flood_p99s = Vec::new();
    for (i, &seed) in SEEDS.iter().enumerate() {
        // Same seed, run twice: a recovery harness is only useful if a
        // failure replays exactly.
        let c = run_crash_restart(seed);
        assert_eq!(c, run_crash_restart(seed), "crash-restart replay diverged");
        assert_crash(&c, seed);
        crashes.push(c);

        let t = run_torn_journal(seed, cuts);
        assert_eq!(
            t,
            run_torn_journal(seed, cuts),
            "torn-journal replay diverged"
        );
        assert_torn(&t, seed);
        torn.push(t);

        let (f, p99) = run_flood(seed, (i * 2) as u32, clients);
        let (f2, p99_replay) = run_flood(seed, (i * 2 + 1) as u32, clients);
        assert_eq!(f, f2, "flood replay diverged");
        assert_flood(&f, p99, seed);
        assert_flood(&f2, p99_replay, seed);
        floods.push(f);
        flood_p99s.push(p99);
    }

    let cols: Vec<String> = SEEDS.iter().map(|s| seed_label(*s)).collect();
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();

    let mut t_crash = Table::new("warm_restart", &cols);
    let pick = |f: &dyn Fn(&CrashOutcome) -> f64| [f(&crashes[0]), f(&crashes[1])];
    t_crash.push(Row::full(
        "downtime_ticks",
        &pick(&|o| o.downtime_ticks as f64),
    ));
    t_crash.push(Row::full(
        "pre_crash_cpus",
        &pick(&|o| o.pre_crash_cpus as f64),
    ));
    t_crash.push(Row::full("floor_cpus", &pick(&|o| o.floor_cpus as f64)));
    t_crash.push(Row::full(
        "post_restart_cpus",
        &pick(&|o| o.post_restart_cpus as f64),
    ));
    t_crash.push(Row::full(
        "restored_plus_reconciled",
        &pick(&|o| o.restored_plus_reconciled as f64),
    ));
    t_crash.push(Row::full(
        "ticks_to_fresh",
        &pick(&|o| o.ticks_to_fresh as f64),
    ));
    t_crash.push(Row::full(
        "recovery_latency_p99_ticks",
        &pick(&|o| o.recovery_latency_p99 as f64),
    ));
    t_crash.push(Row::full(
        "viewd_reconciled",
        &pick(&|o| o.viewd_reconciled as f64),
    ));
    t_crash.push(Row::full("missed_ticks", &pick(&|o| o.missed_ticks as f64)));
    t_crash.push(Row::full("resyncs", &pick(&|o| o.resyncs as f64)));

    let mut t_torn = Table::new("torn_journal", &cols);
    let pick = |f: &dyn Fn(&TornOutcome) -> f64| [f(&torn[0]), f(&torn[1])];
    t_torn.push(Row::full("cuts", &pick(&|o| o.cut_count as f64)));
    t_torn.push(Row::full(
        "warm_restores",
        &pick(&|o| o.warm_restores as f64),
    ));
    t_torn.push(Row::full(
        "cold_restores",
        &pick(&|o| o.cold_restores as f64),
    ));
    t_torn.push(Row::full(
        "truncated_records",
        &pick(&|o| o.truncated_records as f64),
    ));
    t_torn.push(Row::full(
        "bound_violations",
        &pick(&|o| o.bound_violations as f64),
    ));
    t_torn.push(Row::full(
        "exact_matches",
        &pick(&|o| o.exact_matches as f64),
    ));

    let mut t_flood = Table::new("client_flood", &cols);
    let pick = |f: &dyn Fn(&FloodOutcome) -> f64| [f(&floods[0]), f(&floods[1])];
    t_flood.push(Row::full(
        "flood_clients",
        &pick(&|o| o.flood_clients as f64),
    ));
    t_flood.push(Row::full("flood_sheds", &pick(&|o| o.flood_sheds as f64)));
    t_flood.push(Row::full(
        "server_requests_shed",
        &pick(&|o| o.server_requests_shed as f64),
    ));
    t_flood.push(Row::full(
        "reader_cached_ok",
        &pick(&|o| o.reader_cached_ok as f64),
    ));
    t_flood.push(Row::full(
        "retry_after_ms",
        &pick(&|o| o.retry_after_ms as f64),
    ));
    t_flood.push(Row::full("missed_ticks", &pick(&|o| o.missed_ticks as f64)));
    t_flood.push(Row::full(
        "cached_hit_p99_ns",
        &[flood_p99s[0] as f64, flood_p99s[1] as f64],
    ));

    let mut t_det = Table::new("determinism", &["replays_identical"]);
    for scenario in ["warm_restart", "torn_journal", "client_flood"] {
        // Each scenario above already ran twice per seed behind an
        // assert_eq!; reaching this point means every replay matched.
        t_det.push(Row::full(scenario, &[1.0]));
    }

    let mut rep = FigReport::new(
        "recovery",
        "crash-safe warm restart from the view journal + admission-controlled serving under flood",
    );
    rep.tables.push(t_crash);
    rep.tables.push(t_torn);
    rep.tables.push(t_flood);
    rep.tables.push(t_det);
    rep.note(format!(
        "seeds {:#x} and {:#x}; every scenario run twice per seed and asserted bit-identical",
        SEEDS[0], SEEDS[1]
    ));
    rep.note(format!(
        "restart serves the reconciled journal state (never the cold floor), Fresh within \
         {RECOVERY_TO_FRESH_BOUND} ticks of the restart"
    ));
    rep.note(format!(
        "{} arbitrary journal truncations per seed: prefix-consistent restores, zero bound \
         violations, intact bytes replay the exact crash-time views",
        cuts + 2
    ));
    rep.note(format!(
        "{clients} flooding clients: over-budget requests shed with a retry-after hint while \
         cached-hit reads flow (p99 {} / {} ns) and the update timer misses no ticks",
        flood_p99s[0], flood_p99s[1]
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_campaign_passes_and_reports() {
        let rep = run(0.5);
        assert_eq!(rep.tables.len(), 4);
        let crash = &rep.tables[0];
        for col in [seed_label(SEEDS[0]), seed_label(SEEDS[1])] {
            assert_eq!(crash.get("restored_plus_reconciled", &col), Some(5.0));
            assert_eq!(
                crash.get("post_restart_cpus", &col),
                crash.get("pre_crash_cpus", &col)
            );
        }
        let det = &rep.tables[3];
        assert_eq!(det.get("client_flood", "replays_identical"), Some(1.0));
    }

    #[test]
    fn simulation_scenarios_replay_bit_identically() {
        // Pure-simulation scenarios compared once more outside run():
        // guards against accidental global state sneaking into SimHost
        // or the journal encoding.
        assert_eq!(run_crash_restart(7), run_crash_restart(7));
        assert_eq!(run_torn_journal(11, 4), run_torn_journal(11, 4));
    }
}
