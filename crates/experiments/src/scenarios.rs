//! Shared scenario builders for the experiment runners.

use arv_cgroups::{Bytes, CgroupId, CpuSet};
use arv_container::{ContainerSpec, SimHost};
use arv_jvm::{HeapPolicy, JavaProfile, Jvm, JvmConfig, JvmOutcome};
use arv_omp::OmpProfile;
use arv_sim_core::SimDuration;

use crate::driver::Fleet;

/// Scale a Java profile's work for quick runs (≥ 1 s of work retained).
pub fn scale_java(mut profile: JavaProfile, scale: f64) -> JavaProfile {
    assert!(scale > 0.0 && scale <= 1.0);
    profile.total_work = profile
        .total_work
        .mul_f64(scale)
        .max(SimDuration::from_secs(1));
    profile
}

/// Scale an OpenMP profile's region count for quick runs (≥ 2 regions).
pub fn scale_omp(mut profile: OmpProfile, scale: f64) -> OmpProfile {
    assert!(scale > 0.0 && scale <= 1.0);
    profile.regions = ((profile.regions as f64 * scale).round() as u32).max(2);
    profile
}

/// The paper's heap sizing: "heap sizes of Java-based benchmarks were set
/// to 3x of their respective minimum heap sizes" (§5.1).
pub fn paper_heap(profile: &JavaProfile) -> HeapPolicy {
    HeapPolicy::FixedMax(profile.paper_heap_size())
}

/// Per-run statistics of one JVM.
#[derive(Debug, Clone)]
pub struct JvmRunStats {
    /// How the run ended.
    pub outcome: JvmOutcome,
    /// Total execution wall time, seconds.
    pub exec_s: f64,
    /// Total stop-the-world GC wall time, seconds.
    pub gc_s: f64,
    /// Number of minor collections.
    pub minor_gcs: u32,
    /// Number of major collections.
    pub major_gcs: u32,
    /// GC worker count per collection, in order.
    pub gc_thread_trace: Vec<u32>,
}

impl JvmRunStats {
    fn from_jvm(jvm: &Jvm) -> JvmRunStats {
        let m = jvm.metrics();
        JvmRunStats {
            outcome: jvm.outcome(),
            exec_s: m.exec_wall.as_secs_f64(),
            gc_s: m.gc_wall.as_secs_f64(),
            minor_gcs: m.minor_gcs,
            major_gcs: m.major_gcs,
            gc_thread_trace: m.gc_thread_trace.clone(),
        }
    }

    /// Whether the run finished (vs OOM or deadline).
    pub fn completed(&self) -> bool {
        self.outcome == JvmOutcome::Completed
    }
}

/// Mean exec/GC seconds over the runs that completed; `None` if none did.
pub fn mean_completed(stats: &[JvmRunStats]) -> Option<(f64, f64)> {
    let done: Vec<&JvmRunStats> = stats.iter().filter(|s| s.completed()).collect();
    if done.is_empty() {
        return None;
    }
    let n = done.len() as f64;
    Some((
        done.iter().map(|s| s.exec_s).sum::<f64>() / n,
        done.iter().map(|s| s.gc_s).sum::<f64>() / n,
    ))
}

/// Container layout for colocated-JVM scenarios.
#[derive(Debug, Clone, Copy, Default)]
pub struct Layout {
    /// `docker run --cpus` quota per container.
    pub quota_cpus: Option<f64>,
    /// Disjoint cpuset of this many cores per container (Figure 7's JDK 9
    /// setup).
    pub cpuset_cores: Option<u32>,
    /// Hard / soft memory limits per container.
    pub mem_hard: Option<Bytes>,
    /// Soft memory limit per container.
    pub mem_soft: Option<Bytes>,
}

impl Layout {
    fn spec(&self, name: String, host_cpus: u32, index: u32) -> ContainerSpec {
        let mut spec = ContainerSpec::new(name, host_cpus).cpu_shares(1024);
        if let Some(q) = self.quota_cpus {
            spec = spec.cpus(q);
        }
        if let Some(c) = self.cpuset_cores {
            let lo = (index * c) % host_cpus;
            spec = spec.cpuset(CpuSet::range(lo, (lo + c).min(host_cpus)));
        }
        if let Some(h) = self.mem_hard {
            spec = spec.memory(h);
        }
        if let Some(s) = self.mem_soft {
            spec = spec.memory_reservation(s);
        }
        spec
    }
}

/// Launch `n` equal-share containers under `layout` on a fresh paper
/// testbed; returns the host and container ids.
pub fn testbed_with_containers(n: u32, layout: Layout) -> (SimHost, Vec<CgroupId>) {
    let mut host = SimHost::paper_testbed();
    let cpus = host.online_cpus();
    let ids = (0..n)
        .map(|i| host.launch(&layout.spec(format!("c{i}"), cpus, i)))
        .collect();
    (host, ids)
}

/// The workhorse scenario: `n` colocated containers each running the same
/// benchmark under the same JVM configuration. Returns per-JVM stats in
/// container order; a `Running` outcome means the deadline expired (DNF).
pub fn colocated_same_bench(
    n: u32,
    layout: Layout,
    cfg: &JvmConfig,
    profile: &JavaProfile,
) -> Vec<JvmRunStats> {
    let (mut host, ids) = testbed_with_containers(n, layout);
    let mut fleet = Fleet::new();
    let idxs: Vec<usize> = ids
        .iter()
        .map(|id| {
            let jvm = Jvm::launch(&mut host, *id, cfg.clone(), profile.clone());
            fleet.push_jvm(jvm)
        })
        .collect();
    // Generous deadline: enough for order-of-magnitude swap collapapses to
    // finish, short enough that genuine thrash-livelock reports DNF.
    let deadline = profile
        .total_work
        .mul_f64(100.0)
        .max(SimDuration::from_secs(600));
    fleet.run(&mut host, deadline);
    idxs.iter()
        .map(|i| JvmRunStats::from_jvm(fleet.jvm(*i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_workloads::dacapo_profile;

    #[test]
    fn scaling_preserves_minimums() {
        let p = scale_java(dacapo_profile("lusearch"), 0.05);
        assert!(p.total_work >= SimDuration::from_secs(1));
        let o = scale_omp(arv_omp::OmpProfile::test_profile(), 0.01);
        assert!(o.regions >= 2);
    }

    #[test]
    fn layout_builds_disjoint_cpusets() {
        let layout = Layout {
            cpuset_cores: Some(2),
            ..Layout::default()
        };
        let (_, ids) = testbed_with_containers(10, layout);
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn colocated_run_produces_stats() {
        let profile = scale_java(dacapo_profile("lusearch"), 0.1);
        let layout = Layout {
            quota_cpus: Some(10.0),
            ..Layout::default()
        };
        let cfg = JvmConfig::adaptive().with_heap_policy(paper_heap(&profile));
        let stats = colocated_same_bench(2, layout, &cfg, &profile);
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.completed()));
        let (exec, gc) = mean_completed(&stats).unwrap();
        assert!(exec > 0.0 && gc >= 0.0 && gc < exec);
    }
}
