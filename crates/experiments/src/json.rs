//! Minimal JSON tree, pretty printer, and parser.
//!
//! The experiment CLI writes figure reports as JSON and the test suite
//! parses them back; with the offline build ruling out `serde_json`, this
//! module provides the tiny subset needed: a [`Json`] value tree, a
//! two-space pretty printer matching `serde_json::to_string_pretty`'s
//! layout, and a recursive-descent parser for the same grammar.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render as pretty JSON (two-space indent).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // `{}` on f64 prints the shortest string that round-trips.
        if n == n.trunc() && n.abs() < 1e15 {
            let _ = write!(out, "{}", n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structure() {
        let v = Json::Obj(vec![
            ("id".into(), Json::Str("6".into())),
            (
                "rows".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Num(0.7)]),
            ),
            ("empty".into(), Json::Arr(vec![])),
            ("flag".into(), Json::Bool(true)),
        ]);
        let text = v.pretty();
        assert!(text.contains("\"id\": \"6\""));
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = Json::parse(r#"{"s": "a\"b\nc", "n": -1.5e3, "i": 42}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\nc"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(v.get("i").unwrap().as_f64(), Some(42.0));
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut s = String::new();
        write_number(&mut s, 3.0);
        assert_eq!(s, "3");
        let mut s = String::new();
        write_number(&mut s, 0.7);
        assert_eq!(s, "0.7");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn unicode_passes_through() {
        let v = Json::Str("µs — ok".into());
        let back = Json::parse(&v.pretty()).unwrap();
        assert_eq!(back, v);
    }
}
