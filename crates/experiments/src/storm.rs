//! Chaos-storm campaign: storage faults composed with every fleet
//! fault axis, gating the durability degradation ladder end to end.
//!
//! Two scenarios, seeded and replay-checked like [`crate::fleet`]:
//!
//! * **soak** — a raw [`arv_persist::Journal`] over a seeded
//!   [`FaultyStore`] with *every* storage axis armed at once (torn
//!   appends, write errors, a disk-full window, bit rot, a sync-stall
//!   window) while a driver appends views, checkpoints, and
//!   crash-restarts. Invariants: `restore` never panics and never
//!   yields an invalid view (CRC framing swallows corruption), a crash
//!   loses exactly the unsynced tail (the fsync model), and the whole
//!   torture replays bit-identically per seed.
//! * **storm** — the full matrix on live hosts: per-host journal
//!   stores hit disk-full and sync-stall windows (flipping hosts onto
//!   the flagged in-memory fallback and the `DurabilityLost` health
//!   dimension, then healing), the controller pair journals onto
//!   faulty stores of their own (the standby's shadow journal errors
//!   and demands a fresh checkpoint), and the shared lease store goes
//!   out of space — the primary that cannot persist a renewal steps
//!   down *before* its TTL, asserted against ground-truth lease
//!   arithmetic, and never acks above its fenced epoch afterwards.
//!   All of it runs under the existing fleet axes: a partition window,
//!   a lagging host, seeded frame drops, a lease-renewal stall, a
//!   replication-lag window, and a primary crash-restore that rejoins
//!   the deposed controller as a mirror. Post-storm the fleet must
//!   converge back to Fresh with every durability flag clear, and the
//!   durable journals must restore to exactly the live indices.

use std::collections::BTreeMap;

use arv_container::{ContainerSpec, SimHost};
use arv_fleet::{AckDisposition, FleetController, FleetPolicy, Periphery, SharedLease};
use arv_persist::{restore, FaultyStore, Journal, Snapshot, StoreFaults, ViewState};
use arv_sim_core::{FaultConfig, FaultPlan, SimRng};

use crate::report::{FigReport, Row, Table};

/// Campaign seeds (distinct from the fleet and chaos suites).
const SEEDS: [u64; 2] = [0x0057_0213, 0x00D0_7A6E];

/// Derive this run's seeds (same rotation idiom as [`crate::fleet`]).
fn seeds(offset: u64) -> [u64; 2] {
    SEEDS.map(|s| s ^ offset.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Hosts in the storm scenario.
const STORM_HOSTS: u32 = 6;

/// Storm rounds; the fault windows below are laid out inside them.
const STORM_ROUNDS: u32 = 36;

/// Fault-free epilogue rounds: every rung must heal in here.
const HEAL_ROUNDS: u32 = 16;

/// Lease TTL in controller ticks.
const LEASE_TTL: u64 = 3;

/// The lease store's disk-full window `[at, at+len)` in controller
/// ticks: the primary steps down at its first unpersistable renewal,
/// and nobody can take over until the window ends.
const LEASE_FULL: (u64, u64) = (24, 5);

// --- scenario 1: storage soak on a raw journal ---

#[derive(Debug, Clone, PartialEq, Eq)]
struct SoakOutcome {
    ticks: u64,
    appends_ok: u64,
    appends_err: u64,
    torn_appends: u64,
    write_errors: u64,
    no_space_errors: u64,
    rotted_bits: u64,
    sync_stalls: u64,
    crashes: u64,
    restores_truncated: u64,
    invalid_restored_views: u64,
    lost_tail_violations: u64,
}

fn run_soak(seed: u64, ticks: u64) -> SoakOutcome {
    let faults = StoreFaults {
        torn_prob: 0.2,
        write_err_prob: 0.1,
        bit_rot_prob: 0.05,
        full_at: Some((ticks / 3, 5)),
        sync_stall_at: Some((2 * ticks / 3, 5)),
    };
    let mut journal = match Journal::with_store(Box::new(FaultyStore::new(seed, faults))) {
        Ok(j) => j,
        Err(_) => Journal::new(),
    };
    let mut rng = SimRng::seed_from_u64(seed ^ 0x50AC);

    let mut out = SoakOutcome {
        ticks,
        appends_ok: 0,
        appends_err: 0,
        torn_appends: 0,
        write_errors: 0,
        no_space_errors: 0,
        rotted_bits: 0,
        sync_stalls: 0,
        crashes: 0,
        restores_truncated: 0,
        invalid_restored_views: 0,
        lost_tail_violations: 0,
    };
    for tick in 0..ticks {
        journal.set_tick(tick);
        if tick % 8 == 0 {
            let mut snap = Snapshot::at(tick);
            for id in 0..4u32 {
                let mem = rng.range_u64(64, 1024);
                snap.entries.push(ViewState {
                    id,
                    e_cpu: rng.range_u64(1, 16) as u32,
                    e_mem: mem,
                    e_avail: rng.range_u64(0, mem),
                    last_tick: tick,
                });
            }
            match journal.checkpoint(&snap) {
                Ok(()) => out.appends_ok += 1,
                Err(_) => out.appends_err += 1,
            }
        } else {
            let mem = rng.range_u64(64, 1024);
            let state = ViewState {
                id: rng.range_u64(0, 4) as u32,
                e_cpu: rng.range_u64(1, 16) as u32,
                e_mem: mem,
                e_avail: rng.range_u64(0, mem),
                last_tick: tick,
            };
            match journal.append_delta(&state, tick) {
                Ok(()) => out.appends_ok += 1,
                Err(_) => out.appends_err += 1,
            }
            let _ = journal.sync();
        }
        if tick % 16 == 15 {
            // The fsync model under fire: a crash keeps exactly the
            // synced prefix, nothing more.
            let durable = journal.durable_bytes().to_vec();
            journal.crash();
            out.crashes += 1;
            if journal.as_bytes() != durable.as_slice() {
                out.lost_tail_violations += 1;
            }
        }
        // Restore must always succeed on the durable prefix and only
        // ever yield views that satisfy the bound invariant — bit rot
        // and torn tails are cut at the CRC, never replayed.
        let report = restore(journal.durable_bytes());
        out.restores_truncated += u64::from(report.truncated_records > 0);
        if let Some(snap) = &report.snapshot {
            for e in &snap.entries {
                if e.e_avail > e.e_mem || e.e_cpu == 0 {
                    out.invalid_restored_views += 1;
                }
            }
        }
    }
    let stats = journal.store_fault_stats();
    out.torn_appends = stats.torn_appends;
    out.write_errors = stats.write_errors;
    out.no_space_errors = stats.no_space_errors;
    out.rotted_bits = stats.rotted_bits;
    out.sync_stalls = stats.sync_stalls;
    out
}

fn assert_soak(out: &SoakOutcome, seed: u64) {
    assert!(
        out.torn_appends >= 1
            && out.write_errors >= 1
            && out.no_space_errors >= 1
            && out.rotted_bits >= 1
            && out.sync_stalls >= 1,
        "seed {seed:#x}: every storage axis must actually fire: {out:?}"
    );
    assert_eq!(
        out.lost_tail_violations, 0,
        "seed {seed:#x}: a crash must keep exactly the synced prefix"
    );
    assert_eq!(
        out.invalid_restored_views, 0,
        "seed {seed:#x}: corruption must never replay into an invalid view"
    );
    assert!(
        out.appends_ok >= 1 && out.appends_err >= 1,
        "seed {seed:#x}: the soak needs both clean and refused writes"
    );
}

// --- scenario 2: the full chaos matrix ---

#[derive(Debug, Clone, PartialEq, Eq)]
struct StormOutcome {
    hosts: u64,
    bound_violations: u64,
    partition_frames_dropped: u64,
    lag_frames_delayed: u64,
    random_frames_dropped: u64,
    host_io_errors: u64,
    max_degraded_hosts: u64,
    max_fallback_bytes: u64,
    final_degraded_hosts: u64,
    final_hosts_durability_lost: u64,
    primary_journal_degraded_seen: bool,
    standby_journal_degraded_seen: bool,
    primary_io_errors: u64,
    standby_io_errors: u64,
    primary_demotions: u64,
    last_ok_renew_tick: u64,
    step_down_tick: u64,
    promote_tick: u64,
    deposed_not_leader_acks: u64,
    deposed_max_ack_epoch: u64,
    promotions: u64,
    not_leader_rejects: u64,
    periphery_failovers: u64,
    final_epoch: u64,
    final_partitioned: u64,
    final_cpu: u64,
    final_containers: u64,
    rejoined_cpu: u64,
    rejoined_containers: u64,
    truth_cpu: u64,
    truth_containers: u64,
    host_restore_mismatches: u64,
    ctl_restore_matches_live: bool,
}

/// Per-container view map for exact restore-vs-live comparison.
fn view_map(snap: &Snapshot) -> BTreeMap<u32, (u32, u64, u64)> {
    snap.entries
        .iter()
        .map(|e| (e.id, (e.e_cpu, e.e_mem, e.e_avail)))
        .collect()
}

/// Sum of every host's last-observed monitor snapshot.
fn ground_truth(hosts: &[SimHost]) -> (u64, u64) {
    let (mut cpu, mut containers) = (0u64, 0u64);
    for host in hosts {
        let snap = host.monitor().snapshot();
        cpu += snap.entries.iter().map(|e| u64::from(e.e_cpu)).sum::<u64>();
        containers += snap.entries.len() as u64;
    }
    (cpu, containers)
}

/// The storm fleet: each host journals onto its own store — hosts 2-4
/// onto seeded faulty stores whose windows are staggered through the
/// storm, the rest onto clean memory stores as controls.
fn storm_hosts(seed: u64) -> (Vec<SimHost>, Vec<Vec<arv_cgroups::CgroupId>>) {
    let mut hosts = Vec::new();
    let mut ids: Vec<Vec<arv_cgroups::CgroupId>> = Vec::new();
    for h in 0..STORM_HOSTS {
        let mut host = SimHost::paper_testbed();
        ids.push(
            (0..3)
                .map(|i| {
                    host.launch(
                        &ContainerSpec::new(format!("storm-{h}-{i}"), 20)
                            .cpus(10.0)
                            .cpu_shares(1024),
                    )
                })
                .collect(),
        );
        let faults = match h {
            2 => Some(StoreFaults {
                full_at: Some((8, 4)),
                ..StoreFaults::default()
            }),
            3 => Some(StoreFaults {
                sync_stall_at: Some((14, 4)),
                ..StoreFaults::default()
            }),
            4 => Some(StoreFaults {
                full_at: Some((20, 3)),
                ..StoreFaults::default()
            }),
            _ => None,
        };
        match faults {
            Some(f) => host
                .enable_journal_with_store(Box::new(FaultyStore::new(seed ^ u64::from(h), f)), 4),
            None => host.enable_journal(4),
        }
        let mut p = Periphery::new(h);
        for (i, _) in ids[h as usize].iter().enumerate() {
            p.set_tenant(i as u32 + 1, h % 2);
        }
        host.attach_periphery(p);
        hosts.push(host);
    }
    (hosts, ids)
}

/// A frame waiting out the lagging host's delay.
struct Lagged {
    release: u64,
    frame: Vec<u8>,
}

fn run_storm(seed: u64) -> StormOutcome {
    let plan = FaultPlan::new(
        seed,
        FaultConfig {
            partition_at: Some((4, 3)),
            lag_ticks: 2,
            repl_lag_at: Some((16, 3)),
            // Shorter than the TTL: renewals pause but the lease never
            // expires — the stall alone must not cost leadership.
            lease_stall_at: Some((18, 2)),
            // The deposed primary's crash-restore rejoin point.
            primary_crash_at: Some((34, 1)),
            store_full_at: Some(LEASE_FULL),
            ..FaultConfig::quiet()
        },
    );
    let mut rng = SimRng::seed_from_u64(seed ^ 0x5702);
    let (mut hosts, ids) = storm_hosts(seed);
    let online = u64::from(hosts[0].viewd_host_spec().online_cpus);

    // The shared lease lives on a store that runs out of space
    // mid-storm; both controllers journal onto faulty stores too.
    let lease = SharedLease::with_store(Box::new(FaultyStore::new(
        seed ^ 0x1EA5E,
        StoreFaults {
            full_at: Some(LEASE_FULL),
            ..StoreFaults::default()
        },
    )));
    let mut primary = FleetController::new(8, FleetPolicy::default());
    primary.enable_journal_with_store(
        Box::new(FaultyStore::new(
            seed ^ 0x0001,
            StoreFaults {
                full_at: Some((10, 3)),
                ..StoreFaults::default()
            },
        )),
        2,
    );
    primary.attach_lease(lease.clone(), 1, LEASE_TTL);
    primary.enable_replication();
    let mut standby = FleetController::new(8, FleetPolicy::default());
    standby.enable_journal_with_store(
        Box::new(FaultyStore::new(
            seed ^ 0x0002,
            StoreFaults {
                full_at: Some((12, 2)),
                ..StoreFaults::default()
            },
        )),
        2,
    );
    standby.attach_lease(lease.clone(), 2, LEASE_TTL);

    let mut out = StormOutcome {
        hosts: u64::from(STORM_HOSTS),
        bound_violations: 0,
        partition_frames_dropped: 0,
        lag_frames_delayed: 0,
        random_frames_dropped: 0,
        host_io_errors: 0,
        max_degraded_hosts: 0,
        max_fallback_bytes: 0,
        final_degraded_hosts: 0,
        final_hosts_durability_lost: 0,
        primary_journal_degraded_seen: false,
        standby_journal_degraded_seen: false,
        primary_io_errors: 0,
        standby_io_errors: 0,
        primary_demotions: 0,
        last_ok_renew_tick: 0,
        step_down_tick: u64::MAX,
        promote_tick: u64::MAX,
        deposed_not_leader_acks: 0,
        deposed_max_ack_epoch: 0,
        promotions: 0,
        not_leader_rejects: 0,
        periphery_failovers: 0,
        final_epoch: 0,
        final_partitioned: 0,
        final_cpu: 0,
        final_containers: 0,
        rejoined_cpu: 0,
        rejoined_containers: 0,
        truth_cpu: 0,
        truth_containers: 0,
        host_restore_mismatches: 0,
        ctl_restore_matches_live: false,
    };

    let mut on_standby = vec![false; STORM_HOSTS as usize];
    let mut primary_down = false;
    let mut rejoined = false;
    let mut reversed = false;
    let mut lag_queue: Vec<Lagged> = Vec::new();

    let total = STORM_ROUNDS + HEAL_ROUNDS;
    for round in 0..u64::from(total) {
        let healing = round >= u64::from(STORM_ROUNDS);

        // The primary-crash axis doubles as the rejoin: the deposed
        // controller restarts from its durable journal and rejoins as
        // a standby mirror of the new leader.
        if !rejoined && primary_down && plan.primary_crashed(round) {
            out.primary_demotions = primary.metrics().snapshot().demotions;
            out.primary_io_errors = primary.metrics().snapshot().journal_io_errors;
            let bytes = primary
                .journal_durable_bytes()
                .expect("primary journal enabled");
            let policy = primary.policy();
            primary = FleetController::restore_from(&bytes, 8, policy);
            primary.enable_journal(2);
            primary.attach_lease(lease.clone(), 1, LEASE_TTL);
            rejoined = true;
        }

        for (h, host) in hosts.iter_mut().enumerate() {
            let demands: Vec<_> = if healing {
                ids[h].iter().map(|id| host.demand(*id, 20)).collect()
            } else {
                let mut picks = Vec::new();
                for id in &ids[h] {
                    if rng.unit() > 0.4 {
                        picks.push(host.demand(*id, rng.range_u64(4, 20) as u32));
                    }
                }
                picks
            };
            host.step(&demands);

            // Bound invariant on every served view, every round.
            for e in &host.monitor().snapshot().entries {
                if e.e_avail > e.e_mem || e.e_cpu == 0 || u64::from(e.e_cpu) > online {
                    out.bound_violations += 1;
                }
            }

            let frames = host.take_fleet_frames();
            let frames: Vec<Vec<u8>> = if h == 0 && !healing && plan.partitioned(round) {
                out.partition_frames_dropped += frames.len() as u64;
                Vec::new()
            } else if h == 3 && !healing {
                // The drop axis: seeded random frame loss.
                frames
                    .into_iter()
                    .filter(|_| {
                        let keep = rng.unit() > 0.15;
                        if !keep {
                            out.random_frames_dropped += 1;
                        }
                        keep
                    })
                    .collect()
            } else if h == 1 && !healing {
                for frame in frames {
                    out.lag_frames_delayed += 1;
                    lag_queue.push(Lagged {
                        release: round + plan.frame_lag(),
                        frame,
                    });
                }
                Vec::new()
            } else {
                frames
            };
            let mut deliver = frames;
            if h == 1 {
                let due: Vec<Lagged> = if healing {
                    std::mem::take(&mut lag_queue)
                } else {
                    let mut due = Vec::new();
                    lag_queue.retain_mut(|l| {
                        if l.release <= round {
                            due.push(Lagged {
                                release: l.release,
                                frame: std::mem::take(&mut l.frame),
                            });
                            false
                        } else {
                            true
                        }
                    });
                    due
                };
                deliver.extend(due.into_iter().map(|l| l.frame));
            }
            for frame in deliver {
                let target = if on_standby[h] { &standby } else { &primary };
                let Some(resp) = target.handle_frame(&frame) else {
                    continue;
                };
                let Some(arv_fleet::Frame::Ack(ack)) = arv_fleet::decode_frame(&resp) else {
                    continue;
                };
                if !on_standby[h] && primary_down && !rejoined {
                    // Every ack the stepped-down primary still emits
                    // must refuse leadership at its fenced epoch.
                    out.deposed_not_leader_acks += u64::from(ack.not_leader);
                    out.deposed_max_ack_epoch = out.deposed_max_ack_epoch.max(ack.ctl_epoch);
                }
                let disp = host
                    .periphery_mut()
                    .map(|p| p.handle_ack(&ack))
                    .unwrap_or(AckDisposition::Ignored);
                if disp == AckDisposition::NotLeader && !on_standby[h] {
                    on_standby[h] = true;
                    if let Some(p) = host.periphery_mut() {
                        p.on_reconnect();
                    }
                }
            }
        }

        // A renewal stall shorter than the TTL; the deposed primary
        // also backs off the lease rather than re-contend.
        primary.set_lease_stalled(plan.lease_stalled(round) || (primary_down && !rejoined));
        let was_leader = primary.is_leader();
        primary.advance_tick();
        standby.advance_tick();
        let tick = round + 1;
        if was_leader && primary.is_leader() {
            out.last_ok_renew_tick = tick;
        }
        if was_leader && !primary.is_leader() && !primary_down {
            primary_down = true;
            out.step_down_tick = tick;
        }
        if out.promote_tick == u64::MAX && standby.is_leader() {
            out.promote_tick = tick;
        }

        // Replication follows the leader; the lag window queues the
        // primary's stream, and the reversed stream only starts once
        // the deposed primary has rejoined.
        if primary.is_leader() {
            if !plan.repl_lagged(round) {
                for frame in primary.take_repl_frames() {
                    if let Some(resp) = standby.handle_frame(&frame) {
                        if let Some(arv_fleet::Frame::Ack(ack)) = arv_fleet::decode_frame(&resp) {
                            primary.handle_repl_ack(&ack);
                        }
                    }
                }
            }
        } else if standby.is_leader() {
            if !reversed {
                reversed = true;
                standby.enable_replication();
            }
            if rejoined {
                for frame in standby.take_repl_frames() {
                    if let Some(resp) = primary.handle_frame(&frame) {
                        if let Some(arv_fleet::Frame::Ack(ack)) = arv_fleet::decode_frame(&resp) {
                            standby.handle_repl_ack(&ack);
                        }
                    }
                }
            }
        }

        out.primary_journal_degraded_seen |= primary.journal_degraded();
        out.standby_journal_degraded_seen |= standby.journal_degraded();
        let gauge = primary
            .durability_degraded_hosts()
            .max(standby.durability_degraded_hosts());
        out.max_degraded_hosts = out.max_degraded_hosts.max(gauge);
        out.max_fallback_bytes = out
            .max_fallback_bytes
            .max(primary.journal_fallback_bytes())
            .max(standby.journal_fallback_bytes());
    }

    let (truth_cpu, truth_containers) = ground_truth(&hosts);
    out.truth_cpu = truth_cpu;
    out.truth_containers = truth_containers;

    let r = standby.cluster_capacity();
    let m = standby.metrics().snapshot();
    out.host_io_errors = hosts.iter().map(SimHost::journal_io_errors).sum();
    out.final_degraded_hosts = standby.durability_degraded_hosts();
    out.final_hosts_durability_lost = hosts.iter().filter(|h| h.durability_lost()).count() as u64;
    out.standby_io_errors = m.journal_io_errors;
    out.promotions = m.promotions;
    out.not_leader_rejects = m.not_leader_rejects;
    out.periphery_failovers = hosts
        .iter()
        .map(|h| h.periphery().map(|p| p.stats().failovers).unwrap_or(0))
        .sum();
    out.final_epoch = standby.ctl_epoch();
    out.final_partitioned = u64::from(r.partitioned);
    out.final_cpu = r.cpu;
    out.final_containers = r.containers;
    let rejoined_cap = primary.cluster_capacity();
    out.rejoined_cpu = rejoined_cap.cpu;
    out.rejoined_containers = rejoined_cap.containers;

    // Durable journals restore to exactly the live indices.
    for host in &hosts {
        let bytes = host.journal_durable_bytes().expect("journal enabled");
        let restored = restore(&bytes)
            .snapshot
            .map(|s| view_map(&s))
            .unwrap_or_default();
        if restored != view_map(&host.monitor().snapshot()) {
            out.host_restore_mismatches += 1;
        }
    }
    let ctl_bytes = standby
        .journal_durable_bytes()
        .expect("standby journal enabled");
    let restored = FleetController::restore_from(&ctl_bytes, 8, standby.policy());
    let rr = restored.cluster_capacity();
    out.ctl_restore_matches_live = (rr.cpu, rr.mem, rr.avail, rr.containers, rr.hosts)
        == (r.cpu, r.mem, r.avail, r.containers, r.hosts);

    out
}

fn assert_storm(out: &StormOutcome, seed: u64) {
    assert_eq!(
        out.bound_violations, 0,
        "seed {seed:#x}: a served view broke its bound invariant mid-storm"
    );
    assert!(
        out.partition_frames_dropped >= 1
            && out.lag_frames_delayed >= 1
            && out.random_frames_dropped >= 1,
        "seed {seed:#x}: the fleet fault axes never fired: {out:?}"
    );
    assert!(
        out.host_io_errors >= 1 && out.max_degraded_hosts >= 1 && out.max_fallback_bytes >= 1,
        "seed {seed:#x}: no host ever walked the durability ladder: {out:?}"
    );
    assert!(
        out.primary_journal_degraded_seen && out.standby_journal_degraded_seen,
        "seed {seed:#x}: both controllers' journals must degrade mid-storm"
    );
    assert!(
        out.primary_io_errors >= 1 && out.standby_io_errors >= 1,
        "seed {seed:#x}: store errors must surface in controller metrics"
    );
    // Ground-truth lease arithmetic: the holder's last persisted
    // renewal at tick T keeps the lease alive through T + TTL. A
    // primary that cannot persist a renewal must step down strictly
    // before that expiry — never serve on a lease nobody else can
    // read.
    assert!(
        out.step_down_tick != u64::MAX,
        "seed {seed:#x}: the lease-store fault never forced a step-down"
    );
    assert!(
        out.step_down_tick < out.last_ok_renew_tick + LEASE_TTL,
        "seed {seed:#x}: step-down at tick {} is not before the TTL expiry {} of \
         the last persisted renewal",
        out.step_down_tick,
        out.last_ok_renew_tick + LEASE_TTL
    );
    assert!(
        out.primary_demotions >= 1,
        "seed {seed:#x}: the step-down must register as a demotion"
    );
    assert!(
        out.deposed_not_leader_acks >= 1,
        "seed {seed:#x}: the stepped-down primary answered no frames — fencing untested"
    );
    assert!(
        out.deposed_max_ack_epoch <= 1,
        "seed {seed:#x}: a stepped-down primary acked epoch {} — above its fenced epoch 1",
        out.deposed_max_ack_epoch
    );
    assert_eq!(out.promotions, 1, "seed {seed:#x}: exactly one promotion");
    assert!(
        out.promote_tick != u64::MAX
            && out.promote_tick.saturating_sub(out.step_down_tick) <= LEASE_FULL.1 + 1,
        "seed {seed:#x}: promotion at tick {} too long after the step-down at {}",
        out.promote_tick,
        out.step_down_tick
    );
    assert!(
        out.not_leader_rejects >= 1,
        "seed {seed:#x}: pre-promotion frames must be refused, not applied"
    );
    assert_eq!(
        out.periphery_failovers, out.hosts,
        "seed {seed:#x}: every periphery walks to the standby exactly once"
    );
    assert_eq!(
        out.final_epoch, 2,
        "seed {seed:#x}: the standby promotes into epoch 2"
    );
    assert_eq!(
        (out.final_degraded_hosts, out.final_hosts_durability_lost),
        (0, 0),
        "seed {seed:#x}: every durability rung must heal post-storm"
    );
    assert_eq!(out.final_partitioned, 0, "seed {seed:#x}");
    assert_eq!(
        (out.final_cpu, out.final_containers),
        (out.truth_cpu, out.truth_containers),
        "seed {seed:#x}: post-storm rollups must equal per-host ground truth"
    );
    assert_eq!(
        (out.rejoined_cpu, out.rejoined_containers),
        (out.truth_cpu, out.truth_containers),
        "seed {seed:#x}: the crash-restored primary must mirror the new leader"
    );
    assert_eq!(
        out.host_restore_mismatches, 0,
        "seed {seed:#x}: a durable host journal restored to something \
         other than the live index"
    );
    assert!(
        out.ctl_restore_matches_live,
        "seed {seed:#x}: the leader's durable journal restored to a \
         different fleet index"
    );
}

// --- harness ---

fn seed_label(seed: u64) -> String {
    format!("seed_{seed:#x}")
}

/// Run the chaos-storm campaign and produce its report. Panics (on
/// purpose) if any durability-ladder, lease, fencing, convergence, or
/// same-seed-replay invariant fails.
pub fn run(scale: f64) -> FigReport {
    run_seeded(scale, 0)
}

/// [`run`] with this run's seeds rotated by `seed_offset`.
pub fn run_seeded(scale: f64, seed_offset: u64) -> FigReport {
    // The storm's fault windows are laid out on an absolute timeline,
    // so the round count stays fixed; `scale` sizes only the soak.
    let soak_ticks = ((256.0 * scale) as u64).clamp(64, 512);
    let run_seeds = seeds(seed_offset);

    let mut soaks = Vec::new();
    let mut storms = Vec::new();
    for &seed in &run_seeds {
        let s = run_soak(seed, soak_ticks);
        assert_eq!(s, run_soak(seed, soak_ticks), "soak replay diverged");
        assert_soak(&s, seed);
        soaks.push(s);

        let st = run_storm(seed);
        assert_eq!(st, run_storm(seed), "storm replay diverged");
        assert_storm(&st, seed);
        storms.push(st);
    }

    let cols: Vec<String> = run_seeds.iter().map(|s| seed_label(*s)).collect();
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();

    let mut t_soak = Table::new("soak", &cols);
    let pick = |f: &dyn Fn(&SoakOutcome) -> f64| [f(&soaks[0]), f(&soaks[1])];
    t_soak.push(Row::full("ticks", &pick(&|o| o.ticks as f64)));
    t_soak.push(Row::full("appends_ok", &pick(&|o| o.appends_ok as f64)));
    t_soak.push(Row::full("appends_err", &pick(&|o| o.appends_err as f64)));
    t_soak.push(Row::full("torn_appends", &pick(&|o| o.torn_appends as f64)));
    t_soak.push(Row::full("write_errors", &pick(&|o| o.write_errors as f64)));
    t_soak.push(Row::full(
        "no_space_errors",
        &pick(&|o| o.no_space_errors as f64),
    ));
    t_soak.push(Row::full("rotted_bits", &pick(&|o| o.rotted_bits as f64)));
    t_soak.push(Row::full("sync_stalls", &pick(&|o| o.sync_stalls as f64)));
    t_soak.push(Row::full("crashes", &pick(&|o| o.crashes as f64)));
    t_soak.push(Row::full(
        "invalid_restored_views",
        &pick(&|o| o.invalid_restored_views as f64),
    ));
    t_soak.push(Row::full(
        "lost_tail_violations",
        &pick(&|o| o.lost_tail_violations as f64),
    ));

    let mut t_storm = Table::new("storm", &cols);
    let pick = |f: &dyn Fn(&StormOutcome) -> f64| [f(&storms[0]), f(&storms[1])];
    t_storm.push(Row::full(
        "bound_violations",
        &pick(&|o| o.bound_violations as f64),
    ));
    t_storm.push(Row::full(
        "host_io_errors",
        &pick(&|o| o.host_io_errors as f64),
    ));
    t_storm.push(Row::full(
        "max_degraded_hosts",
        &pick(&|o| o.max_degraded_hosts as f64),
    ));
    t_storm.push(Row::full(
        "max_fallback_bytes",
        &pick(&|o| o.max_fallback_bytes as f64),
    ));
    t_storm.push(Row::full(
        "final_degraded_hosts",
        &pick(&|o| o.final_degraded_hosts as f64),
    ));
    t_storm.push(Row::full(
        "step_down_tick",
        &pick(&|o| o.step_down_tick as f64),
    ));
    t_storm.push(Row::full(
        "last_ok_renew_tick",
        &pick(&|o| o.last_ok_renew_tick as f64),
    ));
    t_storm.push(Row::full("promote_tick", &pick(&|o| o.promote_tick as f64)));
    t_storm.push(Row::full(
        "deposed_max_ack_epoch",
        &pick(&|o| o.deposed_max_ack_epoch as f64),
    ));
    t_storm.push(Row::full("final_epoch", &pick(&|o| o.final_epoch as f64)));
    t_storm.push(Row::full(
        "host_restore_mismatches",
        &pick(&|o| o.host_restore_mismatches as f64),
    ));
    t_storm.push(Row::full("final_cpu", &pick(&|o| o.final_cpu as f64)));
    t_storm.push(Row::full("truth_cpu", &pick(&|o| o.truth_cpu as f64)));

    let mut t_det = Table::new("determinism", &["replays_identical"]);
    for scenario in ["soak", "storm"] {
        t_det.push(Row::full(scenario, &[1.0]));
    }

    let mut rep = FigReport::new(
        "storm",
        "chaos-storm matrix: storage faults (torn/error/full/rot/stall) composed with every \
         fleet axis; the durability ladder degrades and heals, a primary that cannot persist \
         its lease steps down before the TTL, and durable journals restore to the live index",
    );
    rep.tables.push(t_soak);
    rep.tables.push(t_storm);
    rep.tables.push(t_det);
    rep.note(format!(
        "seeds {:#x} and {:#x} (offset {seed_offset}); every scenario run twice per seed and \
         asserted bit-identical",
        run_seeds[0], run_seeds[1]
    ));
    rep.note(format!(
        "soak ({soak_ticks} ticks): all five storage axes fired, every crash kept exactly the \
         synced prefix, and no corruption ever replayed into an invalid view"
    ));
    rep.note(format!(
        "storm ({STORM_ROUNDS}+{HEAL_ROUNDS} rounds, {STORM_HOSTS} hosts): disk-full and \
         sync-stall windows flipped hosts to DurabilityLost and healed; the lease-store outage \
         stepped the primary down before its TTL (ground-truth lease arithmetic), the standby \
         promoted into epoch 2, the deposed primary never acked above epoch 1 and rejoined \
         from its durable journal as a mirror; post-storm every journal's restore equals the \
         live index"
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_campaign_passes_and_reports() {
        let rep = run(0.25);
        assert_eq!(rep.tables.len(), 3);
        for col in [seed_label(SEEDS[0]), seed_label(SEEDS[1])] {
            assert_eq!(rep.tables[0].get("invalid_restored_views", &col), Some(0.0));
            assert_eq!(rep.tables[0].get("lost_tail_violations", &col), Some(0.0));
            assert_eq!(rep.tables[1].get("bound_violations", &col), Some(0.0));
            assert_eq!(rep.tables[1].get("final_degraded_hosts", &col), Some(0.0));
            assert_eq!(
                rep.tables[1].get("host_restore_mismatches", &col),
                Some(0.0)
            );
            assert_eq!(rep.tables[1].get("final_epoch", &col), Some(2.0));
            assert_eq!(
                rep.tables[1].get("final_cpu", &col),
                rep.tables[1].get("truth_cpu", &col)
            );
        }
        assert_eq!(rep.tables[2].get("storm", "replays_identical"), Some(1.0));
    }

    #[test]
    fn storm_scenario_replays_bit_identically() {
        assert_eq!(run_storm(11), run_storm(11));
    }

    #[test]
    fn step_down_is_before_ttl_expiry() {
        let out = run_storm(SEEDS[0]);
        assert!(out.step_down_tick < out.last_ok_renew_tick + LEASE_TTL);
        assert!(out.deposed_max_ack_epoch <= 1);
    }
}
