//! Deterministic chaos harness for the fault-tolerant view pipeline.
//!
//! Every fault-handling claim the robustness work makes is asserted
//! here, under seeded fault injection ([`arv_sim_core::FaultPlan`]) so a
//! failing run replays bit-for-bit:
//!
//! * **monitor stall** — the update timer fires but the monitor does no
//!   work. Views must never leave their Algorithm 1 bounds, degraded
//!   serving must engage within the staleness budget and answer with the
//!   conservative lower bound, and after recovery the stalled host must
//!   reconverge to a fault-free twin within a bounded number of ticks.
//! * **event-stream chaos** — cgroup events dropped, duplicated and
//!   reordered in transit. The watchdog must detect the sequence gaps
//!   and the resync must leave the monitor's namespace set exactly
//!   matching the live container set, with every view inside its bounds.
//! * **publish delay** — the monitor runs but stops publishing to
//!   `arv-viewd`. The daemon's health must walk Fresh → Stale → Degraded
//!   on the staleness budget, serve the fallback while degraded, and
//!   snap back to Fresh on the first publish.
//! * **wire chaos** — corrupted and truncated frames (length prefix
//!   included) hit the daemon's socket, then the daemon is killed and
//!   restarted mid-stream. The server must reject hostile frames without
//!   dropping other clients; [`arv_viewd::RobustWireClient`] must serve
//!   its last-good answer (flagged degraded) during the outage and
//!   reconnect on its own once the socket returns.
//!
//! Each scenario runs under two seeds, and twice per seed: the replays
//! must produce identical counters, which is what makes the harness a
//! debugging tool rather than a dice roll.

use arv_cgroups::{Bytes, CgroupId};
use arv_container::{ContainerSpec, SimHost};
use arv_resview::{
    CpuBounds, EffectiveCpuConfig, EffectiveMemory, EffectiveMemoryConfig, StalenessPolicy,
    Sysconf, ViewHealth,
};
use arv_sim_core::{FaultConfig, FaultPlan};
use arv_viewd::{HostSpec, RetryPolicy, RobustWireClient, ViewServer, WireServer, KIND_READ};

use crate::report::{FigReport, Row, Table};

/// The two campaign seeds. Both must satisfy every invariant; together
/// with the per-seed replay they demonstrate the harness is seeded, not
/// lucky.
const SEEDS: [u64; 2] = [0xA11CE, 0x5EED5];

/// Tick at which the injected monitor stall begins.
const STALL_START: u64 = 10;
/// Length of the injected stall, in update-timer ticks. Longer than the
/// default staleness budget so degraded serving must engage.
const STALL_TICKS: u64 = 6;
/// Ticks allowed for the stalled host to reconverge to the fault-free
/// twin after the stall lifts.
const RECONVERGE_BOUND: u64 = 15;

fn churn_spec(tag: impl std::fmt::Display) -> ContainerSpec {
    ContainerSpec::new(format!("churn-{tag}"), 20)
        .cpus(8.0)
        .cpu_shares(1024)
}

fn paper_spec(tag: impl std::fmt::Display) -> ContainerSpec {
    ContainerSpec::new(format!("chaos-{tag}"), 20)
        .cpus(10.0)
        .cpu_shares(1024)
}

// --- scenario 1: monitor stall ---

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StallOutcome {
    missed_ticks: u64,
    resyncs: u64,
    degraded_serves: u64,
    bound_violations: u64,
    reconverge_ticks: u64,
    final_cpus: u64,
}

fn run_monitor_stall(seed: u64) -> StallOutcome {
    let mut faulty = SimHost::paper_testbed();
    let mut twin = SimHost::paper_testbed();
    let specs: Vec<ContainerSpec> = (0..5).map(paper_spec).collect();
    let ids: Vec<CgroupId> = specs.iter().map(|s| faulty.launch(s)).collect();
    let tids: Vec<CgroupId> = specs.iter().map(|s| twin.launch(s)).collect();
    faulty.set_fault_plan(FaultPlan::new(
        seed,
        FaultConfig {
            stall_at: Some((STALL_START, STALL_TICKS)),
            ..FaultConfig::quiet()
        },
    ));

    let policy = StalenessPolicy::default();
    let stall_end = STALL_START + STALL_TICKS;
    let mut degraded_serves = 0u64;
    let mut bound_violations = 0u64;
    let mut converged_after: Option<u64> = None;

    for step in 0..stall_end + RECONVERGE_BOUND {
        // All five busy until the stall begins, then only c0 runs — the
        // twin's view climbs toward the 10-core quota while the stalled
        // host's views are frozen.
        let (demands, twin_demands) = if step < STALL_START {
            (
                ids.iter()
                    .map(|id| faulty.demand(*id, 20))
                    .collect::<Vec<_>>(),
                tids.iter()
                    .map(|id| twin.demand(*id, 20))
                    .collect::<Vec<_>>(),
            )
        } else {
            (
                vec![faulty.demand(ids[0], 20)],
                vec![twin.demand(tids[0], 20)],
            )
        };
        faulty.step(&demands);
        twin.step(&twin_demands);

        let sysfs = faulty.sysfs_with_policy(policy);
        for id in &ids {
            let ns = faulty.monitor().namespace(*id).expect("namespace exists");
            let bounds = ns.cpu_bounds();
            let eff = ns.effective_cpu();
            // The core invariant: faults freeze views, they never push
            // them outside Algorithm 1's envelope.
            if eff < bounds.lower || eff > bounds.upper {
                bound_violations += 1;
            }
            if sysfs.health(Some(*id)).is_degraded() {
                degraded_serves += 1;
                // Degraded answers fall back to the guaranteed lower
                // bound, never an optimistic stale value.
                if sysfs.sysconf(Some(*id), Sysconf::NprocessorsOnln) != u64::from(bounds.lower) {
                    bound_violations += 1;
                }
            }
        }
        if step >= stall_end
            && converged_after.is_none()
            && faulty.effective_cpu(ids[0]) == twin.effective_cpu(tids[0])
        {
            converged_after = Some(step + 1 - stall_end);
        }
    }

    let w = faulty.watchdog_stats();
    StallOutcome {
        missed_ticks: w.missed_ticks,
        resyncs: w.resyncs,
        degraded_serves,
        bound_violations,
        reconverge_ticks: converged_after.unwrap_or(u64::MAX),
        final_cpus: u64::from(faulty.effective_cpu(ids[0])),
    }
}

fn assert_stall(out: &StallOutcome, seed: u64) {
    assert_eq!(
        out.bound_violations, 0,
        "seed {seed:#x}: views left their bounds during the stall"
    );
    assert_eq!(out.missed_ticks, STALL_TICKS, "seed {seed:#x}");
    assert!(
        out.degraded_serves > 0,
        "seed {seed:#x}: a {STALL_TICKS}-tick stall must outlive the staleness budget"
    );
    assert!(
        out.resyncs >= 1,
        "seed {seed:#x}: stall must force a resync"
    );
    assert!(
        out.reconverge_ticks <= RECONVERGE_BOUND,
        "seed {seed:#x}: no reconvergence within {RECONVERGE_BOUND} ticks"
    );
}

// --- scenario 2: event-stream chaos ---

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EventChaosOutcome {
    injected_drops: u64,
    injected_dups: u64,
    injected_reorders: u64,
    gaps_detected: u64,
    duplicates_ignored: u64,
    resyncs: u64,
    live_containers: u64,
    namespaces: u64,
    missing_namespaces: u64,
    bound_violations: u64,
}

fn run_event_chaos(seed: u64, rounds: u32) -> EventChaosOutcome {
    let mut host = SimHost::paper_testbed();
    host.set_fault_plan(FaultPlan::new(
        seed,
        FaultConfig {
            drop_prob: 0.4,
            dup_prob: 0.25,
            reorder_prob: 0.25,
            ..FaultConfig::quiet()
        },
    ));

    // Churn containers through a lossy event stream: every launch and
    // terminate emits events the plan may drop, duplicate or reorder.
    let mut live: Vec<CgroupId> = Vec::new();
    for round in 0..rounds {
        live.push(host.launch(&churn_spec(round)));
        if live.len() > 4 {
            let victim = live.remove(0);
            host.terminate(victim);
        }
        for _ in 0..2 {
            let demands: Vec<_> = live.iter().map(|id| host.demand(*id, 8)).collect();
            host.step(&demands);
        }
    }

    let fstats = host.take_fault_plan().expect("plan installed").stats();
    // One clean launch surfaces any trailing loss as a sequence gap; the
    // resync it forces reconciles straight from the cgroup hierarchy.
    live.push(host.launch(&churn_spec("clean")));
    for _ in 0..3 {
        let demands: Vec<_> = live.iter().map(|id| host.demand(*id, 8)).collect();
        host.step(&demands);
    }

    let w = host.watchdog_stats();
    let mut missing = 0u64;
    let mut bound_violations = 0u64;
    for id in &live {
        match host.monitor().namespace(*id) {
            Some(ns) => {
                let bounds = ns.cpu_bounds();
                let eff = ns.effective_cpu();
                if eff < bounds.lower || eff > bounds.upper {
                    bound_violations += 1;
                }
            }
            None => missing += 1,
        }
    }
    EventChaosOutcome {
        injected_drops: fstats.dropped,
        injected_dups: fstats.duplicated,
        injected_reorders: fstats.reordered,
        gaps_detected: w.gaps_detected,
        duplicates_ignored: w.duplicates,
        resyncs: w.resyncs,
        live_containers: live.len() as u64,
        namespaces: host.monitor().len() as u64,
        missing_namespaces: missing,
        bound_violations,
    }
}

fn assert_event_chaos(out: &EventChaosOutcome, seed: u64) {
    assert!(
        out.injected_drops > 0,
        "seed {seed:#x}: campaign injected no drops — nothing was tested"
    );
    assert!(
        out.gaps_detected >= 1 && out.resyncs >= 1,
        "seed {seed:#x}: lost events went undetected"
    );
    assert_eq!(
        out.missing_namespaces, 0,
        "seed {seed:#x}: resync left live containers without namespaces"
    );
    assert_eq!(
        out.namespaces, out.live_containers,
        "seed {seed:#x}: monitor tracks a different set than the hierarchy"
    );
    assert_eq!(out.bound_violations, 0, "seed {seed:#x}");
}

// --- scenario 3: publish delay ---

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PublishDelayOutcome {
    staleness_budget: u64,
    delay_ticks: u64,
    ticks_to_stale: u64,
    ticks_to_degraded: u64,
    live_cpus: u64,
    fallback_cpus: u64,
    degraded_cpus: u64,
    ticks_to_recover: u64,
    recovered_cpus: u64,
}

fn run_publish_delay(seed: u64) -> PublishDelayOutcome {
    let policy = StalenessPolicy::default();
    let mut host = SimHost::paper_testbed();
    let ids: Vec<CgroupId> = (0..3).map(|i| host.launch(&paper_spec(i))).collect();
    host.attach_viewd(ViewServer::with_policy(host.viewd_host_spec(), 4, policy));

    // Only c0 runs: its live view climbs to the 10-core quota while the
    // conservative fallback stays at the all-busy fair share.
    for _ in 0..12 {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
    }
    let client = host.viewd().expect("viewd attached").client();
    assert!(client.health(Some(ids[0])).is_fresh());
    let live_cpus = client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln);
    let fallback_cpus = u64::from(
        host.monitor()
            .namespace(ids[0])
            .expect("namespace exists")
            .cpu_bounds()
            .lower,
    );

    // Seed-flavoured outage length, always past the budget.
    let delay = policy.budget + 2 + seed % 3;
    host.inject_publish_delay(delay);
    let mut ticks_to_stale = 0u64;
    let mut ticks_to_degraded = 0u64;
    let mut degraded_cpus = 0u64;
    for tick in 1..=delay {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
        match client.health(Some(ids[0])) {
            ViewHealth::Stale { .. } => {
                if ticks_to_stale == 0 {
                    ticks_to_stale = tick;
                }
            }
            ViewHealth::Degraded { .. } => {
                if ticks_to_degraded == 0 {
                    ticks_to_degraded = tick;
                }
                degraded_cpus = client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln);
            }
            ViewHealth::Fresh => {}
        }
    }

    let mut ticks_to_recover = 0u64;
    for tick in 1..=4u64 {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
        if client.health(Some(ids[0])).is_fresh() {
            ticks_to_recover = tick;
            break;
        }
    }
    PublishDelayOutcome {
        staleness_budget: policy.budget,
        delay_ticks: delay,
        ticks_to_stale,
        ticks_to_degraded,
        live_cpus,
        fallback_cpus,
        degraded_cpus,
        ticks_to_recover,
        recovered_cpus: client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln),
    }
}

fn assert_publish_delay(out: &PublishDelayOutcome, seed: u64) {
    assert!(
        out.live_cpus > out.fallback_cpus,
        "seed {seed:#x}: scenario must distinguish live view from fallback"
    );
    assert!(out.ticks_to_stale > 0, "seed {seed:#x}: never went stale");
    assert_eq!(
        out.ticks_to_degraded,
        out.staleness_budget + 1,
        "seed {seed:#x}: degraded serving must engage right after the budget"
    );
    assert_eq!(
        out.degraded_cpus, out.fallback_cpus,
        "seed {seed:#x}: degraded answer is not the conservative fallback"
    );
    assert_eq!(
        out.ticks_to_recover, 1,
        "seed {seed:#x}: first publish after the outage must restore Fresh"
    );
    assert_eq!(out.recovered_cpus, out.live_cpus, "seed {seed:#x}");
}

// --- scenario 4: wire chaos ---

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WireChaosOutcome {
    frames_corrupted: u64,
    frames_truncated: u64,
    frames_rejected: u64,
    decode_errors: u64,
    successes: u64,
    failures: u64,
    retries: u64,
    reconnects: u64,
    fallback_serves: u64,
    downtime_degraded: bool,
    post_restart_live: bool,
}

/// Hostile raw frames sent at the daemon per campaign.
const HOSTILE_FRAMES: u32 = 12;

fn run_wire_chaos(seed: u64, replay: u32) -> WireChaosOutcome {
    use std::io::{Read as _, Write as _};

    let socket = std::env::temp_dir().join(format!(
        "arv-chaos-{}-{seed:x}-{replay}.sock",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&socket);

    let view = ViewServer::new(HostSpec::paper_testbed(), 4);
    view.register(
        CgroupId(1),
        CpuBounds { lower: 2, upper: 8 },
        EffectiveCpuConfig::default(),
        EffectiveMemory::new(
            Bytes::from_mib(512),
            Bytes::from_mib(1024),
            Bytes::from_mib(1280),
            Bytes::from_mib(2560),
            EffectiveMemoryConfig::default(),
        ),
    );
    view.mirror(CgroupId(1), 6, Bytes::from_mib(1536), Bytes::from_mib(768));
    let wire = WireServer::spawn(view.clone(), &socket).expect("spawn wire server");

    let retry = RetryPolicy {
        jitter_seed: seed,
        ..RetryPolicy::fast_test()
    };
    let mut client = RobustWireClient::new(&socket, retry);
    // Baseline requests prime the client's last-good cache.
    for _ in 0..3 {
        let resp = client
            .read(Some(CgroupId(1)), "/proc/cpuinfo")
            .expect("wire up")
            .expect("registered");
        assert!(!resp.degraded);
    }

    // Hostile peers: seeded corruption/truncation of whole frames,
    // length prefix included. Each frame uses its own connection and is
    // drained to EOF so every server-side reject lands before the next
    // frame — that serialization is what keeps the counters replayable.
    let mut plan = FaultPlan::new(
        seed,
        FaultConfig {
            corrupt_prob: 0.8,
            truncate_prob: 0.4,
            ..FaultConfig::quiet()
        },
    );
    for i in 0..HOSTILE_FRAMES {
        let key = if i % 2 == 0 {
            "/proc/cpuinfo"
        } else {
            "/proc/stat"
        };
        let mut payload = vec![KIND_READ];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(key.as_bytes());
        let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&payload);
        plan.mangle_frame(&mut frame);

        let mut s = std::os::unix::net::UnixStream::connect(&socket).expect("connect");
        s.set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .expect("set timeout");
        let _ = s.write_all(&frame);
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink);
    }

    // The daemon is still serving well-behaved clients.
    let resp = client
        .read(Some(CgroupId(1)), "/proc/cpuinfo")
        .expect("daemon survived hostile frames")
        .expect("registered");
    assert!(!resp.degraded);
    let metrics = view.metrics();

    // Kill the daemon mid-stream: the client degrades to last-good…
    wire.shutdown();
    let during = client
        .read(Some(CgroupId(1)), "/proc/cpuinfo")
        .expect("last-good fallback available")
        .expect("cached");
    let downtime_degraded = during.degraded;

    // …and reconnects on its own once a new daemon binds the socket.
    let wire2 = WireServer::spawn(view, &socket).expect("respawn wire server");
    let after = client
        .read(Some(CgroupId(1)), "/proc/cpuinfo")
        .expect("reconnected")
        .expect("registered");
    let post_restart_live = !after.degraded;

    let stats = client.stats();
    let fstats = plan.stats();
    wire2.shutdown();
    let _ = std::fs::remove_file(&socket);
    WireChaosOutcome {
        frames_corrupted: fstats.corrupted,
        frames_truncated: fstats.truncated,
        frames_rejected: metrics.wire_rejected,
        decode_errors: metrics.wire_errors,
        successes: stats.successes,
        failures: stats.failures,
        retries: stats.retries,
        reconnects: stats.reconnects,
        fallback_serves: stats.fallback_serves,
        downtime_degraded,
        post_restart_live,
    }
}

fn assert_wire_chaos(out: &WireChaosOutcome, seed: u64) {
    assert!(
        out.frames_corrupted + out.frames_truncated > 0,
        "seed {seed:#x}: campaign mangled no frames"
    );
    assert!(
        out.frames_rejected + out.decode_errors > 0,
        "seed {seed:#x}: server noticed none of the hostile frames"
    );
    assert!(
        out.downtime_degraded,
        "seed {seed:#x}: downtime answer must be flagged degraded"
    );
    assert!(
        out.post_restart_live,
        "seed {seed:#x}: first answer after restart must be live"
    );
    assert!(out.reconnects >= 1, "seed {seed:#x}");
    assert!(out.retries >= 1, "seed {seed:#x}");
    assert_eq!(
        out.failures, 1,
        "seed {seed:#x}: only the outage request fails"
    );
    assert_eq!(out.fallback_serves, 1, "seed {seed:#x}");
}

// --- harness ---

fn seed_label(seed: u64) -> String {
    format!("seed_{seed:#x}")
}

fn b2f(flag: bool) -> f64 {
    if flag {
        1.0
    } else {
        0.0
    }
}

/// Run the chaos campaign and produce its report. Panics (on purpose)
/// if any fault-tolerance invariant or the same-seed replay check fails.
pub fn run(scale: f64) -> FigReport {
    let churn_rounds = ((12.0 * scale) as u32).clamp(6, 48);

    let mut stall = Vec::new();
    let mut events = Vec::new();
    let mut delay = Vec::new();
    let mut wires = Vec::new();
    for (i, &seed) in SEEDS.iter().enumerate() {
        // Same seed, run twice: a chaos harness is only useful if a
        // failure replays exactly.
        let s = run_monitor_stall(seed);
        assert_eq!(s, run_monitor_stall(seed), "stall replay diverged");
        assert_stall(&s, seed);
        stall.push(s);

        let e = run_event_chaos(seed, churn_rounds);
        assert_eq!(
            e,
            run_event_chaos(seed, churn_rounds),
            "event-chaos replay diverged"
        );
        assert_event_chaos(&e, seed);
        events.push(e);

        let d = run_publish_delay(seed);
        assert_eq!(d, run_publish_delay(seed), "publish-delay replay diverged");
        assert_publish_delay(&d, seed);
        delay.push(d);

        let w = run_wire_chaos(seed, (i * 2) as u32);
        assert_eq!(
            w,
            run_wire_chaos(seed, (i * 2 + 1) as u32),
            "wire-chaos replay diverged"
        );
        assert_wire_chaos(&w, seed);
        wires.push(w);
    }

    let cols: Vec<String> = SEEDS.iter().map(|s| seed_label(*s)).collect();
    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();

    let mut t_stall = Table::new("monitor_stall", &cols);
    let pick = |f: &dyn Fn(&StallOutcome) -> f64| [f(&stall[0]), f(&stall[1])];
    t_stall.push(Row::full("missed_ticks", &pick(&|o| o.missed_ticks as f64)));
    t_stall.push(Row::full("resyncs", &pick(&|o| o.resyncs as f64)));
    t_stall.push(Row::full(
        "degraded_serves",
        &pick(&|o| o.degraded_serves as f64),
    ));
    t_stall.push(Row::full(
        "bound_violations",
        &pick(&|o| o.bound_violations as f64),
    ));
    t_stall.push(Row::full(
        "reconverge_ticks",
        &pick(&|o| o.reconverge_ticks as f64),
    ));
    t_stall.push(Row::full("final_cpus", &pick(&|o| o.final_cpus as f64)));

    let mut t_events = Table::new("event_stream_chaos", &cols);
    let pick = |f: &dyn Fn(&EventChaosOutcome) -> f64| [f(&events[0]), f(&events[1])];
    t_events.push(Row::full(
        "injected_drops",
        &pick(&|o| o.injected_drops as f64),
    ));
    t_events.push(Row::full(
        "injected_dups",
        &pick(&|o| o.injected_dups as f64),
    ));
    t_events.push(Row::full(
        "injected_reorders",
        &pick(&|o| o.injected_reorders as f64),
    ));
    t_events.push(Row::full(
        "gaps_detected",
        &pick(&|o| o.gaps_detected as f64),
    ));
    t_events.push(Row::full(
        "duplicates_ignored",
        &pick(&|o| o.duplicates_ignored as f64),
    ));
    t_events.push(Row::full("resyncs", &pick(&|o| o.resyncs as f64)));
    t_events.push(Row::full(
        "live_containers",
        &pick(&|o| o.live_containers as f64),
    ));
    t_events.push(Row::full("namespaces", &pick(&|o| o.namespaces as f64)));
    t_events.push(Row::full(
        "missing_namespaces",
        &pick(&|o| o.missing_namespaces as f64),
    ));
    t_events.push(Row::full(
        "bound_violations",
        &pick(&|o| o.bound_violations as f64),
    ));

    let mut t_delay = Table::new("publish_delay", &cols);
    let pick = |f: &dyn Fn(&PublishDelayOutcome) -> f64| [f(&delay[0]), f(&delay[1])];
    t_delay.push(Row::full(
        "staleness_budget",
        &pick(&|o| o.staleness_budget as f64),
    ));
    t_delay.push(Row::full("delay_ticks", &pick(&|o| o.delay_ticks as f64)));
    t_delay.push(Row::full(
        "ticks_to_stale",
        &pick(&|o| o.ticks_to_stale as f64),
    ));
    t_delay.push(Row::full(
        "ticks_to_degraded",
        &pick(&|o| o.ticks_to_degraded as f64),
    ));
    t_delay.push(Row::full("live_cpus", &pick(&|o| o.live_cpus as f64)));
    t_delay.push(Row::full(
        "fallback_cpus",
        &pick(&|o| o.fallback_cpus as f64),
    ));
    t_delay.push(Row::full(
        "degraded_cpus",
        &pick(&|o| o.degraded_cpus as f64),
    ));
    t_delay.push(Row::full(
        "ticks_to_recover",
        &pick(&|o| o.ticks_to_recover as f64),
    ));
    t_delay.push(Row::full(
        "recovered_cpus",
        &pick(&|o| o.recovered_cpus as f64),
    ));

    let mut t_wire = Table::new("wire_chaos", &cols);
    let pick = |f: &dyn Fn(&WireChaosOutcome) -> f64| [f(&wires[0]), f(&wires[1])];
    t_wire.push(Row::full(
        "frames_corrupted",
        &pick(&|o| o.frames_corrupted as f64),
    ));
    t_wire.push(Row::full(
        "frames_truncated",
        &pick(&|o| o.frames_truncated as f64),
    ));
    t_wire.push(Row::full(
        "frames_rejected",
        &pick(&|o| o.frames_rejected as f64),
    ));
    t_wire.push(Row::full(
        "decode_errors",
        &pick(&|o| o.decode_errors as f64),
    ));
    t_wire.push(Row::full("successes", &pick(&|o| o.successes as f64)));
    t_wire.push(Row::full("failures", &pick(&|o| o.failures as f64)));
    t_wire.push(Row::full("retries", &pick(&|o| o.retries as f64)));
    t_wire.push(Row::full("reconnects", &pick(&|o| o.reconnects as f64)));
    t_wire.push(Row::full(
        "fallback_serves",
        &pick(&|o| o.fallback_serves as f64),
    ));
    t_wire.push(Row::full(
        "downtime_degraded",
        &pick(&|o| b2f(o.downtime_degraded)),
    ));
    t_wire.push(Row::full(
        "post_restart_live",
        &pick(&|o| b2f(o.post_restart_live)),
    ));

    let mut t_det = Table::new("determinism", &["replays_identical"]);
    for scenario in [
        "monitor_stall",
        "event_stream_chaos",
        "publish_delay",
        "wire_chaos",
    ] {
        // Each scenario above already ran twice per seed behind an
        // assert_eq!; reaching this point means every replay matched.
        t_det.push(Row::full(scenario, &[1.0]));
    }

    let mut rep = FigReport::new(
        "chaos",
        "deterministic fault injection: stalls, event loss, publish delay, wire chaos",
    );
    rep.tables.push(t_stall);
    rep.tables.push(t_events);
    rep.tables.push(t_delay);
    rep.tables.push(t_wire);
    rep.tables.push(t_det);
    rep.note(format!(
        "seeds {:#x} and {:#x}; every scenario run twice per seed and asserted bit-identical",
        SEEDS[0], SEEDS[1]
    ));
    rep.note(format!(
        "invariants held: views inside Algorithm 1 bounds under every fault, degraded serving \
         within the staleness budget, resync after loss, reconvergence <= {RECONVERGE_BOUND} ticks"
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_campaign_passes_and_reports() {
        let rep = run(0.5);
        assert_eq!(rep.tables.len(), 5);
        let stall = &rep.tables[0];
        for col in [seed_label(SEEDS[0]), seed_label(SEEDS[1])] {
            assert_eq!(stall.get("bound_violations", &col), Some(0.0));
            assert!(stall.get("resyncs", &col).unwrap() >= 1.0);
        }
        let det = &rep.tables[4];
        assert_eq!(det.get("wire_chaos", "replays_identical"), Some(1.0));
    }

    #[test]
    fn simulation_scenarios_replay_bit_identically() {
        // Pure-simulation scenarios compared once more outside run():
        // guards against accidental global state sneaking into SimHost.
        assert_eq!(run_monitor_stall(99), run_monitor_stall(99));
        assert_eq!(run_event_chaos(7, 8), run_event_chaos(7, 8));
        assert_eq!(run_publish_delay(3), run_publish_delay(3));
    }
}
