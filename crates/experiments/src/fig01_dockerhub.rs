//! Figure 1: analysis of the top 100 application images on DockerHub —
//! images affected by the semantic gap vs unaffected, per language.

use arv_workloads::dockerhub::{dockerhub_census, language_stats};

use crate::report::{FigReport, Row, Table};

/// Run this study and produce its report.
pub fn run() -> FigReport {
    let census = dockerhub_census();
    let stats = language_stats(&census);

    let mut table = Table::new("dockerhub_top100", &["affected", "unaffected"]);
    for s in &stats {
        table.push(Row::full(
            s.language,
            &[f64::from(s.affected), f64::from(s.unaffected)],
        ));
    }

    let affected: u32 = stats.iter().map(|s| s.affected).sum();
    let total: u32 = stats.iter().map(|s| s.total()).sum();

    let mut rep = FigReport::new(
        "1",
        "Analysis of the top 100 application images on DockerHub",
    );
    rep.tables.push(table);
    rep.note(format!(
        "{affected} of {total} images are potentially affected by the semantic gap \
         (paper: 62 of 100); all Java and PHP images are affected."
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_aggregates() {
        let rep = run();
        let t = &rep.tables[0];
        let affected: f64 = t.rows.iter().map(|r| r.values[0].unwrap()).sum();
        assert_eq!(affected, 62.0);
        assert_eq!(t.get("java", "unaffected"), Some(0.0));
        assert_eq!(t.get("php", "unaffected"), Some(0.0));
        assert_eq!(t.rows.len(), 7);
    }
}
