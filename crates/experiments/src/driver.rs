//! The fleet driver: advances a mixed set of workloads on one host.

use arv_cgroups::{Bytes, CgroupId};
use arv_container::SimHost;
use arv_jvm::Jvm;
use arv_omp::OmpRuntime;
use arv_sim_core::{SimDuration, SimTime};
use arv_workloads::CpuHog;

/// A background memory hog: charges container memory toward a target at
/// a fixed rate and holds it (the "memory-intensive workload in the
/// background" of §2.2's Figure 2(b) experiment).
#[derive(Debug, Clone)]
pub struct MemHog {
    id: CgroupId,
    rate_per_sec: Bytes,
    target: Bytes,
    charged: Bytes,
    stalled: bool,
}

impl MemHog {
    /// A hog charging toward `target` at `rate_per_sec`.
    pub fn new(id: CgroupId, rate_per_sec: Bytes, target: Bytes) -> MemHog {
        assert!(!rate_per_sec.is_zero() && !target.is_zero());
        MemHog {
            id,
            rate_per_sec,
            target,
            charged: Bytes::ZERO,
            stalled: false,
        }
    }

    /// The container (cgroup) this belongs to.
    pub fn id(&self) -> CgroupId {
        self.id
    }

    /// Memory charged so far.
    pub fn charged(&self) -> Bytes {
        self.charged
    }

    fn on_period(&mut self, host: &mut SimHost, period: SimDuration) {
        if self.stalled || self.charged >= self.target {
            return;
        }
        let amount = self
            .rate_per_sec
            .mul_f64(period.as_secs_f64())
            .min(self.target - self.charged);
        if host.charge(self.id, amount).is_ok() {
            self.charged += amount;
        } else {
            // The host refused (would OOM): hold what we have.
            self.stalled = true;
        }
    }
}

/// Any workload the driver can advance.
///
/// The `Jvm` variant is much larger than the others; fleets hold a
/// handful of workloads, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Workload {
    /// A simulated JVM (primary workload).
    Jvm(Jvm),
    /// A simulated OpenMP program (primary workload).
    Omp(OmpRuntime),
    /// Background CPU load: never gates fleet completion.
    Hog(CpuHog),
    /// Background memory load: never gates fleet completion.
    MemHog(MemHog),
}

impl Workload {
    fn id(&self) -> CgroupId {
        match self {
            Workload::Jvm(j) => j.id(),
            Workload::Omp(o) => o.id(),
            Workload::Hog(h) => h.id(),
            Workload::MemHog(m) => m.id(),
        }
    }

    fn runnable(&self, host: &SimHost) -> u32 {
        match self {
            Workload::Jvm(j) => j.runnable(),
            Workload::Omp(o) => o.runnable(host),
            Workload::Hog(h) => h.runnable(),
            Workload::MemHog(m) => u32::from(!m.stalled && m.charged < m.target),
        }
    }

    /// Time until this workload's next internal event (step cap).
    fn horizon(&self, host: &SimHost) -> Option<SimDuration> {
        match self {
            Workload::Jvm(j) => j.horizon(),
            Workload::Omp(o) => o.horizon(host),
            Workload::Hog(h) => h.horizon(),
            Workload::MemHog(_) => None,
        }
    }

    /// Whether this workload gates fleet completion.
    fn is_primary(&self) -> bool {
        matches!(self, Workload::Jvm(_) | Workload::Omp(_))
    }

    fn is_done(&self) -> bool {
        match self {
            Workload::Jvm(j) => !j.is_running(),
            Workload::Omp(o) => !o.is_running(),
            Workload::Hog(h) => !h.is_running(),
            Workload::MemHog(m) => m.stalled || m.charged >= m.target,
        }
    }
}

/// A set of workloads sharing one host.
#[derive(Debug, Default)]
pub struct Fleet {
    workloads: Vec<Workload>,
}

impl Fleet {
    /// An empty fleet.
    pub fn new() -> Fleet {
        Fleet::default()
    }

    /// Add a JVM; returns its index.
    pub fn push_jvm(&mut self, jvm: Jvm) -> usize {
        self.workloads.push(Workload::Jvm(jvm));
        self.workloads.len() - 1
    }

    /// Add an OpenMP runtime; returns its index.
    pub fn push_omp(&mut self, rt: OmpRuntime) -> usize {
        self.workloads.push(Workload::Omp(rt));
        self.workloads.len() - 1
    }

    /// Add a background CPU hog; returns its index.
    pub fn push_hog(&mut self, hog: CpuHog) -> usize {
        self.workloads.push(Workload::Hog(hog));
        self.workloads.len() - 1
    }

    /// Add a background memory hog; returns its index.
    pub fn push_mem_hog(&mut self, hog: MemHog) -> usize {
        self.workloads.push(Workload::MemHog(hog));
        self.workloads.len() - 1
    }

    /// The JVM at `idx`; panics if the workload is not a JVM.
    pub fn jvm(&self, idx: usize) -> &Jvm {
        match &self.workloads[idx] {
            Workload::Jvm(j) => j,
            other => panic!("workload {idx} is not a JVM: {other:?}"),
        }
    }

    /// The OpenMP runtime at `idx`; panics if it is not one.
    pub fn omp(&self, idx: usize) -> &OmpRuntime {
        match &self.workloads[idx] {
            Workload::Omp(o) => o,
            other => panic!("workload {idx} is not an OpenMP runtime: {other:?}"),
        }
    }

    /// All primaries finished?
    pub fn primaries_done(&self) -> bool {
        self.workloads
            .iter()
            .filter(|w| w.is_primary())
            .all(|w| w.is_done())
    }

    /// Advance one step (at most a scheduling period, shorter when a
    /// workload's next event is nearer). Returns the simulated time after.
    pub fn step(&mut self, host: &mut SimHost) -> SimTime {
        let demands: Vec<_> = self
            .workloads
            .iter()
            .filter(|w| !w.is_done())
            .map(|w| host.demand(w.id(), w.runnable(host).max(1)))
            .collect();
        let cap = self
            .workloads
            .iter()
            .filter(|w| !w.is_done())
            .filter_map(|w| w.horizon(host))
            .min()
            .unwrap_or(SimDuration(u64::MAX));
        let out = host.step_capped(&demands, cap);
        for w in self.workloads.iter_mut() {
            let granted = out.alloc.granted_to(w.id());
            match w {
                Workload::Jvm(j) => j.on_period(host, granted, out.period),
                Workload::Omp(o) => o.on_period(host, granted, out.period),
                Workload::Hog(h) => h.on_period(granted, out.period),
                Workload::MemHog(m) => m.on_period(host, out.period),
            }
        }
        out.now
    }

    /// Run until every primary workload finishes or the simulated
    /// `deadline` passes. Returns `true` on completion, `false` on a
    /// deadline timeout (the paper's "failed to complete" runs).
    pub fn run(&mut self, host: &mut SimHost, deadline: SimDuration) -> bool {
        let start = host.now();
        while !self.primaries_done() {
            let now = self.step(host);
            if now.since(start) >= deadline {
                return self.primaries_done();
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_container::ContainerSpec;
    use arv_jvm::{HeapPolicy, JavaProfile, JvmConfig};
    use arv_omp::{OmpProfile, ThreadStrategy};

    #[test]
    fn mixed_fleet_runs_to_completion() {
        let mut host = SimHost::paper_testbed();
        let a = host.launch(&ContainerSpec::new("jvm", 20));
        let b = host.launch(&ContainerSpec::new("omp", 20));
        let c = host.launch(&ContainerSpec::new("hog", 20));
        let mut fleet = Fleet::new();
        let jvm = Jvm::launch(
            &mut host,
            a,
            JvmConfig::vanilla_jdk8().with_heap_policy(HeapPolicy::FixedMax(Bytes::from_mib(240))),
            JavaProfile::test_profile(),
        );
        let ji = fleet.push_jvm(jvm);
        let oi = fleet.push_omp(OmpRuntime::launch(
            b,
            ThreadStrategy::Static(4),
            OmpProfile::test_profile(),
        ));
        fleet.push_hog(CpuHog::new(c, 4, SimDuration::from_secs(2)));
        assert!(fleet.run(&mut host, SimDuration::from_secs(10_000)));
        assert!(!fleet.jvm(ji).is_running());
        assert!(!fleet.omp(oi).is_running());
    }

    #[test]
    fn deadline_reports_dnf() {
        let mut host = SimHost::paper_testbed();
        let a = host.launch(&ContainerSpec::new("jvm", 20));
        let mut fleet = Fleet::new();
        let mut profile = JavaProfile::test_profile();
        profile.total_work = SimDuration::from_secs(10_000);
        fleet.push_jvm(Jvm::launch(
            &mut host,
            a,
            JvmConfig::vanilla_jdk8().with_heap_policy(HeapPolicy::FixedMax(Bytes::from_mib(240))),
            profile,
        ));
        assert!(!fleet.run(&mut host, SimDuration::from_secs(1)));
    }

    #[test]
    fn mem_hog_charges_to_target_and_holds() {
        let mut host = SimHost::paper_testbed();
        let a = host.launch(&ContainerSpec::new("hog", 20));
        let mut hog = MemHog::new(a, Bytes::from_gib(2), Bytes::from_gib(10));
        for _ in 0..1_000 {
            hog.on_period(&mut host, SimDuration::from_millis(24));
        }
        assert_eq!(hog.charged(), Bytes::from_gib(10));
        assert_eq!(host.memory_usage(a), Bytes::from_gib(10));
    }

    #[test]
    fn hogs_do_not_gate_completion() {
        let mut host = SimHost::paper_testbed();
        let c = host.launch(&ContainerSpec::new("hog", 20));
        let mut fleet = Fleet::new();
        fleet.push_hog(CpuHog::new(c, 4, SimDuration::from_secs(100_000)));
        // No primaries: fleet is immediately "done".
        assert!(fleet.run(&mut host, SimDuration::from_secs(1)));
    }
}
