//! Decision-provenance observability for the view pipeline (`--fig obs`).
//!
//! The pipeline's whole job is to mutate per-container views, so the
//! operator's first question — *why does container X currently see N
//! CPUs?* — must be answerable from the trace alone. This study drives
//! a multi-container scenario that exercises every decision cause the
//! pipeline can emit:
//!
//! * Algorithm 1 growth (`cpu-saturated+slack`) and shrink
//!   (`cpu-shrink-no-slack`) under shifting co-tenant load;
//! * Algorithm 2 growth (`mem-pressure-growth`) from a container
//!   charging past 90% of its view, and the kswapd-driven reset
//!   (`mem-reclaim-reset`) when a hog drives host free memory below
//!   the low watermark;
//! * `static-refresh` from a live `docker update`;
//! * `watchdog-resync` from a limits change applied while the monitor
//!   is stalled, reconciled by the watchdog's forced resync;
//! * `degraded-fallback` from `arv-viewd` answering queries past the
//!   staleness budget.
//!
//! After the scenario it replays the trace ring against checkpoints of
//! the *actual* view trajectory (sampled after every step) and asserts
//! full reconstructibility: every change is chained (each decision's
//! `before` equals the previous decision's `after`), every checkpoint
//! value is reproduced by the replay, no cause is `unknown`, and no
//! event was dropped. Finally it measures the viewd cached-hit query
//! path with tracing enabled vs disabled and panics if the enabled
//! path exceeds a fixed budget — tracing must stay off the hot path.

use std::collections::BTreeMap;
use std::time::Instant;

use arv_cgroups::{Bytes, CgroupId};
use arv_container::{ContainerSpec, SimHost};
use arv_mem::ChargeOutcome;
use arv_resview::{
    CpuBounds, EffectiveCpuConfig, EffectiveMemory, EffectiveMemoryConfig, StalenessPolicy,
};
use arv_sim_core::{FaultConfig, FaultPlan};
use arv_telemetry::{DecisionCause, EventKind, Tracer};
use arv_viewd::{HostSpec, ViewServer};

use crate::report::{FigReport, Row, Table};

/// Trace-ring capacity for the scenario: far above the event volume,
/// so reconstruction sees every event (`dropped_events == 0`).
const RING_CAPACITY: usize = 16_384;

/// Cached-hit overhead budget: with tracing enabled the mean cached-hit
/// query must stay within `ratio * untraced + slack`. The fresh-serving
/// path never touches the ring (degraded provenance is emitted only on
/// the degraded branch), so this bounds pure bookkeeping cost.
const OVERHEAD_BUDGET_RATIO: f64 = 1.75;
/// Absolute slack (ns) keeping the budget meaningful when the untraced
/// baseline is a few tens of nanoseconds.
const OVERHEAD_SLACK_NS: f64 = 250.0;

/// Every decision cause the instrumented pipeline can emit; the
/// scenario must exercise all of them.
const REQUIRED_CAUSES: [&str; 7] = [
    "cpu-saturated+slack",
    "cpu-shrink-no-slack",
    "mem-pressure-growth",
    "mem-reclaim-reset",
    "static-refresh",
    "watchdog-resync",
    "degraded-fallback",
];

/// A tenant with explicit memory limits (soft 1 GiB, hard 4 GiB): the
/// memory phases charge against these.
fn tenant_spec(tag: impl std::fmt::Display) -> ContainerSpec {
    ContainerSpec::new(format!("obs-{tag}"), 20)
        .cpus(10.0)
        .cpu_shares(1024)
        .memory(Bytes::from_mib(4096))
        .memory_reservation(Bytes::from_mib(1024))
}

/// A tenant with no memory limits — one of these doubles as the memory
/// hog that drives host free memory below the watermarks.
fn unlimited_spec(tag: impl std::fmt::Display) -> ContainerSpec {
    ContainerSpec::new(format!("obs-{tag}"), 20)
        .cpus(10.0)
        .cpu_shares(1024)
}

/// Actual view values sampled from the monitor after one step, plus the
/// trace cursor (events emitted so far) at the sampling instant.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Checkpoint {
    cursor: u64,
    views: Vec<(CgroupId, u32, u64)>,
}

fn snap(host: &SimHost, tracer: &Tracer, ids: &[CgroupId]) -> Checkpoint {
    Checkpoint {
        cursor: tracer.emitted(),
        views: ids
            .iter()
            .map(|id| (*id, host.effective_cpu(*id), host.effective_memory(*id).0))
            .collect(),
    }
}

struct Scenario {
    tracer: Tracer,
    ids: Vec<CgroupId>,
    /// View values at each container's launch, keyed by raw cgroup id:
    /// the replay's starting point before its first traced decision.
    baselines: BTreeMap<u32, (u32, u64)>,
    checkpoints: Vec<Checkpoint>,
    degraded_reads: u64,
    prometheus: String,
}

fn charge_ok(host: &mut SimHost, id: CgroupId, mib: u64) {
    let outcome = host.charge(id, Bytes::from_mib(mib));
    assert!(
        matches!(outcome, ChargeOutcome::Charged { .. }),
        "scenario charge of {mib} MiB must succeed, got {outcome:?}"
    );
}

fn run_scenario() -> Scenario {
    let tracer = Tracer::bounded(RING_CAPACITY);
    let mut host = SimHost::paper_testbed();
    host.set_tracer(tracer.clone());
    host.attach_viewd(ViewServer::with_telemetry(
        host.viewd_host_spec(),
        4,
        StalenessPolicy::default(),
        tracer.clone(),
    ));

    let mut ids: Vec<CgroupId> = Vec::new();
    let mut baselines = BTreeMap::new();
    let mut checkpoints = Vec::new();
    let launch = |host: &mut SimHost,
                  baselines: &mut BTreeMap<u32, (u32, u64)>,
                  ids: &mut Vec<CgroupId>,
                  spec: &ContainerSpec| {
        let id = host.launch(spec);
        baselines.insert(id.0, (host.effective_cpu(id), host.effective_memory(id).0));
        ids.push(id);
    };
    for i in 0..3 {
        launch(&mut host, &mut baselines, &mut ids, &tenant_spec(i));
    }
    checkpoints.push(snap(&host, &tracer, &ids));

    let busy = |host: &SimHost, ids: &[CgroupId]| -> Vec<_> {
        ids.iter().map(|id| host.demand(*id, 20)).collect()
    };

    // Phase 1 — contention: all tenants busy, no slack, so Algorithm 1
    // walks every view down toward the fair share (cpu-shrink-no-slack).
    for _ in 0..6 {
        let demands = busy(&host, &ids);
        host.step(&demands);
        checkpoints.push(snap(&host, &tracer, &ids));
    }

    // Phase 2 — solo demand: only c0 runs, the host has slack, and c0's
    // view climbs to its quota (cpu-saturated+slack).
    for _ in 0..8 {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
        checkpoints.push(snap(&host, &tracer, &ids));
    }

    // Phase 3 — publish outage: the monitor keeps updating but stops
    // publishing to viewd; once past the staleness budget every query
    // is answered from the conservative fallback and the serving layer
    // traces the substitution (degraded-fallback).
    let policy = host.viewd().expect("viewd attached").policy();
    let client = host.viewd().expect("viewd attached").client();
    let delay = policy.budget + 3;
    host.inject_publish_delay(delay);
    let mut degraded_reads = 0u64;
    for _ in 0..delay {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
        if client.health(Some(ids[0])).is_degraded() {
            client
                .read(Some(ids[0]), "/proc/cpuinfo")
                .expect("renderable path");
            degraded_reads += 1;
        }
        checkpoints.push(snap(&host, &tracer, &ids));
    }
    for _ in 0..2 {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
        checkpoints.push(snap(&host, &tracer, &ids));
    }

    // Phase 4 — two more tenants arrive and everyone turns busy: c0's
    // grown view shrinks back toward the new, smaller fair share.
    for tag in 3..5 {
        launch(&mut host, &mut baselines, &mut ids, &unlimited_spec(tag));
    }
    checkpoints.push(snap(&host, &tracer, &ids));
    for _ in 0..8 {
        let demands = busy(&host, &ids);
        host.step(&demands);
        checkpoints.push(snap(&host, &tracer, &ids));
    }

    // Phase 5 — memory pressure: c0 charges past 90% of its 1 GiB view
    // while host free memory is plentiful, so Algorithm 2 grows the
    // view by 10% of the headroom each period (mem-pressure-growth).
    for add_mib in [950, 400, 400, 400] {
        charge_ok(&mut host, ids[0], add_mib);
        let demands = busy(&host, &ids);
        host.step(&demands);
        checkpoints.push(snap(&host, &tracer, &ids));
    }

    // Phase 6 — reclaim: an unlimited tenant hogs physical memory until
    // host free drops below the low watermark; Algorithm 2 resets c0's
    // grown view to its soft limit (mem-reclaim-reset).
    let hog = ids[3];
    charge_ok(&mut host, hog, 128_100);
    for _ in 0..2 {
        let demands = busy(&host, &ids);
        host.step(&demands);
        checkpoints.push(snap(&host, &tracer, &ids));
    }
    host.uncharge(hog, Bytes::from_mib(128_100));
    for _ in 0..2 {
        let demands = busy(&host, &ids);
        host.step(&demands);
        checkpoints.push(snap(&host, &tracer, &ids));
    }

    // Phase 7 — live `docker update`: c1's quota drops to 2 CPUs and
    // its soft limit halves, so the clamp moves both views
    // (static-refresh).
    host.update_limits(
        ids[1],
        &ContainerSpec::new("obs-1", 20)
            .cpus(2.0)
            .cpu_shares(1024)
            .memory(Bytes::from_mib(4096))
            .memory_reservation(Bytes::from_mib(512)),
    );
    checkpoints.push(snap(&host, &tracer, &ids));
    let demands = busy(&host, &ids);
    host.step(&demands);
    checkpoints.push(snap(&host, &tracer, &ids));

    // Phase 8 — stalled monitor with a lost event: a limits change
    // lands while the monitor sleeps through its deadlines, and the
    // queued cgroup event is dropped in transit (drop probability 1),
    // so the incremental stream can never deliver it. The watchdog
    // latches the stall and, on the first healthy firing, forces the
    // full reconcile that discovers the change (watchdog-resync).
    host.inject_monitor_stall(4);
    host.update_limits(
        ids[2],
        &ContainerSpec::new("obs-2", 20)
            .cpus(3.0)
            .cpu_shares(1024)
            .memory(Bytes::from_mib(4096))
            .memory_reservation(Bytes::from_mib(1024)),
    );
    host.set_fault_plan(FaultPlan::new(
        0xB5,
        FaultConfig {
            drop_prob: 1.0,
            ..FaultConfig::quiet()
        },
    ));
    for _ in 0..6 {
        let demands = busy(&host, &ids);
        host.step(&demands);
        checkpoints.push(snap(&host, &tracer, &ids));
    }
    let _ = host.take_fault_plan();

    // Phase 9 — steady tail.
    for _ in 0..2 {
        let demands = busy(&host, &ids);
        host.step(&demands);
        checkpoints.push(snap(&host, &tracer, &ids));
    }

    let prometheus = host
        .viewd()
        .expect("viewd attached")
        .prometheus_exposition();
    Scenario {
        tracer,
        ids,
        baselines,
        checkpoints,
        degraded_reads,
        prometheus,
    }
}

/// Replay verdict: counters proving (or disproving) that the actual
/// view trajectory is reconstructible from the trace alone.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct ReplayOutcome {
    events_replayed: u64,
    chain_breaks: u64,
    checkpoint_mismatches: u64,
    degraded_mismatches: u64,
    unknown_causes: u64,
    cause_counts: BTreeMap<&'static str, u64>,
    pipeline_counts: BTreeMap<&'static str, u64>,
}

fn verify_checkpoint(
    cp: &Checkpoint,
    current: &BTreeMap<u32, (Option<u32>, Option<u64>)>,
    baselines: &BTreeMap<u32, (u32, u64)>,
    out: &mut ReplayOutcome,
) {
    for (id, cpus, mem) in &cp.views {
        let (replayed_cpu, replayed_mem) = current.get(&id.0).copied().unwrap_or((None, None));
        let (base_cpu, base_mem) = baselines[&id.0];
        if replayed_cpu.unwrap_or(base_cpu) != *cpus {
            out.checkpoint_mismatches += 1;
        }
        if replayed_mem.unwrap_or(base_mem) != *mem {
            out.checkpoint_mismatches += 1;
        }
    }
}

/// Walk the full trace ring against the checkpointed trajectory.
///
/// Monitor-side decisions mutate the view, so they must chain
/// (`before == previous after`) and land exactly on every checkpoint.
/// `degraded-fallback` events describe a *served* substitution, not a
/// view mutation — they are excluded from the chain but their `before`
/// must match the live view the replay has reconstructed at that point.
fn replay(sc: &Scenario) -> ReplayOutcome {
    let mut out = ReplayOutcome::default();
    let mut current: BTreeMap<u32, (Option<u32>, Option<u64>)> = BTreeMap::new();
    let mut pending = sc.checkpoints.iter().peekable();
    for ev in sc.tracer.events() {
        while let Some(cp) = pending.peek() {
            if ev.seq < cp.cursor {
                break;
            }
            verify_checkpoint(cp, &current, &sc.baselines, &mut out);
            pending.next();
        }
        match ev.kind {
            EventKind::Cpu(d) => {
                *out.cause_counts.entry(d.cause.label()).or_default() += 1;
                if d.cause == DecisionCause::Unknown {
                    out.unknown_causes += 1;
                }
                let Some(id) = ev.container else {
                    out.chain_breaks += 1;
                    continue;
                };
                let slot = current.entry(id.0).or_insert((None, None));
                let live = slot.0.unwrap_or(sc.baselines[&id.0].0);
                if d.cause == DecisionCause::DegradedFallback {
                    if live != d.before {
                        out.degraded_mismatches += 1;
                    }
                } else {
                    if live != d.before {
                        out.chain_breaks += 1;
                    }
                    slot.0 = Some(d.after);
                    out.events_replayed += 1;
                }
            }
            EventKind::Mem(d) => {
                *out.cause_counts.entry(d.cause.label()).or_default() += 1;
                if d.cause == DecisionCause::Unknown {
                    out.unknown_causes += 1;
                }
                let Some(id) = ev.container else {
                    out.chain_breaks += 1;
                    continue;
                };
                let slot = current.entry(id.0).or_insert((None, None));
                let live = slot.1.unwrap_or(sc.baselines[&id.0].1);
                if d.cause == DecisionCause::DegradedFallback {
                    if live != d.before.0 {
                        out.degraded_mismatches += 1;
                    }
                } else {
                    if live != d.before.0 {
                        out.chain_breaks += 1;
                    }
                    slot.1 = Some(d.after.0);
                    out.events_replayed += 1;
                }
            }
            EventKind::Pipeline(p) => {
                *out.pipeline_counts.entry(p.label()).or_default() += 1;
            }
        }
    }
    for cp in pending {
        verify_checkpoint(cp, &current, &sc.baselines, &mut out);
    }
    out
}

fn mk_mem(soft_mib: u64, hard_mib: u64) -> EffectiveMemory {
    EffectiveMemory::new(
        Bytes::from_mib(soft_mib),
        Bytes::from_mib(hard_mib),
        Bytes::from_mib(1280),
        Bytes::from_mib(2560),
        EffectiveMemoryConfig::default(),
    )
}

/// Mean nanoseconds per cached-hit query against a fresh view, min over
/// several trials (min-of-trials rejects scheduler noise).
fn cached_hit_ns(tracer: Tracer, iters: u32) -> f64 {
    let server = ViewServer::with_telemetry(
        HostSpec::paper_testbed(),
        4,
        StalenessPolicy::default(),
        tracer,
    );
    let id = CgroupId(1);
    server.register(
        id,
        CpuBounds { lower: 2, upper: 8 },
        EffectiveCpuConfig::default(),
        mk_mem(512, 1024),
    );
    server.mirror(id, 6, Bytes::from_mib(1536), Bytes::from_mib(768));
    let client = server.client();
    client.read(Some(id), "/proc/cpuinfo").expect("warm read");
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(client.read(Some(id), "/proc/cpuinfo").expect("cached read"));
        }
        best = best.min(start.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    best
}

/// Run this study and produce its report. Panics (on purpose) when a
/// view change is not reconstructible from the trace or when tracing
/// slows the cached-hit path past the budget — `ci.sh` runs this
/// figure, so either regression fails the gate.
pub fn run(scale: f64) -> FigReport {
    let sc = run_scenario();
    // Replayed scenario: the trace itself must be deterministic, or a
    // timeline could never be trusted as a debugging artifact.
    let sc2 = run_scenario();
    let rendered: Vec<String> = sc.tracer.events().iter().map(|e| e.render()).collect();
    let rendered2: Vec<String> = sc2.tracer.events().iter().map(|e| e.render()).collect();
    assert_eq!(rendered, rendered2, "obs scenario replay diverged");
    assert_eq!(
        sc.checkpoints, sc2.checkpoints,
        "obs checkpoint trajectory diverged between replays"
    );

    let verdict = replay(&sc);
    assert_eq!(
        sc.tracer.dropped_events(),
        0,
        "ring sized for the scenario must not drop"
    );
    assert_eq!(
        verdict.unknown_causes, 0,
        "every decision must carry a cause"
    );
    assert_eq!(
        verdict.chain_breaks, 0,
        "every view change must chain from the previous one"
    );
    assert_eq!(
        verdict.checkpoint_mismatches, 0,
        "replaying the trace must reproduce every sampled view value"
    );
    assert_eq!(
        verdict.degraded_mismatches, 0,
        "degraded events must substitute from the live view the trace reconstructs"
    );
    assert!(sc.degraded_reads > 0, "outage must produce degraded reads");
    for cause in REQUIRED_CAUSES {
        assert!(
            verdict.cause_counts.get(cause).copied().unwrap_or(0) > 0,
            "scenario never exercised decision cause {cause}"
        );
    }
    for ev in ["container-created", "stall-detected", "resynced"] {
        assert!(
            verdict.pipeline_counts.get(ev).copied().unwrap_or(0) > 0,
            "scenario never exercised pipeline event {ev}"
        );
    }

    let iters = ((20_000.0 * scale) as u32).max(2_000);
    let traced_ns = cached_hit_ns(Tracer::bounded(1024), iters);
    let untraced_ns = cached_hit_ns(Tracer::disabled(), iters);
    let budget_ns = untraced_ns * OVERHEAD_BUDGET_RATIO + OVERHEAD_SLACK_NS;
    assert!(
        traced_ns <= budget_ns,
        "trace overhead regression: cached hit {traced_ns:.0} ns with tracing enabled vs \
         {untraced_ns:.0} ns disabled (budget {budget_ns:.0} ns)"
    );

    let mut t_causes = Table::new("decision_causes", &["events"]);
    for cause in REQUIRED_CAUSES {
        t_causes.push(Row::full(
            cause,
            &[verdict.cause_counts.get(cause).copied().unwrap_or(0) as f64],
        ));
    }
    let mut t_pipeline = Table::new("pipeline_events", &["events"]);
    for (label, count) in &verdict.pipeline_counts {
        t_pipeline.push(Row::full(*label, &[*count as f64]));
    }

    let mut t_prov = Table::new("provenance_check", &["value"]);
    t_prov.push(Row::full("containers", &[sc.ids.len() as f64]));
    t_prov.push(Row::full("checkpoints", &[sc.checkpoints.len() as f64]));
    t_prov.push(Row::full("trace_events", &[sc.tracer.emitted() as f64]));
    t_prov.push(Row::full(
        "events_replayed",
        &[verdict.events_replayed as f64],
    ));
    t_prov.push(Row::full("chain_breaks", &[verdict.chain_breaks as f64]));
    t_prov.push(Row::full(
        "checkpoint_mismatches",
        &[verdict.checkpoint_mismatches as f64],
    ));
    t_prov.push(Row::full(
        "degraded_mismatches",
        &[verdict.degraded_mismatches as f64],
    ));
    t_prov.push(Row::full(
        "unknown_causes",
        &[verdict.unknown_causes as f64],
    ));
    t_prov.push(Row::full(
        "dropped_events",
        &[sc.tracer.dropped_events() as f64],
    ));
    t_prov.push(Row::full("degraded_reads", &[sc.degraded_reads as f64]));

    let mut t_over = Table::new("trace_overhead", &["value"]);
    t_over.push(Row::full("traced_hit_ns", &[traced_ns]));
    t_over.push(Row::full("untraced_hit_ns", &[untraced_ns]));
    t_over.push(Row::full("ratio", &[traced_ns / untraced_ns.max(1.0)]));
    t_over.push(Row::full("budget_ns", &[budget_ns]));

    let mut rep = FigReport::new(
        "obs",
        "decision provenance: every view change reconstructed from the trace",
    );
    rep.tables.push(t_causes);
    rep.tables.push(t_pipeline);
    rep.tables.push(t_prov);
    rep.tables.push(t_over);
    rep.note(format!(
        "{} containers, {} checkpoints, {} trace events; replay reproduced every sampled view \
         with 0 chain breaks and 0 unknown causes",
        sc.ids.len(),
        sc.checkpoints.len(),
        sc.tracer.emitted()
    ));
    rep.note(format!(
        "explain c{}: {}",
        sc.ids[0].0,
        sc.tracer
            .render_explain(sc.ids[0])
            .trim_end()
            .replace('\n', " | ")
    ));
    for id in &sc.ids {
        rep.note(format!(
            "timeline c{}:\n{}",
            id.0,
            sc.tracer.render_timeline(*id).trim_end()
        ));
    }
    let prom_head: Vec<&str> = sc.prometheus.lines().take(6).collect();
    rep.note(format!(
        "prometheus exposition ({} lines): {}",
        sc.prometheus.lines().count(),
        prom_head.join(" | ")
    ));
    rep.note(format!(
        "cached hit {traced_ns:.0} ns traced vs {untraced_ns:.0} ns untraced \
         (budget {budget_ns:.0} ns): tracing stays off the serving hot path"
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_campaign_passes_and_reports() {
        let rep = run(0.1);
        assert_eq!(rep.tables.len(), 4);
        let causes = &rep.tables[0];
        for cause in REQUIRED_CAUSES {
            assert!(
                causes.get(cause, "events").unwrap() >= 1.0,
                "{cause} missing from the report"
            );
        }
        let prov = &rep.tables[2];
        assert_eq!(prov.get("chain_breaks", "value"), Some(0.0));
        assert_eq!(prov.get("checkpoint_mismatches", "value"), Some(0.0));
        assert_eq!(prov.get("unknown_causes", "value"), Some(0.0));
        assert_eq!(prov.get("dropped_events", "value"), Some(0.0));
        assert!(prov.get("events_replayed", "value").unwrap() > 10.0);
    }

    #[test]
    fn scenario_trace_is_deterministic() {
        let a = run_scenario();
        let b = run_scenario();
        let ra: Vec<String> = a.tracer.events().iter().map(|e| e.render()).collect();
        let rb: Vec<String> = b.tracer.events().iter().map(|e| e.render()).collect();
        assert_eq!(ra, rb);
        assert_eq!(a.degraded_reads, b.degraded_reads);
    }

    #[test]
    fn every_change_is_attributed_and_chained() {
        let sc = run_scenario();
        let verdict = replay(&sc);
        assert_eq!(verdict.chain_breaks, 0);
        assert_eq!(verdict.checkpoint_mismatches, 0);
        assert_eq!(verdict.degraded_mismatches, 0);
        assert_eq!(verdict.unknown_causes, 0);
        assert_eq!(sc.tracer.dropped_events(), 0);
    }
}
