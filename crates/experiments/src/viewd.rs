//! `arv-viewd` serving cost: cached hits vs uncached renders.
//!
//! The paper prices a view query at ~5 µs against a 24 ms update period
//! (§5.4). The daemon's render cache moves almost every query onto an
//! even cheaper path: a full `/proc/cpuinfo` or `/proc/stat` image is
//! rendered once per published generation and then served as an `Arc`
//! clone until the view moves again. This study drives a three-container
//! daemon through many view generations, reading each image once cold
//! (render) and many times warm (cached), and reports both latency
//! distributions from the daemon's own histograms plus the query
//! accounting identity `hits + misses = queries`.

use arv_cgroups::{Bytes, CgroupId};
use arv_resview::{CpuBounds, EffectiveCpuConfig, EffectiveMemory, EffectiveMemoryConfig};
use arv_viewd::{HostSpec, ViewServer};

use crate::report::{FigReport, Row, Table};

/// The multi-stanza proc files resource probing actually parses — the
/// expensive renders, one stanza (or line) per effective CPU.
const HEAVY_PATHS: [&str; 2] = ["/proc/cpuinfo", "/proc/stat"];

/// Warm reads per cold read: real probing re-reads these files far more
/// often than the view changes (once per scheduling period at most).
const HITS_PER_MISS: u32 = 16;

fn mk_mem(soft_mib: u64, hard_mib: u64) -> EffectiveMemory {
    EffectiveMemory::new(
        Bytes::from_mib(soft_mib),
        Bytes::from_mib(hard_mib),
        Bytes::from_mib(1280),
        Bytes::from_mib(2560),
        EffectiveMemoryConfig::default(),
    )
}

/// Run this study and produce its report.
pub fn run(scale: f64) -> FigReport {
    let server = ViewServer::new(HostSpec::paper_testbed(), 8);
    let ids = [CgroupId(1), CgroupId(2), CgroupId(3)];
    for (i, id) in ids.iter().enumerate() {
        server.register(
            *id,
            CpuBounds {
                lower: 2 + i as u32,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            mk_mem(512 * (i as u64 + 1), 1024 * (i as u64 + 1)),
        );
    }
    let client = server.client();

    let generations = ((400.0 * scale) as u32).max(8);
    for g in 0..generations {
        for (i, id) in ids.iter().enumerate() {
            // A fresh view each round: publishing moves the generation,
            // so the first read per path re-renders and the rest hit.
            let cpus = 2 + (g + i as u32) % 8;
            let view = Bytes::from_mib(256 * u64::from(cpus));
            server.mirror(*id, cpus, view, view);
            for path in HEAVY_PATHS {
                for _ in 0..=HITS_PER_MISS {
                    client.read(Some(*id), path).expect("renderable path");
                }
            }
        }
    }

    // Wire phase: replay a slice of the workload through the socket
    // protocol so the report can separate protocol overhead (the
    // dedicated wire-latency histogram) from in-process query cost.
    let socket = std::env::temp_dir().join(format!("arv-viewd-fig-{}.sock", std::process::id()));
    let wire = arv_viewd::WireServer::spawn(server.clone(), &socket).expect("bind wire socket");
    let mut wire_client = arv_viewd::WireClient::connect(wire.socket_path()).expect("wire connect");
    let wire_reads = ((128.0 * scale) as u32).max(16);
    for _ in 0..wire_reads {
        for path in HEAVY_PATHS {
            wire_client
                .read(Some(ids[0]), path)
                .expect("wire read")
                .expect("renderable path");
        }
    }
    wire.shutdown();

    // Robustness epilogue: age the staleness clock past the budget and
    // read each image once more — the daemon must answer every query
    // from the conservative fallback and count the degraded serves.
    for _ in 0..=server.policy().budget {
        server.advance_tick();
    }
    for id in ids {
        for path in HEAVY_PATHS {
            client.read(Some(id), path).expect("renderable path");
        }
    }

    let m = server.metrics();
    let speedup = m.miss_latency_ns / m.hit_latency_ns.max(1.0);

    let mut latency = Table::new("serving_latency_ns", &["mean_ns", "p99_ns"]);
    latency.push(Row::full(
        "cached_hit",
        &[m.hit_latency_ns, m.hit_p99_ns as f64],
    ));
    latency.push(Row::full(
        "uncached_render",
        &[m.miss_latency_ns, m.miss_p99_ns as f64],
    ));
    latency.push(Row::full(
        "wire_request",
        &[m.wire_latency_ns, m.wire_p99_ns as f64],
    ));
    latency.push(Row::full("render_over_hit", &[speedup, f64::NAN]));

    let mut accounting = Table::new("query_accounting", &["count"]);
    accounting.push(Row::full("queries", &[m.queries as f64]));
    accounting.push(Row::full("cache_hits", &[m.cache_hits as f64]));
    accounting.push(Row::full("cache_misses", &[m.cache_misses as f64]));
    accounting.push(Row::full(
        "hits_plus_misses",
        &[(m.cache_hits + m.cache_misses) as f64],
    ));
    accounting.push(Row::full("failures", &[m.failures as f64]));
    accounting.push(Row::full("wire_requests", &[m.wire_requests as f64]));

    let mut robustness = Table::new("robustness_counters", &["count"]);
    robustness.push(Row::full("stale_serves", &[m.stale_serves as f64]));
    robustness.push(Row::full("degraded_serves", &[m.degraded_serves as f64]));
    robustness.push(Row::full("wire_rejected", &[m.wire_rejected as f64]));
    robustness.push(Row::full(
        "connections_accepted",
        &[m.connections_accepted as f64],
    ));
    robustness.push(Row::full(
        "connections_dropped",
        &[m.connections_dropped as f64],
    ));
    robustness.push(Row::full(
        "staleness_age_mean_ticks",
        &[m.staleness_age_mean],
    ));
    robustness.push(Row::full(
        "staleness_age_p99_ticks",
        &[m.staleness_age_p99 as f64],
    ));

    let mut rep = FigReport::new(
        "viewd",
        "arv-viewd serving cost: cached hits vs uncached renders (§5.4)",
    );
    rep.tables.push(latency);
    rep.tables.push(accounting);
    rep.tables.push(robustness);
    rep.note(format!(
        "{generations} generations x 3 containers; each published view rendered once, then served {HITS_PER_MISS}x from cache"
    ));
    rep.note(format!(
        "cached hit is {speedup:.1}x cheaper than an uncached render; every hit still reflects the current generation"
    ));
    rep.note(format!(
        "epilogue ages the clock past the staleness budget: {} degraded serves answered from the conservative fallback",
        m.degraded_serves
    ));
    rep.note(format!(
        "{} wire requests at {:.0} ns mean (p99 {} ns): the protocol layer priced separately from query cost",
        m.wire_requests, m.wire_latency_ns, m.wire_p99_ns
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_hits_are_at_least_10x_cheaper_than_renders() {
        let rep = run(0.2);
        let t = &rep.tables[0];
        let hit = t.get("cached_hit", "mean_ns").unwrap();
        let miss = t.get("uncached_render", "mean_ns").unwrap();
        assert!(
            miss >= 10.0 * hit,
            "render {miss:.0} ns is under 10x hit {hit:.0} ns"
        );
    }

    #[test]
    fn hits_plus_misses_equals_queries_served() {
        let rep = run(0.1);
        let t = &rep.tables[1];
        let queries = t.get("queries", "count").unwrap();
        let hits = t.get("cache_hits", "count").unwrap();
        let misses = t.get("cache_misses", "count").unwrap();
        assert_eq!(hits + misses, queries);
        assert_eq!(t.get("failures", "count").unwrap(), 0.0);
        // One miss per (generation, container, path): every published
        // view is rendered exactly once per file.
        assert_eq!(misses as u64 % (3 * HEAVY_PATHS.len() as u64), 0);
    }

    #[test]
    fn degraded_epilogue_is_counted_and_served() {
        let rep = run(0.1);
        let t = &rep.tables[2];
        // One degraded serve per (container, path) in the epilogue.
        assert_eq!(
            t.get("degraded_serves", "count").unwrap(),
            (3 * HEAVY_PATHS.len()) as f64
        );
        // The wire phase is clean traffic: nothing rejected.
        assert_eq!(t.get("wire_rejected", "count").unwrap(), 0.0);
        assert_eq!(t.get("connections_accepted", "count").unwrap(), 1.0);
    }

    #[test]
    fn wire_latency_lands_in_its_own_histogram() {
        let rep = run(0.1);
        let latency = &rep.tables[0];
        assert!(latency.get("wire_request", "mean_ns").unwrap() > 0.0);
        assert!(latency.get("wire_request", "p99_ns").unwrap() > 0.0);
        let accounting = &rep.tables[1];
        // 16 wire rounds x 2 paths at the minimum clamp.
        assert_eq!(accounting.get("wire_requests", "count").unwrap(), 32.0);
    }
}
