//! View accuracy: how close each resource view tracks the CPU a container
//! can actually use.
//!
//! This study quantifies the paper's core premise (§1–2): LXCFS and the
//! cgroup namespace "only export the resource constraints set by the
//! administrator but do not reflect the actual amount of resources that
//! are allocated to a container". We drive a churning four-container mix
//! and compare, per scheduling period, the CPU a saturated container was
//! *actually* granted against what each view would have told it:
//!
//! * **limit view** (LXCFS / cgroup namespace / JDK 9) — the static
//!   quota/cpuset bound;
//! * **share view** (JDK 10) — the static share-derived core count;
//! * **adaptive view** (the paper) — the `sys_namespace` effective CPU.

use arv_cgroups::CgroupId;
use arv_container::{ContainerSpec, SimHost};
use arv_sim_core::TimeSeries;

use crate::report::{FigReport, Row, Table};

/// Phased load schedule: each step names the containers that saturate.
const SCHEDULE: [&[usize]; 6] = [
    &[0],
    &[0, 1],
    &[0, 1, 2, 3],
    &[0, 2, 3],
    &[0, 3],
    &[0, 1, 2, 3],
];
/// Scheduling periods per schedule step.
const STEP_PERIODS: u32 = 120;

struct Errors {
    limit: f64,
    share: f64,
    adaptive: f64,
    max_limit: f64,
    max_share: f64,
    max_adaptive: f64,
    samples: u32,
}

/// Run this study and produce its report (scale-independent).
pub fn run(_scale: f64) -> FigReport {
    let mut host = SimHost::paper_testbed();
    let ids: Vec<CgroupId> = (0..4)
        .map(|i| host.launch(&ContainerSpec::new(format!("c{i}"), 20).cpus(10.0)))
        .collect();

    let bounds = host.monitor().namespace(ids[0]).unwrap().cpu_bounds();
    let limit_view = f64::from(bounds.upper); // LXCFS / JDK 9
    let share_view = f64::from(bounds.lower); // JDK 10

    let mut err = Errors {
        limit: 0.0,
        share: 0.0,
        adaptive: 0.0,
        max_limit: 0.0,
        max_share: 0.0,
        max_adaptive: 0.0,
        samples: 0,
    };
    let mut actual_series = TimeSeries::new("c0_actual_cpus");
    let mut adaptive_series = TimeSeries::new("c0_adaptive_view");

    for active in SCHEDULE {
        for _ in 0..STEP_PERIODS {
            let demands: Vec<_> = active.iter().map(|i| host.demand(ids[*i], 20)).collect();
            let out = host.step(&demands);
            let t = out.now;

            // Container 0 saturates in every phase: compare what it got
            // against what each view claims it can use.
            let actual = out.alloc.granted_cpus(ids[0]);
            let adaptive = f64::from(host.effective_cpu(ids[0]));
            let e_l = (limit_view - actual).abs();
            let e_s = (share_view - actual).abs();
            let e_a = (adaptive - actual).abs();
            err.limit += e_l;
            err.share += e_s;
            err.adaptive += e_a;
            err.max_limit = err.max_limit.max(e_l);
            err.max_share = err.max_share.max(e_s);
            err.max_adaptive = err.max_adaptive.max(e_a);
            err.samples += 1;

            actual_series.push(t, actual);
            adaptive_series.push(t, adaptive);
        }
    }

    let n = f64::from(err.samples);
    let mut table = Table::new("cpu_view_error", &["mean_abs_error_cpus", "max_error_cpus"]);
    table.push(Row::full(
        "limit_view (LXCFS/JDK9)",
        &[err.limit / n, err.max_limit],
    ));
    table.push(Row::full(
        "share_view (JDK10)",
        &[err.share / n, err.max_share],
    ));
    table.push(Row::full(
        "adaptive_view (paper)",
        &[err.adaptive / n, err.max_adaptive],
    ));

    let mut rep = FigReport::new(
        "accuracy",
        "Resource-view tracking error vs actual CPU allocation (not in the paper)",
    );
    rep.tables.push(table);
    rep.series.push(actual_series.downsample(48));
    rep.series.push(adaptive_series.downsample(48));
    rep.note("four 10-core-limit containers; container 0 always saturated, neighbours churn through a 6-phase schedule");
    rep.note(
        "error = |view − CPUs actually granted| per scheduling period, for the saturated container",
    );
    rep.note("the adaptive view's residual error is Algorithm 1's conservative regime: with zero host slack it decays toward the share-derived lower bound even when work conservation grants more — it only expands into measured slack");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_view_tracks_far_better_than_static_views() {
        let rep = run(1.0);
        let t = &rep.tables[0];
        let limit = t
            .get("limit_view (LXCFS/JDK9)", "mean_abs_error_cpus")
            .unwrap();
        let share = t.get("share_view (JDK10)", "mean_abs_error_cpus").unwrap();
        let adaptive = t
            .get("adaptive_view (paper)", "mean_abs_error_cpus")
            .unwrap();
        assert!(
            adaptive < limit,
            "adaptive MAE {adaptive} vs limit view {limit}"
        );
        assert!(
            adaptive < share,
            "adaptive MAE {adaptive} vs share view {share}"
        );
        // Residual error comes from Algorithm 1's conservative no-slack
        // regime (see the report note), not from unbounded drift.
        assert!(adaptive < 2.0, "adaptive MAE {adaptive}");
    }

    #[test]
    fn adaptive_trace_follows_the_churn() {
        let rep = run(1.0);
        let adaptive = rep
            .series
            .iter()
            .find(|s| s.name() == "c0_adaptive_view")
            .unwrap();
        // The view must visit both the crowded fair share and the roomy
        // quota across the schedule.
        assert!(adaptive.min_value().unwrap() <= 5.0);
        assert!(adaptive.max_value().unwrap() >= 10.0);
    }

    #[test]
    fn report_is_deterministic() {
        let a = run(1.0);
        let b = run(1.0);
        assert_eq!(
            a.tables[0].get("adaptive_view (paper)", "mean_abs_error_cpus"),
            b.tables[0].get("adaptive_view (paper)", "mean_abs_error_cpus"),
        );
    }
}
