//! Figure 2: the motivating experiments of §2.2 — how container resource
//! constraints break the JVM's auto-configuration.
//!
//! * **2(a)** — GC-thread configuration: 5 containers on 20 cores, each
//!   with a 10-core CPU limit and equal shares, running the same DaCapo
//!   benchmark. Auto vs hand-optimized (4 GC threads — the effective
//!   share) for JDK 8 and JDK 9, normalized to Auto_JVM9.
//! * **2(b)** — heap configuration: one container with a 1 GB hard and
//!   500 MB soft limit on the 128 GB host, plus a background
//!   memory-intensive workload causing a host-wide shortage. Hard/Soft
//!   hand-optimized JDK 8 vs Auto JDK 8 (32 GB heap → swapping) vs Auto
//!   JDK 9 (256 MB heap → OOM for H2), normalized to Hard_JVM8.

use arv_cgroups::Bytes;
use arv_jvm::{HeapPolicy, Jvm, JvmConfig, JvmOutcome};
use arv_sim_core::SimDuration;
use arv_workloads::{dacapo_profile, DACAPO_BENCHMARKS};

use crate::driver::{Fleet, MemHog};
use crate::report::{FigReport, Row, Table};
use crate::scenarios::{
    colocated_same_bench, mean_completed, paper_heap, scale_java, testbed_with_containers, Layout,
};

/// Figure 2(a): impact of GC-thread configuration.
pub fn run_gc_threads(scale: f64) -> FigReport {
    let layout = Layout {
        quota_cpus: Some(10.0),
        ..Layout::default()
    };
    // Hand-optimized thread count: 5 containers share 20 cores → 4 each.
    type GcThreadConfig = (&'static str, fn() -> JvmConfig, Option<u32>);
    let configs: [GcThreadConfig; 4] = [
        ("Auto_JVM9", JvmConfig::jdk9, None),
        ("Opt_JVM9", JvmConfig::jdk9, Some(4)),
        ("Auto_JVM8", JvmConfig::vanilla_jdk8, None),
        ("Opt_JVM8", JvmConfig::vanilla_jdk8, Some(4)),
    ];

    let mut table = Table::new("normalized_exec_time", &configs.map(|(name, _, _)| name));
    for bench in DACAPO_BENCHMARKS {
        let profile = scale_java(dacapo_profile(bench), scale);
        let mut execs = Vec::new();
        for (_, base, threads) in &configs {
            let mut cfg = base().with_heap_policy(paper_heap(&profile));
            if let Some(t) = threads {
                cfg = cfg.with_gc_threads(*t);
            }
            let stats = colocated_same_bench(5, layout, &cfg, &profile);
            execs.push(mean_completed(&stats).map(|(e, _)| e));
        }
        let baseline = execs[0].expect("Auto_JVM9 completes");
        table.push(Row::new(
            bench,
            execs.iter().map(|e| e.map(|x| x / baseline)).collect(),
        ));
    }

    let mut rep = FigReport::new(
        "2a",
        "Impact of GC-thread configuration (5 containers, 20 cores)",
    );
    rep.tables.push(table);
    rep.note("values are execution time normalized to Auto_JVM9 (lower is better)");
    rep.note(
        "hand-optimized JVMs use 4 GC threads — the effective share of 20 cores over 5 containers",
    );
    rep
}

/// Figure 2(b): impact of maximum-heap configuration under a 1 GB hard /
/// 500 MB soft limit with host-wide memory pressure.
pub fn run_heap_size(scale: f64) -> FigReport {
    type HeapConfig = (&'static str, fn(&arv_jvm::JavaProfile) -> JvmConfig);
    let configs: [HeapConfig; 4] = [
        ("Hard_JVM8", |_| {
            JvmConfig::vanilla_jdk8().with_heap_policy(HeapPolicy::FixedMax(Bytes::from_gib(1)))
        }),
        ("Soft_JVM8", |_| {
            JvmConfig::vanilla_jdk8().with_heap_policy(HeapPolicy::FixedMax(Bytes::from_mib(500)))
        }),
        ("Auto_JVM8", |_| JvmConfig::vanilla_jdk8()),
        ("Auto_JVM9", |_| JvmConfig::jdk9()),
    ];

    let mut table = Table::new("normalized_exec_time", &configs.map(|(n, _)| n));
    for bench in DACAPO_BENCHMARKS {
        let profile = scale_java(dacapo_profile(bench), scale);
        let mut execs = Vec::new();
        for (_, mk) in &configs {
            execs.push(run_one_with_pressure(&mk(&profile), &profile));
        }
        let baseline = execs[0].expect("Hard_JVM8 completes");
        table.push(Row::new(
            bench,
            execs.iter().map(|e| e.map(|x| x / baseline)).collect(),
        ));
    }

    let mut rep = FigReport::new(
        "2b",
        "Impact of JVM heap configuration (1 GB hard / 500 MB soft limit, host memory pressure)",
    );
    rep.tables.push(table);
    rep.note("values are execution time normalized to Hard_JVM8 (lower is better)");
    rep.note(
        "OOM/DNF cells reproduce the paper's missing bars (H2 cannot fit in JDK 9's 256 MB heap)",
    );
    rep
}

/// One container with the paper's limits plus a background memory hog
/// that pushes the host into a kswapd shortage.
fn run_one_with_pressure(cfg: &JvmConfig, profile: &arv_jvm::JavaProfile) -> Option<f64> {
    let layout = Layout {
        mem_hard: Some(Bytes::from_gib(1)),
        mem_soft: Some(Bytes::from_mib(500)),
        ..Layout::default()
    };
    let (mut host, ids) = testbed_with_containers(1, layout);
    let hog_container = host.launch(&arv_container::ContainerSpec::new("memhog", 20));
    let mut fleet = Fleet::new();
    let jvm_idx = fleet.push_jvm(Jvm::launch(&mut host, ids[0], cfg.clone(), profile.clone()));
    // The hog consumes nearly all host memory so free memory sits below
    // the kswapd low watermark for the whole run.
    let target = host.total_memory() - Bytes::from_mib(900);
    fleet.push_mem_hog(MemHog::new(hog_container, Bytes::from_gib(8), target));
    let deadline = profile
        .total_work
        .mul_f64(200.0)
        .max(SimDuration::from_secs(600));
    fleet.run(&mut host, deadline);

    let jvm = fleet.jvm(jvm_idx);
    (jvm.outcome() == JvmOutcome::Completed).then(|| jvm.metrics().exec_wall.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 0.05;

    #[test]
    fn fig2a_hand_optimized_beats_auto() {
        let rep = run_gc_threads(SCALE);
        let t = &rep.tables[0];
        // On the GC-heavy benchmarks the optimized JVMs must win clearly.
        for bench in ["lusearch", "xalan"] {
            let auto9 = t.get(bench, "Auto_JVM9").unwrap();
            let opt9 = t.get(bench, "Opt_JVM9").unwrap();
            let opt8 = t.get(bench, "Opt_JVM8").unwrap();
            assert!(opt9 < auto9, "{bench}: opt9 {opt9} vs auto9 {auto9}");
            assert!(opt8 < auto9, "{bench}: opt8 {opt8} vs auto9 {auto9}");
        }
    }

    #[test]
    fn fig2a_jdk9_awareness_barely_helps() {
        // The paper's point: JDK 9 detects the 10-core limit, not the
        // 4-core effective capacity, so it stays close to JDK 8.
        let rep = run_gc_threads(SCALE);
        let t = &rep.tables[0];
        for bench in DACAPO_BENCHMARKS {
            let auto8 = t.get(bench, "Auto_JVM8").unwrap();
            assert!(
                (auto8 - 1.0).abs() < 0.35,
                "{bench}: Auto_JVM8 {auto8} should be near Auto_JVM9"
            );
        }
    }

    #[test]
    fn fig2b_h2_ooms_and_limit_aware_heaps_win() {
        let rep = run_heap_size(SCALE);
        let t = &rep.tables[0];
        assert_eq!(t.get("h2", "Auto_JVM9"), None, "H2 must OOM under 256 MB");
        for bench in DACAPO_BENCHMARKS {
            let soft = t.get(bench, "Soft_JVM8").unwrap();
            let auto8 = t.get(bench, "Auto_JVM8").unwrap();
            // Hard and soft hand-tuned heaps sit within a few tens of
            // percent of each other (the paper gives soft a small edge;
            // see EXPERIMENTS.md), while the host-oblivious heap
            // collapses by an order of magnitude.
            assert!(soft <= 1.5, "{bench}: soft {soft} must be near hard");
            assert!(
                auto8 > 5.0,
                "{bench}: Auto_JVM8 {auto8} should collapse from swapping"
            );
        }
        for bench in ["jython", "sunflow", "xalan", "lusearch"] {
            let auto9 = t.get(bench, "Auto_JVM9").unwrap();
            let auto8 = t.get(bench, "Auto_JVM8").unwrap();
            assert!(
                auto9 < auto8 / 4.0,
                "{bench}: JDK 9's limit awareness must avoid the swap collapse"
            );
        }
    }
}
