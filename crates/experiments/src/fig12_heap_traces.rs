//! Figure 12: used / committed / VirtualMax traces for the §5.3
//! allocation-churn micro-benchmark (40,000 × (+1 MB, −512 KB); 20 GB
//! working set, 40 GB touched) under a 30 GB hard / 15 GB soft limit:
//!
//! * **(a)** one container, vanilla JVM — the heap expands straight to
//!   the hard limit; `VirtualMax` (effective memory) is recorded but
//!   unused;
//! * **(b)** one container, elastic JVM — starts from a quarter of the
//!   initial `VirtualMax` and ramps with effective memory, converging to
//!   the same hard limit;
//! * **(c)** five such containers — aggregate demand (5 × 30 GB) exceeds
//!   physical memory; the vanilla JVMs thrash and fail, the elastic JVMs
//!   converge to a sustainable per-container heap (~24 GB in the paper).
//!
//! With `scale < 1` the entire memory scenario (host memory, limits,
//! workload) shrinks proportionally, preserving every ratio.

use arv_cgroups::Bytes;
use arv_container::{ContainerSpec, SimHost};
use arv_jvm::{HeapPolicy, Jvm, JvmConfig, JvmOutcome};
use arv_sim_core::{SimDuration, TimeSeries};
use arv_workloads::alloc_churn_microbenchmark;

use crate::driver::Fleet;
use crate::report::{FigReport, Row, Table};

struct Scaled {
    host_mem: Bytes,
    hard: Bytes,
    soft: Bytes,
    profile: arv_jvm::JavaProfile,
}

fn scaled(scale: f64) -> Scaled {
    assert!(scale > 0.0 && scale <= 1.0);
    let mut profile = alloc_churn_microbenchmark();
    profile.total_work = profile.total_work.mul_f64(scale);
    profile.live_cap = profile.live_cap.mul_f64(scale);
    profile.min_heap = profile.min_heap.mul_f64(scale);
    profile.young_live = profile.young_live.mul_f64(scale.max(0.1));
    Scaled {
        host_mem: Bytes::from_gib(128).mul_f64(scale),
        hard: Bytes::from_gib(30).mul_f64(scale),
        soft: Bytes::from_gib(15).mul_f64(scale),
        profile,
    }
}

fn vanilla_cfg() -> JvmConfig {
    // The paper's vanilla run is a memory-limit-aware JDK 10 whose heap
    // may grow to the full hard limit (committed converges to 30 GB in
    // Figure 12(a)).
    JvmConfig::jdk10()
        .with_heap_policy(HeapPolicy::Auto { fraction: 1.0 })
        .with_heap_trace()
}

fn elastic_cfg(scale: f64) -> JvmConfig {
    let mut cfg = JvmConfig::adaptive()
        .with_heap_policy(HeapPolicy::Elastic)
        .with_heap_trace();
    // The paper polls sys_namespace every 10 s against a ~1000 s run;
    // the poll interval scales with the scenario so the lag stays
    // proportionate.
    cfg.elastic_poll = SimDuration::from_secs(10).mul_f64(scale);
    cfg
}

/// Run `n` copies and record traces of container 0. Returns
/// (per-JVM outcomes, traces, wall seconds, total swap traffic in GiB).
fn run_case(
    s: &Scaled,
    n: u32,
    cfg: &JvmConfig,
    tag: &str,
    deadline: SimDuration,
) -> (Vec<JvmOutcome>, Vec<TimeSeries>, f64, f64) {
    let mut host = SimHost::new(20, s.host_mem);
    let ids: Vec<_> = (0..n)
        .map(|i| {
            host.launch(
                &ContainerSpec::new(format!("mb{i}"), 20)
                    .memory(s.hard)
                    .memory_reservation(s.soft),
            )
        })
        .collect();
    let mut fleet = Fleet::new();
    let idxs: Vec<usize> = ids
        .iter()
        .map(|id| fleet.push_jvm(Jvm::launch(&mut host, *id, cfg.clone(), s.profile.clone())))
        .collect();

    let mut e_mem = TimeSeries::new(format!("{tag}_virtual_max_e_mem_gib"));
    let start = host.now();
    while !fleet.primaries_done() {
        let now = fleet.step(&mut host);
        e_mem.push(now, host.effective_memory(ids[0]).as_gib_f64());
        if now.since(start) >= deadline {
            break;
        }
    }
    let wall = host.now().since(start).as_secs_f64();

    let outcomes: Vec<JvmOutcome> = idxs.iter().map(|i| fleet.jvm(*i).outcome()).collect();
    let m = fleet.jvm(idxs[0]).metrics();
    let mut traces = vec![
        relabel(&m.used_series, format!("{tag}_used_gib")),
        relabel(&m.committed_series, format!("{tag}_committed_gib")),
        e_mem,
    ];
    for t in &mut traces {
        *t = t.downsample(200);
    }
    let swap_gib = host.mem().swap_out_total().as_gib_f64();
    (outcomes, traces, wall, swap_gib)
}

fn relabel(s: &TimeSeries, name: String) -> TimeSeries {
    let mut out = TimeSeries::new(name);
    for (t, v) in s.samples() {
        out.push(*t, *v);
    }
    out
}

/// Run this study and produce its report.
pub fn run(scale: f64) -> FigReport {
    let s = scaled(scale);
    let generous = s
        .profile
        .total_work
        .mul_f64(100.0)
        .max(SimDuration::from_secs(600));

    // (a) single container, vanilla.
    let (out_a, traces_a, wall_a, swap_a) = run_case(&s, 1, &vanilla_cfg(), "a_vanilla", generous);
    // (b) single container, elastic.
    let (out_b, traces_b, wall_b, swap_b) =
        run_case(&s, 1, &elastic_cfg(scale), "b_elastic", generous);
    // (c) five containers: elastic, then vanilla. The paper's vanilla run
    // "failed to complete any of the micro-benchmarks" (seek-bound disk
    // thrash); the fluid swap model reproduces the mechanism — heavy swap
    // traffic and an end-phase slowdown — but converts livelock into
    // finite slowdown (see EXPERIMENTS.md).
    let (out_c_elastic, traces_c, wall_c, swap_c_elastic) =
        run_case(&s, 5, &elastic_cfg(scale), "c_elastic", generous);
    let (out_c_vanilla, _, wall_c_vanilla, swap_c_vanilla) =
        run_case(&s, 5, &vanilla_cfg(), "c_vanilla", generous);

    let mut outcomes = Table::new("outcomes", &["completed", "of", "wall_s", "swap_gib"]);
    let count = |outs: &[JvmOutcome]| {
        f64::from(outs.iter().filter(|o| **o == JvmOutcome::Completed).count() as u32)
    };
    outcomes.push(Row::full(
        "a_single_vanilla",
        &[count(&out_a), 1.0, wall_a, swap_a],
    ));
    outcomes.push(Row::full(
        "b_single_elastic",
        &[count(&out_b), 1.0, wall_b, swap_b],
    ));
    outcomes.push(Row::full(
        "c_five_vanilla",
        &[count(&out_c_vanilla), 5.0, wall_c_vanilla, swap_c_vanilla],
    ));
    outcomes.push(Row::full(
        "c_five_elastic",
        &[count(&out_c_elastic), 5.0, wall_c, swap_c_elastic],
    ));

    let mut rep = FigReport::new(
        "12",
        "Used/committed/VirtualMax traces of the allocation-churn micro-benchmark",
    );
    rep.tables.push(outcomes);
    rep.series.extend(traces_a);
    rep.series.extend(traces_b);
    rep.series.extend(traces_c);
    rep.note(format!(
        "scenario scale {scale}: host {}, hard {}, soft {}, working set {}",
        s.host_mem, s.hard, s.soft, s.profile.live_cap
    ));
    rep.note(format!(
        "five-container overcommit: vanilla swapped {swap_c_vanilla:.2} GiB and ran {:.2}x the elastic wall; the paper's vanilla never completed (seek-bound disk thrash, which the fluid swap model converts into finite slowdown)",
        wall_c_vanilla / wall_c
    ));
    rep.note("the elastic JVMs never touch swap and all complete");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 0.1;

    #[test]
    fn single_container_both_complete_and_converge_to_hard_limit() {
        let rep = run(SCALE);
        let t = &rep.tables[0];
        assert_eq!(t.get("a_single_vanilla", "completed"), Some(1.0));
        assert_eq!(t.get("b_single_elastic", "completed"), Some(1.0));
        let hard = Bytes::from_gib(30).mul_f64(SCALE).as_gib_f64();
        // Vanilla expands straight to the hard limit; the elastic heap
        // ramps with effective memory and converges more slowly (at this
        // test scale it reaches ~80% before the workload completes).
        for (tag, floor) in [
            ("a_vanilla_committed_gib", 0.8),
            ("b_elastic_committed_gib", 0.72),
        ] {
            let s = rep.series.iter().find(|s| s.name() == tag).unwrap();
            let peak = s.max_value().unwrap();
            assert!(
                peak > hard * floor && peak <= hard * 1.02,
                "{tag}: committed should converge near the hard limit ({peak} vs {hard})"
            );
        }
    }

    #[test]
    fn elastic_starts_smaller_and_ramps() {
        let rep = run(SCALE);
        let a = rep
            .series
            .iter()
            .find(|s| s.name() == "a_vanilla_committed_gib")
            .unwrap();
        let b = rep
            .series
            .iter()
            .find(|s| s.name() == "b_elastic_committed_gib")
            .unwrap();
        let first_a = a.samples().first().unwrap().1;
        let first_b = b.samples().first().unwrap().1;
        assert!(
            first_b < first_a,
            "elastic initial committed {first_b} should undercut vanilla {first_a}"
        );
    }

    #[test]
    fn five_containers_only_elastic_survives() {
        let rep = run(SCALE);
        let t = &rep.tables[0];
        assert_eq!(t.get("c_five_elastic", "completed"), Some(5.0));
        // The paper's vanilla run completed none (seek-bound disk thrash);
        // the fluid swap model reproduces the mechanism, not the livelock
        // (see EXPERIMENTS.md): the vanilla JVMs push heavily into swap
        // and run slower than elastic, which never swaps.
        let vanilla_swap = t.get("c_five_vanilla", "swap_gib").unwrap();
        let elastic_swap = t.get("c_five_elastic", "swap_gib").unwrap();
        assert!(
            vanilla_swap > 0.5,
            "overcommitted vanilla must swap heavily ({vanilla_swap} GiB)"
        );
        assert_eq!(elastic_swap, 0.0, "elastic must never swap");
        let vanilla_wall = t.get("c_five_vanilla", "wall_s").unwrap();
        let elastic_wall = t.get("c_five_elastic", "wall_s").unwrap();
        assert!(
            vanilla_wall > elastic_wall,
            "thrashing vanilla ({vanilla_wall}s) must trail elastic ({elastic_wall}s)"
        );
        // The elastic view settles below the hard limit (paper: ~24 GB of
        // a 30 GB limit).
        let hard = Bytes::from_gib(30).mul_f64(SCALE).as_gib_f64();
        let v = rep
            .series
            .iter()
            .find(|s| s.name() == "c_elastic_virtual_max_e_mem_gib")
            .unwrap();
        let settled = v.last_value().unwrap();
        assert!(
            settled < hard * 0.95 && settled > hard * 0.5,
            "per-container view should settle below the hard limit ({settled} vs {hard})"
        );
    }
}
