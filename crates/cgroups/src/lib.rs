//! Control-group model.
//!
//! Containers in the paper are isolated with Linux cgroups: the cpu
//! controller (`cpu.shares`, `cpu.cfs_quota_us`/`cpu.cfs_period_us`,
//! `cpuset.cpus`) and the memory controller
//! (`memory.limit_in_bytes`, `memory.soft_limit_in_bytes`). This crate
//! models exactly those knobs plus a flat cgroup manager that records
//! create/remove/update events — the hook the paper's `ns_monitor` uses to
//! refresh per-container `sys_namespace`s ("we modify the source code of
//! cgroups to invoke ns_monitor if a sys_namespace exists for a control
//! group and there is a change to the cgroups settings", §3.2).

#![warn(missing_docs)]

pub mod cpu;
pub mod events;
pub mod hierarchy;
pub mod manager;
pub mod memory;

pub use cpu::{CpuController, CpuSet};
pub use events::{EventPipe, SeqEvent, DEFAULT_PIPE_CAPACITY};
pub use hierarchy::CgroupTree;
pub use manager::{CgroupEvent, CgroupId, CgroupManager, CgroupSpec};
pub use memory::{Bytes, MemController};
