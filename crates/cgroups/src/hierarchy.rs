//! Hierarchical cgroups: the nested tree real orchestrators build.
//!
//! The paper's experiments use Docker's flat layout (one cgroup per
//! container under a common parent), which [`crate::manager`] models.
//! Kubernetes and systemd nest deeper — `kubepods.slice` → QoS class →
//! pod → container — and CPU time cascades down the tree: children
//! compete by `cpu.shares` for whatever their parent won, and a quota at
//! any level caps the whole subtree. This module provides that tree;
//! `arv-cfs`'s `allocate_tree` distributes CPU over it.

use crate::cpu::CpuController;
use crate::manager::{CgroupId, CgroupSpec};
use std::collections::BTreeMap;

/// Identifier of the implicit root of the tree.
pub const ROOT: CgroupId = CgroupId(u32::MAX);

#[derive(Debug, Clone)]
struct Node {
    spec: CgroupSpec,
    parent: CgroupId,
    children: Vec<CgroupId>,
}

/// A tree of cgroups under an implicit root.
#[derive(Debug, Clone, Default)]
pub struct CgroupTree {
    nodes: BTreeMap<CgroupId, Node>,
    root_children: Vec<CgroupId>,
    next_id: u32,
}

impl CgroupTree {
    /// An empty tree (just the implicit root).
    pub fn new() -> CgroupTree {
        CgroupTree::default()
    }

    /// Create a cgroup under `parent` (use [`ROOT`] for a top-level one).
    pub fn create(&mut self, parent: CgroupId, spec: CgroupSpec) -> CgroupId {
        assert!(
            parent == ROOT || self.nodes.contains_key(&parent),
            "unknown parent {parent:?}"
        );
        let id = CgroupId(self.next_id);
        self.next_id += 1;
        self.nodes.insert(
            id,
            Node {
                spec,
                parent,
                children: Vec::new(),
            },
        );
        if parent == ROOT {
            self.root_children.push(id);
        } else {
            self.nodes
                .get_mut(&parent)
                .expect("checked above")
                .children
                .push(id);
        }
        id
    }

    /// Remove a leaf cgroup (children must be removed first, as in the
    /// kernel: `rmdir` fails on a populated cgroup).
    pub fn remove(&mut self, id: CgroupId) -> Option<CgroupSpec> {
        let node = self.nodes.get(&id)?;
        assert!(node.children.is_empty(), "cgroup {id:?} still has children");
        let parent = node.parent;
        let node = self.nodes.remove(&id).expect("present");
        if parent == ROOT {
            self.root_children.retain(|c| *c != id);
        } else if let Some(p) = self.nodes.get_mut(&parent) {
            p.children.retain(|c| *c != id);
        }
        Some(node.spec)
    }

    /// The settings of `id`, if it exists.
    pub fn get(&self, id: CgroupId) -> Option<&CgroupSpec> {
        self.nodes.get(&id).map(|n| &n.spec)
    }

    /// The parent of `id` ([`ROOT`] for top-level groups).
    pub fn parent(&self, id: CgroupId) -> Option<CgroupId> {
        self.nodes.get(&id).map(|n| n.parent)
    }

    /// Children of `id` (or of the root).
    pub fn children(&self, id: CgroupId) -> &[CgroupId] {
        if id == ROOT {
            &self.root_children
        } else {
            self.nodes.get(&id).map_or(&[], |n| &n.children)
        }
    }

    /// Whether `id` has no children.
    pub fn is_leaf(&self, id: CgroupId) -> bool {
        self.nodes.get(&id).is_some_and(|n| n.children.is_empty())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Leaves under `id` (containers), depth-first.
    pub fn leaves_under(&self, id: CgroupId) -> Vec<CgroupId> {
        let mut out = Vec::new();
        let mut stack: Vec<CgroupId> = self.children(id).to_vec();
        if id != ROOT && self.is_leaf(id) {
            out.push(id);
        }
        while let Some(n) = stack.pop() {
            if self.is_leaf(n) {
                out.push(n);
            } else {
                stack.extend_from_slice(self.children(n));
            }
        }
        out.sort_unstable();
        out
    }

    /// The tightest quota cap (in CPUs) along the path from `id` to the
    /// root — a nested quota caps the whole subtree.
    pub fn path_cpu_cap(&self, id: CgroupId, online: crate::cpu::CpuSet) -> f64 {
        let mut cap = f64::INFINITY;
        let mut cur = id;
        while cur != ROOT {
            let node = match self.nodes.get(&cur) {
                Some(n) => n,
                None => break,
            };
            cap = cap.min(node.spec.cpu.cpu_cap(online));
            cur = node.parent;
        }
        cap
    }

    /// The cpu controller of `id`.
    pub fn cpu(&self, id: CgroupId) -> Option<&CpuController> {
        self.nodes.get(&id).map(|n| &n.spec.cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuController, CpuSet};
    use crate::memory::MemController;

    fn spec(shares: u64, quota: Option<f64>) -> CgroupSpec {
        let mut cpu = CpuController::unlimited(20).with_shares(shares);
        if let Some(q) = quota {
            cpu = cpu.with_quota_cpus(q);
        }
        CgroupSpec::new(cpu, MemController::unlimited())
    }

    /// kubepods-style tree:
    /// root → kubepods(8192), system(1024); kubepods → podA(2048, 8cpu),
    /// podB(1024); podA → c1, c2; podB → c3.
    fn kube_tree() -> (CgroupTree, [CgroupId; 6]) {
        let mut t = CgroupTree::new();
        let kubepods = t.create(ROOT, spec(8192, None));
        let system = t.create(ROOT, spec(1024, None));
        let pod_a = t.create(kubepods, spec(2048, Some(8.0)));
        let pod_b = t.create(kubepods, spec(1024, None));
        let c1 = t.create(pod_a, spec(1024, None));
        let c2 = t.create(pod_a, spec(1024, None));
        let c3 = t.create(pod_b, spec(1024, None));
        (t, [kubepods, system, pod_a, c1, c2, c3])
    }

    #[test]
    fn tree_structure() {
        let (t, [kubepods, system, pod_a, c1, _c2, c3]) = kube_tree();
        assert_eq!(t.len(), 7);
        assert_eq!(t.children(ROOT), &[kubepods, system]);
        assert_eq!(t.parent(c1), Some(pod_a));
        assert!(t.is_leaf(c3));
        assert!(!t.is_leaf(kubepods));
    }

    #[test]
    fn leaves_under_subtrees() {
        let (t, [kubepods, system, pod_a, c1, c2, c3]) = kube_tree();
        assert_eq!(t.leaves_under(pod_a), vec![c1, c2]);
        assert_eq!(t.leaves_under(kubepods), vec![c1, c2, c3]);
        assert_eq!(t.leaves_under(ROOT), vec![system, c1, c2, c3]);
    }

    #[test]
    fn nested_quota_caps_the_path() {
        let (t, [_, _, _, c1, _, _]) = kube_tree();
        let online = CpuSet::first_n(20);
        // c1 itself is unlimited, but podA's 8-CPU quota binds.
        assert_eq!(t.path_cpu_cap(c1, online), 8.0);
    }

    #[test]
    fn remove_leaf_only() {
        let (mut t, [_, system, _, c1, _, _]) = kube_tree();
        assert!(t.remove(c1).is_some());
        assert!(t.remove(system).is_some());
        assert_eq!(t.len(), 5);
    }

    #[test]
    #[should_panic]
    fn remove_populated_group_panics() {
        let (mut t, [kubepods, ..]) = kube_tree();
        t.remove(kubepods);
    }

    #[test]
    #[should_panic]
    fn create_under_unknown_parent_panics() {
        let mut t = CgroupTree::new();
        t.create(CgroupId(42), spec(1024, None));
    }
}
