//! Bounded, sequence-numbered event delivery.
//!
//! The seed implementation handed `ns_monitor` an unbounded `Vec` of
//! [`CgroupEvent`]s drained atomically — loss was impossible but so was
//! backpressure, and a stalled monitor grew the log without limit. The
//! [`EventPipe`] models the real-world channel instead: a bounded queue
//! that coalesces on overflow by dropping the *oldest* events (newer
//! state wins), with every event stamped with a monotonically increasing
//! sequence number. Consumers detect loss — whether from overflow here
//! or from fault injection in between — as a gap in the sequence and
//! trigger a resync instead of silently serving a wrong view.

use crate::manager::CgroupEvent;
use std::collections::VecDeque;

/// A [`CgroupEvent`] stamped with its position in the event stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeqEvent {
    /// Monotonic sequence number, starting at 0 for the first event.
    pub seq: u64,
    /// The underlying cgroup change.
    pub event: CgroupEvent,
}

/// Default capacity of an [`EventPipe`].
pub const DEFAULT_PIPE_CAPACITY: usize = 64;

/// A bounded queue of sequence-numbered cgroup events.
#[derive(Debug)]
pub struct EventPipe {
    queue: VecDeque<SeqEvent>,
    capacity: usize,
    next_seq: u64,
    overflow_dropped: u64,
}

impl Default for EventPipe {
    fn default() -> EventPipe {
        EventPipe::new(DEFAULT_PIPE_CAPACITY)
    }
}

impl EventPipe {
    /// A pipe holding at most `capacity` undelivered events.
    pub fn new(capacity: usize) -> EventPipe {
        EventPipe {
            queue: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            next_seq: 0,
            overflow_dropped: 0,
        }
    }

    /// Enqueue one event, numbering it. On overflow the *oldest* queued
    /// event is discarded (the consumer will see the gap and resync).
    pub fn push(&mut self, event: CgroupEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.queue.len() == self.capacity {
            self.queue.pop_front();
            self.overflow_dropped += 1;
        }
        self.queue.push_back(SeqEvent { seq, event });
        seq
    }

    /// Take every queued event, in arrival order.
    pub fn drain(&mut self) -> Vec<SeqEvent> {
        self.queue.drain(..).collect()
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The sequence number the next pushed event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Take (and reset) the count of events lost to overflow.
    pub fn take_overflow_dropped(&mut self) -> u64 {
        std::mem::take(&mut self.overflow_dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::CgroupId;

    fn ev(i: u32) -> CgroupEvent {
        CgroupEvent::Updated(CgroupId(i))
    }

    #[test]
    fn events_are_numbered_in_order() {
        let mut pipe = EventPipe::new(8);
        for i in 0..5 {
            assert_eq!(pipe.push(ev(i)), u64::from(i));
        }
        let drained = pipe.drain();
        assert_eq!(drained.len(), 5);
        for (i, e) in drained.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.event, ev(i as u32));
        }
        assert!(pipe.is_empty());
        assert_eq!(pipe.take_overflow_dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut pipe = EventPipe::new(4);
        for i in 0..10 {
            pipe.push(ev(i));
        }
        assert_eq!(pipe.len(), 4);
        let drained = pipe.drain();
        // Oldest six were coalesced away; the survivors are the newest
        // four with their original sequence numbers intact.
        assert_eq!(
            drained.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(pipe.take_overflow_dropped(), 6);
        // Counter resets after being taken.
        assert_eq!(pipe.take_overflow_dropped(), 0);
    }

    #[test]
    fn sequence_numbers_survive_drains() {
        let mut pipe = EventPipe::new(8);
        pipe.push(ev(0));
        pipe.drain();
        assert_eq!(pipe.push(ev(1)), 1);
        assert_eq!(pipe.next_seq(), 2);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut pipe = EventPipe::new(0);
        pipe.push(ev(0));
        pipe.push(ev(1));
        assert_eq!(pipe.len(), 1);
        assert_eq!(pipe.drain()[0].seq, 1);
        assert_eq!(pipe.take_overflow_dropped(), 1);
    }
}
