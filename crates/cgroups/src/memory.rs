//! The cgroup memory controller: hard and soft limits, plus the `Bytes`
//! unit type used across the workspace.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// A byte quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    /// The zero value.
    pub const ZERO: Bytes = Bytes(0);

    /// Construct from kibibytes.
    pub const fn from_kib(k: u64) -> Bytes {
        Bytes(k << 10)
    }

    /// Construct from mebibytes.
    pub const fn from_mib(m: u64) -> Bytes {
        Bytes(m << 20)
    }

    /// Construct from gibibytes.
    pub const fn from_gib(g: u64) -> Bytes {
        Bytes(g << 30)
    }

    #[inline]
    /// The raw byte count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    #[inline]
    /// The value in MiB, as floating point.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1u64 << 20) as f64
    }

    #[inline]
    /// The value in GiB, as floating point.
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1u64 << 30) as f64
    }

    #[inline]
    /// Whether the value is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    #[inline]
    /// Subtraction clamped at zero.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    #[inline]
    /// The smaller of the two values.
    pub fn min(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.min(rhs.0))
    }

    #[inline]
    /// The larger of the two values.
    pub fn max(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.max(rhs.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest byte.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Bytes {
        debug_assert!(factor >= 0.0 && factor.is_finite());
        Bytes((self.0 as f64 * factor).round() as u64)
    }

    /// Ratio of two quantities as `f64`; zero denominator yields 0.0.
    #[inline]
    pub fn ratio(self, denom: Bytes) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    #[inline]
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= (1 << 30) {
            write!(f, "{:.2}GiB", self.as_gib_f64())
        } else if self.0 >= (1 << 20) {
            write!(f, "{:.2}MiB", self.as_mib_f64())
        } else if self.0 >= (1 << 10) {
            write!(f, "{:.2}KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// Per-cgroup memory controller settings.
///
/// * `hard_limit` — `memory.limit_in_bytes`: exceeding it means the
///   container "either is killed or starts swapping" (§2.1).
/// * `soft_limit` — `memory.soft_limit_in_bytes`: reclaimed down to under
///   system-wide memory pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemController {
    /// `memory.limit_in_bytes`; `None` = unlimited.
    pub hard_limit: Option<Bytes>,
    /// `memory.soft_limit_in_bytes`; `None` = unset.
    pub soft_limit: Option<Bytes>,
}

impl MemController {
    /// No limits (the cgroup default).
    pub fn unlimited() -> MemController {
        MemController::default()
    }

    /// Builder-style: set `memory.limit_in_bytes`.
    pub fn with_hard_limit(mut self, limit: Bytes) -> MemController {
        assert!(!limit.is_zero(), "hard limit must be positive");
        self.hard_limit = Some(limit);
        self
    }

    /// Builder-style: set `memory.soft_limit_in_bytes`.
    pub fn with_soft_limit(mut self, limit: Bytes) -> MemController {
        assert!(!limit.is_zero(), "soft limit must be positive");
        self.soft_limit = Some(limit);
        self
    }

    /// Effective hard limit given the host's physical memory.
    pub fn hard_limit_or(&self, host_total: Bytes) -> Bytes {
        self.hard_limit.map_or(host_total, |l| l.min(host_total))
    }

    /// Effective soft limit: explicit soft limit, else the hard limit, else
    /// host memory — the initial `E_MEM` of Algorithm 2.
    pub fn soft_limit_or(&self, host_total: Bytes) -> Bytes {
        self.soft_limit
            .map_or_else(|| self.hard_limit_or(host_total), |l| l.min(host_total))
    }

    /// Sanity check: soft ≤ hard when both are set.
    pub fn is_consistent(&self) -> bool {
        match (self.soft_limit, self.hard_limit) {
            (Some(s), Some(h)) => s <= h,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_unit_constructors() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_mib(1).as_u64(), 1 << 20);
        assert_eq!(Bytes::from_gib(2).as_u64(), 2 << 30);
    }

    #[test]
    fn byte_arithmetic() {
        let a = Bytes::from_mib(10);
        let b = Bytes::from_mib(4);
        assert_eq!(a + b, Bytes::from_mib(14));
        assert_eq!(a - b, Bytes::from_mib(6));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(a.mul_f64(0.5), Bytes::from_mib(5));
        assert!((a.ratio(b) - 2.5).abs() < 1e-12);
        assert_eq!(a.ratio(Bytes::ZERO), 0.0);
    }

    #[test]
    fn bytes_display() {
        assert_eq!(format!("{}", Bytes(512)), "512B");
        assert_eq!(format!("{}", Bytes::from_gib(1)), "1.00GiB");
        assert_eq!(format!("{}", Bytes::from_mib(500)), "500.00MiB");
    }

    #[test]
    fn limits_fall_back_to_host_total() {
        let host = Bytes::from_gib(128);
        let c = MemController::unlimited();
        assert_eq!(c.hard_limit_or(host), host);
        assert_eq!(c.soft_limit_or(host), host);
    }

    #[test]
    fn paper_fig2b_limits() {
        // §2.2: hard limit 1 GB, soft limit 500 MB on a 128 GB machine.
        let host = Bytes::from_gib(128);
        let c = MemController::unlimited()
            .with_hard_limit(Bytes::from_gib(1))
            .with_soft_limit(Bytes::from_mib(500));
        assert_eq!(c.hard_limit_or(host), Bytes::from_gib(1));
        assert_eq!(c.soft_limit_or(host), Bytes::from_mib(500));
        assert!(c.is_consistent());
    }

    #[test]
    fn soft_defaults_to_hard_when_unset() {
        let host = Bytes::from_gib(128);
        let c = MemController::unlimited().with_hard_limit(Bytes::from_gib(30));
        assert_eq!(c.soft_limit_or(host), Bytes::from_gib(30));
    }

    #[test]
    fn inconsistent_limits_detected() {
        let c = MemController::unlimited()
            .with_hard_limit(Bytes::from_mib(100))
            .with_soft_limit(Bytes::from_mib(200));
        assert!(!c.is_consistent());
    }

    #[test]
    fn limits_clamped_to_host() {
        let host = Bytes::from_gib(4);
        let c = MemController::unlimited().with_hard_limit(Bytes::from_gib(64));
        assert_eq!(c.hard_limit_or(host), host);
    }
}
