//! The cgroup manager: a flat registry of container cgroups plus the
//! change-event stream consumed by the paper's `ns_monitor`.
//!
//! Docker creates one cgroup per container under a common parent; the
//! experiments in the paper never nest deeper, so the model is a flat set
//! under an implicit root. Every mutation is recorded as a
//! [`CgroupEvent`], mirroring the kernel hook the paper adds ("invoke
//! ns_monitor if a sys_namespace exists for a control group and there is a
//! change to the cgroups settings").

use crate::cpu::CpuController;
use crate::memory::MemController;
use std::collections::BTreeMap;

/// Identifier of a cgroup (and, one-to-one in this model, of a container).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CgroupId(pub u32);

/// Full resource specification of one cgroup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgroupSpec {
    /// The cpu controller settings.
    pub cpu: CpuController,
    /// The memory controller settings.
    pub mem: MemController,
}

impl CgroupSpec {
    /// Combine controllers into a spec (limits must be consistent).
    pub fn new(cpu: CpuController, mem: MemController) -> CgroupSpec {
        assert!(mem.is_consistent(), "soft limit must not exceed hard limit");
        CgroupSpec { cpu, mem }
    }
}

/// A change to the cgroup tree, in the order it happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CgroupEvent {
    /// A cgroup was created.
    Created(CgroupId),
    /// A cgroup was removed.
    Removed(CgroupId),
    /// Settings changed (new spec attached).
    Updated(CgroupId),
}

/// Flat registry of cgroups with an event log.
#[derive(Debug, Default)]
pub struct CgroupManager {
    groups: BTreeMap<CgroupId, CgroupSpec>,
    next_id: u32,
    events: Vec<CgroupEvent>,
}

impl CgroupManager {
    /// An empty registry.
    pub fn new() -> CgroupManager {
        CgroupManager::default()
    }

    /// Create a cgroup with `spec`; returns its id.
    pub fn create(&mut self, spec: CgroupSpec) -> CgroupId {
        let id = CgroupId(self.next_id);
        self.next_id += 1;
        self.groups.insert(id, spec);
        self.events.push(CgroupEvent::Created(id));
        id
    }

    /// Remove a cgroup. Returns the spec it had, or `None` if unknown.
    pub fn remove(&mut self, id: CgroupId) -> Option<CgroupSpec> {
        let spec = self.groups.remove(&id);
        if spec.is_some() {
            self.events.push(CgroupEvent::Removed(id));
        }
        spec
    }

    /// Replace the settings of an existing cgroup.
    ///
    /// Returns `false` (and records nothing) for an unknown id.
    pub fn update(&mut self, id: CgroupId, spec: CgroupSpec) -> bool {
        match self.groups.get_mut(&id) {
            Some(slot) => {
                *slot = spec;
                self.events.push(CgroupEvent::Updated(id));
                true
            }
            None => false,
        }
    }

    /// The settings of `id`, if it exists.
    pub fn get(&self, id: CgroupId) -> Option<&CgroupSpec> {
        self.groups.get(&id)
    }

    /// Whether `id` is a live cgroup.
    pub fn contains(&self, id: CgroupId) -> bool {
        self.groups.contains_key(&id)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Iterate over live cgroups in id order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (CgroupId, &CgroupSpec)> {
        self.groups.iter().map(|(id, s)| (*id, s))
    }

    /// Sum of `cpu.shares` over all live cgroups — the `Σ w_j` of
    /// Algorithm 1.
    pub fn total_shares(&self) -> u64 {
        self.groups.values().map(|s| s.cpu.shares).sum()
    }

    /// Drain the pending change events (consumed by `ns_monitor`).
    pub fn drain_events(&mut self) -> Vec<CgroupEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of pending (undrained) events.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuController;
    use crate::memory::{Bytes, MemController};

    fn spec() -> CgroupSpec {
        CgroupSpec::new(CpuController::unlimited(20), MemController::unlimited())
    }

    #[test]
    fn create_assigns_unique_ids() {
        let mut m = CgroupManager::new();
        let a = m.create(spec());
        let b = m.create(spec());
        assert_ne!(a, b);
        assert_eq!(m.len(), 2);
        assert!(m.contains(a) && m.contains(b));
    }

    #[test]
    fn events_record_lifecycle_in_order() {
        let mut m = CgroupManager::new();
        let a = m.create(spec());
        m.update(a, spec());
        m.remove(a);
        assert_eq!(
            m.drain_events(),
            vec![
                CgroupEvent::Created(a),
                CgroupEvent::Updated(a),
                CgroupEvent::Removed(a)
            ]
        );
        assert_eq!(m.pending_events(), 0);
    }

    #[test]
    fn update_unknown_id_is_rejected() {
        let mut m = CgroupManager::new();
        assert!(!m.update(CgroupId(99), spec()));
        assert_eq!(m.drain_events(), vec![]);
    }

    #[test]
    fn remove_unknown_id_is_noop() {
        let mut m = CgroupManager::new();
        assert!(m.remove(CgroupId(3)).is_none());
        assert!(m.drain_events().is_empty());
    }

    #[test]
    fn total_shares_sums_live_groups() {
        let mut m = CgroupManager::new();
        let a = m.create(CgroupSpec::new(
            CpuController::unlimited(4).with_shares(512),
            MemController::unlimited(),
        ));
        m.create(CgroupSpec::new(
            CpuController::unlimited(4).with_shares(1024),
            MemController::unlimited(),
        ));
        assert_eq!(m.total_shares(), 1536);
        m.remove(a);
        assert_eq!(m.total_shares(), 1024);
    }

    #[test]
    fn ids_are_not_reused_after_removal() {
        let mut m = CgroupManager::new();
        let a = m.create(spec());
        m.remove(a);
        let b = m.create(spec());
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic]
    fn inconsistent_spec_rejected() {
        CgroupSpec::new(
            CpuController::unlimited(4),
            MemController::unlimited()
                .with_hard_limit(Bytes::from_mib(10))
                .with_soft_limit(Bytes::from_mib(20)),
        );
    }

    #[test]
    fn iter_is_id_ordered() {
        let mut m = CgroupManager::new();
        let ids: Vec<CgroupId> = (0..5).map(|_| m.create(spec())).collect();
        let seen: Vec<CgroupId> = m.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, seen);
    }
}
