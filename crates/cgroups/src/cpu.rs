//! The cgroup cpu controller: shares, CFS bandwidth (quota/period), cpuset.

use arv_sim_core::SimDuration;

/// Default `cpu.shares` in Linux.
pub const DEFAULT_SHARES: u64 = 1024;
/// Default `cpu.cfs_period_us` in Linux: 100 ms.
pub const DEFAULT_CFS_PERIOD: SimDuration = SimDuration::from_micros(100_000);

/// A set of CPUs (`cpuset.cpus`), modelled as a bitmask over up to 128
/// logical CPUs — far beyond the paper's 20-core testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuSet(u128);

impl CpuSet {
    /// The empty set (no CPUs — a container pinned to nothing cannot run).
    pub const EMPTY: CpuSet = CpuSet(0);

    /// CPUs `0..n`.
    pub fn first_n(n: u32) -> CpuSet {
        assert!(n <= 128, "at most 128 CPUs are modelled");
        if n == 128 {
            CpuSet(u128::MAX)
        } else {
            CpuSet((1u128 << n) - 1)
        }
    }

    /// CPUs `lo..hi` (half-open), like the cpuset list syntax `lo-(hi-1)`.
    pub fn range(lo: u32, hi: u32) -> CpuSet {
        assert!(lo <= hi && hi <= 128, "invalid CPU range {lo}..{hi}");
        let mut s = CpuSet::EMPTY;
        for c in lo..hi {
            s = s.with(c);
        }
        s
    }

    /// Set with CPU `cpu` added.
    pub fn with(self, cpu: u32) -> CpuSet {
        assert!(cpu < 128, "CPU index out of range");
        CpuSet(self.0 | (1u128 << cpu))
    }

    /// Whether the set contains `cpu`.
    pub fn contains(self, cpu: u32) -> bool {
        cpu < 128 && self.0 & (1u128 << cpu) != 0
    }

    /// Number of CPUs in the set — the `|M_i|` of Algorithm 1.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set contains no CPUs.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The union of the two sets.
    pub fn union(self, other: CpuSet) -> CpuSet {
        CpuSet(self.0 | other.0)
    }

    /// The intersection of the two sets.
    pub fn intersection(self, other: CpuSet) -> CpuSet {
        CpuSet(self.0 & other.0)
    }

    /// Iterate over the CPUs in the set, ascending.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        (0..128).filter(move |c| self.contains(*c))
    }
}

/// Per-cgroup cpu controller settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuController {
    /// `cpu.shares` — relative weight when competing for CPU.
    pub shares: u64,
    /// `cpu.cfs_quota_us` — CPU time usable per period; `None` = unlimited
    /// (the cgroup default of -1).
    pub quota: Option<SimDuration>,
    /// `cpu.cfs_period_us` — bandwidth accounting period.
    pub period: SimDuration,
    /// `cpuset.cpus` — the CPUs the cgroup may run on.
    pub cpuset: CpuSet,
}

impl CpuController {
    /// Unconstrained controller on a host with `online` CPUs.
    pub fn unlimited(online: u32) -> CpuController {
        CpuController {
            shares: DEFAULT_SHARES,
            quota: None,
            period: DEFAULT_CFS_PERIOD,
            cpuset: CpuSet::first_n(online),
        }
    }

    /// Builder-style: set shares.
    pub fn with_shares(mut self, shares: u64) -> CpuController {
        assert!(shares >= 2, "Linux clamps cpu.shares to at least 2");
        self.shares = shares;
        self
    }

    /// Builder-style: set a quota equivalent to `cpus` full CPUs
    /// (`cfs_quota_us = cpus × cfs_period_us`).
    pub fn with_quota_cpus(mut self, cpus: f64) -> CpuController {
        assert!(cpus > 0.0, "quota must be positive");
        self.quota = Some(self.period.mul_f64(cpus));
        self
    }

    /// Builder-style: set an explicit quota duration per period.
    pub fn with_quota(mut self, quota: SimDuration) -> CpuController {
        assert!(!quota.is_zero(), "quota must be positive");
        self.quota = Some(quota);
        self
    }

    /// Builder-style: restrict to a cpuset.
    pub fn with_cpuset(mut self, set: CpuSet) -> CpuController {
        assert!(!set.is_empty(), "cpuset must contain at least one CPU");
        self.cpuset = set;
        self
    }

    /// `cfs_quota_us / cfs_period_us`: the CPU-capacity limit `l_i / t` of
    /// Algorithm 1, in units of CPUs. `None` when unlimited.
    pub fn quota_ratio(&self) -> Option<f64> {
        self.quota.map(|q| q.ratio(self.period))
    }

    /// Hard cap on usable CPUs from quota and cpuset combined, in CPUs.
    pub fn cpu_cap(&self, online: CpuSet) -> f64 {
        let mask = self.cpuset.intersection(online).count() as f64;
        match self.quota_ratio() {
            Some(q) => q.min(mask),
            None => mask,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpuset_construction_and_count() {
        let s = CpuSet::first_n(20);
        assert_eq!(s.count(), 20);
        assert!(s.contains(0) && s.contains(19) && !s.contains(20));
        let r = CpuSet::range(2, 4);
        assert_eq!(r.count(), 2);
        assert!(r.contains(2) && r.contains(3) && !r.contains(4));
    }

    #[test]
    fn cpuset_set_ops() {
        let a = CpuSet::range(0, 4);
        let b = CpuSet::range(2, 6);
        assert_eq!(a.union(b).count(), 6);
        assert_eq!(a.intersection(b).count(), 2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cpuset_full_width() {
        assert_eq!(CpuSet::first_n(128).count(), 128);
        assert!(CpuSet::EMPTY.is_empty());
    }

    #[test]
    fn quota_ratio_in_cpus() {
        let c = CpuController::unlimited(20).with_quota_cpus(10.0);
        assert_eq!(c.quota_ratio(), Some(10.0));
        assert_eq!(c.quota.unwrap(), SimDuration::from_micros(1_000_000));
    }

    #[test]
    fn unlimited_has_no_quota() {
        let c = CpuController::unlimited(8);
        assert_eq!(c.quota_ratio(), None);
        assert_eq!(c.shares, DEFAULT_SHARES);
        assert_eq!(c.cpuset.count(), 8);
    }

    #[test]
    fn cpu_cap_combines_quota_and_cpuset() {
        let online = CpuSet::first_n(20);
        let c = CpuController::unlimited(20)
            .with_quota_cpus(10.0)
            .with_cpuset(CpuSet::range(0, 4));
        assert_eq!(c.cpu_cap(online), 4.0);
        let c2 = CpuController::unlimited(20).with_quota_cpus(2.5);
        assert_eq!(c2.cpu_cap(online), 2.5);
    }

    #[test]
    fn cpu_cap_respects_offline_cpus() {
        // A cpuset naming CPUs beyond the online set only counts online ones.
        let online = CpuSet::first_n(4);
        let c = CpuController::unlimited(4).with_cpuset(CpuSet::range(2, 8));
        assert_eq!(c.cpu_cap(online), 2.0);
    }

    #[test]
    #[should_panic]
    fn empty_cpuset_rejected() {
        CpuController::unlimited(4).with_cpuset(CpuSet::EMPTY);
    }

    #[test]
    fn fractional_quota_less_than_one_cpu() {
        let c = CpuController::unlimited(4).with_quota_cpus(0.5);
        assert_eq!(c.quota_ratio(), Some(0.5));
        assert_eq!(c.cpu_cap(CpuSet::first_n(4)), 0.5);
    }
}
